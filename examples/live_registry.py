#!/usr/bin/env python3
"""A live registry: incremental updates, explain traces, similarity search.

The paper builds its indexes offline; this example shows the library
features layered on top for online use -- record inserts and deletes with
immediate query visibility, compaction, EXPLAIN-style evaluation traces,
and top-k similar-record search.

Run:  python examples/live_registry.py
"""

from repro import NestedSet, NestedSetIndex
from repro.core.similarity import top_k_similar
from repro.core.trace import explain
from repro.data.dblp import generate_articles


def main() -> None:
    print("Bootstrapping with 3,000 bibliography records...")
    records = list(generate_articles(3000, seed=5))
    index = NestedSetIndex.build(records, cache="frequency")

    # -- live inserts ----------------------------------------------------------
    fresh = NestedSet.parse(
        "{#article, {#author, \"author=Ada Lovelace\"}, "
        "{#title, \"title=notes on the analytical engine\"}, "
        "{#year, year=1843}, {#journal, \"journal=Sketch of Babbage\"}}")
    index.insert("lovelace1843", fresh)
    print("\nInserted a record; immediately queryable:")
    query = '{{#author, "author=Ada Lovelace"}}'
    print(f"  {query} -> {index.query(query)}")

    # -- deletes are tombstones ---------------------------------------------------
    victim = index.query("{#article}")[0]
    index.delete(victim)
    print(f"\nDeleted {victim}; it no longer matches anything:")
    print(f"  live records: {index.inverted_file.n_live_records} "
          f"of {index.n_records} stored")
    index.compact()
    print(f"  after compact(): {index.n_records} records, "
          f"tombstones gone")

    # -- explain ------------------------------------------------------------------
    print("\nEXPLAIN for a three-level query:")
    trace = explain(
        '{#article, {#author, "author=Author 0"}, {#year, year=2011}}',
        index.inverted_file)
    print(trace.render())

    # -- similarity ----------------------------------------------------------------
    print("\nTop-5 records most similar to the Lovelace article:")
    for key, score in top_k_similar(index.inverted_file, fresh, k=5):
        print(f"  {score:.4f}  {key}")

    # duplicates score 1.0:
    index.insert("lovelace_dup", fresh)
    top_key, top_score = top_k_similar(index.inverted_file, fresh, k=1)[0]
    print(f"\nAfter inserting a duplicate, the top hit is "
          f"{top_key} at {top_score:.2f}")


if __name__ == "__main__":
    main()
