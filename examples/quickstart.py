#!/usr/bin/env python3
"""Quickstart: index a collection of nested sets and run containment queries.

This walks the paper's running example (Table 1 / Figures 1-5): a tiny
database about where people live and which driving privileges they hold,
queried with "retrieve all people that live in the USA who have license
type A valid for a motorbike in the UK".

Run:  python examples/quickstart.py
"""

from repro import NestedSet, NestedSetIndex

# -- 1. model some nested data -------------------------------------------------
# A nested set holds atoms and (recursively) other sets; it is unordered
# and duplicate-free, like the sets it models.

sue = NestedSet.parse(
    "{London, UK, {UK, {A, B, C, car, motorbike}}, {UK, {A, motorbike}}}")
tim = NestedSet.parse(
    "{Boston, USA, {USA, VA, {A, B, car}}, {UK, {A, motorbike}}}")

print("Sue:", sue.to_text())
print("Tim:", tim.to_text())

# -- 2. build an index ----------------------------------------------------------
# build() accepts (key, value) records; values may be NestedSet objects,
# text, or plain Python nests.  storage="diskhash"/"btree" persists to disk.

index = NestedSetIndex.build([("sue", sue), ("tim", tim)])
print(f"\nIndexed {index.n_records} records, "
      f"{index.n_nodes} internal nodes")

# -- 3. containment queries ------------------------------------------------------
# query(q) returns the keys of all records s with q ⊆ s (homomorphic
# containment, Equation 2 of the paper).

query = "{USA, {UK, {A, motorbike}}}"
print(f"\nWho lives in the USA with a UK class-A motorbike license?")
print("  ->", index.query(query))                      # ['tim']

# Both of the paper's algorithms (and the naive baseline) are available
# and always agree:
for algorithm in ("topdown", "bottomup", "naive"):
    assert index.query(query, algorithm=algorithm) == ["tim"]

# -- 4. beyond plain containment ---------------------------------------------------
print("\nAnyone holding a UK motorbike license at any nesting level?")
print("  ->", index.query("{UK, {A, motorbike}}", mode="anywhere"))

print("\nWhose record is a subset of Sue's? (superset join)")
print("  ->", index.query(sue, join="superset"))

print("\nHomeomorphic containment (nesting levels may be skipped):")
print("  ->", index.query("{USA, {A, motorbike}}", semantics="homeo"))

# -- 5. statistics ------------------------------------------------------------------
stats = index.stats()
print(f"\nPosting-list requests so far: "
      f"{stats['index']['postings_requests']}")
