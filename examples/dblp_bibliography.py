#!/usr/bin/env python3
"""Bibliographic search over a DBLP-style XML corpus.

Mirrors the paper's second real-data experiment: article records in DBLP
XML shape are mapped into nested sets through the XML adapter and
indexed; partial XML fragments then work directly as containment
queries.  Includes a co-authorship join built from the containment
primitive.

Run:  python examples/dblp_bibliography.py
"""

import time
from collections import Counter

from repro import NestedSetIndex
from repro.data.dblp import generate_articles
from repro.data.xml_adapter import xml_query


def main() -> None:
    print("Generating a 15,000-article synthetic DBLP corpus...")
    records = list(generate_articles(15_000, seed=7))
    index = NestedSetIndex.build(records, cache="frequency")
    print(f"Indexed {index.n_records} articles, {index.n_nodes} nodes\n")

    def ask(question: str, fragment: str, **options) -> list[str]:
        query = xml_query(fragment)
        start = time.perf_counter()
        result = index.query(query, **options)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"{question}\n  fragment {fragment}"
              f"\n  -> {len(result)} articles in {elapsed:.2f} ms\n")
        return result

    ask("Articles by the most prolific author?",
        "<article><author>Author 0</author></article>")

    ask("2012 papers in the most popular venue?",
        "<article><year>2012</year>"
        "<journal>Journal of Topic 0</journal></article>")

    ask("Co-authored by Author 0 AND Author 1?",
        "<article><author>Author 0</author>"
        "<author>Author 1</author></article>")

    # -- a containment-join application: co-authorship counting -------------
    print("Top collaborators of Author 0 (via containment join):")
    base = ask("  (fetching Author 0's papers first)",
               "<article><author>Author 0</author></article>")
    coauthors: Counter = Counter()
    by_key = dict(records)
    for key in base:
        for child in by_key[key].children:
            for atom in child.atoms:
                text = str(atom)
                if text.startswith("author=") and text != "author=Author 0":
                    coauthors[text.removeprefix("author=")] += 1
    for name, count in coauthors.most_common(5):
        print(f"  {name}: {count} joint papers")

    # -- deduplication via the equality join ---------------------------------
    print("\nScanning the first 300 articles for exact duplicates "
          "(equality join):")
    duplicates = 0
    for key, tree in records[:300]:
        twins = index.query(tree, join="equality")
        duplicates += len(twins) - 1
    print(f"  found {duplicates} duplicate records")

    stats = index.stats()["cache"]
    print(f"\nFrequency-cache hit rate: {stats['hit_rate']:.1%}")


if __name__ == "__main__":
    main()
