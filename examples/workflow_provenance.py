#!/usr/bin/env python3
"""Workflow provenance queries: the paper's opening motivation, working.

Scientific-workflow runs are nested structures (runs ⊃ stages ⊃ task
invocations ⊃ parameters/inputs/outputs); containment queries answer
provenance questions directly.  This example indexes 10,000 simulated
runs and asks the questions a lab would.

Run:  python examples/workflow_provenance.py
"""

import time

from repro import NestedSet, NestedSetIndex
from repro.core.join import containment_join
from repro.data.workflows import generate_workflows, provenance_query


def main() -> None:
    print("Generating 10,000 workflow runs...")
    records = list(generate_workflows(10_000, seed=3))
    index = NestedSetIndex.build(records, cache="frequency")
    print(f"Indexed {index.n_records} runs, {index.n_nodes} nodes\n")

    def ask(question: str, query: NestedSet, **options) -> list[str]:
        start = time.perf_counter()
        result = index.query(query, **options)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"{question}\n  -> {len(result)} runs in {elapsed:.2f} ms; "
              f"e.g. {result[:3]}\n")
        return result

    ask("Runs that aligned against hg38?",
        provenance_query("align", ref="hg38"))

    ask("Runs with a failed assemble step?",
        NestedSet((), [NestedSet((), [NestedSet(
            ["tool=assemble", "status=failed"])])]))

    ask("Cluster-environment runs by user u0 that plotted a heatmap?",
        NestedSet(["env=cluster", "user=u0"],
                  [NestedSet((), [NestedSet(
                      ["tool=plot"],
                      [NestedSet(["kind=heatmap"])])])]))

    ask("Runs that touched the hottest dataset ds0 anywhere?",
        NestedSet(["ds0"]), mode="anywhere")

    # -- provenance join: which template runs cover which real runs? ----------
    templates = [
        ("aligned+filtered", NestedSet((), [
            NestedSet((), [NestedSet(["tool=align"])]),
            NestedSet((), [NestedSet(["tool=filter"])])])),
        ("exported", NestedSet((), [
            NestedSet((), [NestedSet(["tool=export"])])])),
    ]
    result = containment_join(index, templates, strategy="per-query")
    for template, matches in result.grouped().items():
        print(f"template {template!r}: {len(matches)} matching runs")
    print(f"(join: {result.n_pairs} pairs in "
          f"{result.elapsed_seconds * 1000:.1f} ms)")


if __name__ == "__main__":
    main()
