#!/usr/bin/env python3
"""Twitter analytics: JSON containment queries a la Postgres ``jsonb @>``.

Mirrors the paper's first real-data experiment: a skewed stream of nested
JSON tweets is mapped into nested sets and indexed; JSON *fragments* then
work directly as containment queries -- "find documents containing this
sub-document".  Also demonstrates the caching optimization on skewed
data (the paper reports a ~100x improvement on this collection).

Run:  python examples/twitter_analytics.py
"""

import time

from repro import NestedSetIndex
from repro.bench.protocol import measure
from repro.data.json_adapter import json_query
from repro.data.queries import make_benchmark_queries
from repro.data.twitter import generate_tweets


def main() -> None:
    print("Generating 8,000 synthetic tweets about a pop idol...")
    records = list(generate_tweets(8_000, seed=42))
    index = NestedSetIndex.build(records)
    print(f"Indexed {index.n_records} tweets, {index.n_nodes} nodes, "
          f"{len(index.inverted_file.frequencies())} distinct atoms\n")

    # -- JSON fragments as queries ------------------------------------------
    def ask(question: str, fragment: dict) -> None:
        query = json_query(fragment)
        start = time.perf_counter()
        result = index.query(query)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"{question}\n  fragment {fragment}"
              f"\n  -> {len(result)} tweets in {elapsed:.2f} ms\n")

    ask("Verified users tweeting in English?",
        {"lang": "en", "user": {"verified": True}})

    ask("Tweets by the most active user mentioning 'bieber'?",
        {"text_tokens": ["bieber"], "user": {"screen_name": "user0"}})

    ask("Tweets with a #justin hashtag linking to youtu.be?",
        {"entities": {"hashtags": [{"text": "justin"}],
                      "urls": [{"display_url": "youtu.be"}]}})

    ask("Mega-followers (1m class) retweeted posts?",
        {"retweeted": True, "user": {"followers_class": "1m"}})

    # -- the caching experiment on skewed data --------------------------------
    # The paper's protocol: 100 queries sampled from the collection (half
    # distorted into negatives), timed with and without the budget-250
    # frequency cache.  Sampled tweets carry the Zipf-hot atoms (idol
    # terms, popular users, en/es language tags), so the cache keeps their
    # long posting lists decoded in memory.
    workload = make_benchmark_queries(records, 100, seed=1)

    def run_workload() -> int:
        return sum(len(index.query(bench.query)) for bench in workload)

    index.set_cache(None)
    uncached = measure(run_workload, repeats=5).millis
    index.set_cache("frequency")          # the paper's budget-250 cache
    run_workload()                        # warm the hot lists
    cached = measure(run_workload, repeats=5).millis
    print(f"100-query workload, no cache:        {uncached:8.1f} ms")
    print(f"100-query workload, frequency cache: {cached:8.1f} ms")
    print(f"Speedup from caching:                {uncached / cached:8.1f}x")
    print("(The paper reports ~100x on its Twitter crawl with a disk-"
          "resident store; the skew-driven effect is the same.)")


if __name__ == "__main__":
    main()
