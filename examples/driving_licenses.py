#!/usr/bin/env python3
"""Driving-license registry: the paper's motivating domain, at scale.

Generates a few thousand synthetic person records shaped like Table 1 of
the paper (home city/country, per-locale driving privileges, license
classes and vehicle types), indexes them on disk, and answers a tour of
containment questions covering every join type and embedding semantics.

Run:  python examples/driving_licenses.py
"""

import random
import tempfile
import time

from repro import NestedSet, NestedSetIndex

COUNTRIES = {
    "UK": ["London", "Leeds", "Bristol"],
    "USA": ["Boston", "Austin", "Denver"],
    "NL": ["Eindhoven", "Utrecht"],
    "DE": ["Berlin", "Bremen"],
}
REGIONS = {"USA": ["VA", "TX", "CA"], "DE": ["BY", "NW"]}
CLASSES = ["A", "B", "C", "D"]
VEHICLES = ["car", "motorbike", "truck", "bus"]


def person_record(rng: random.Random) -> NestedSet:
    """One Table-1-shaped record: {city, country, {locale, {classes...}}*}."""
    country = rng.choice(list(COUNTRIES))
    atoms = [rng.choice(COUNTRIES[country]), country]
    privileges = []
    for _ in range(rng.randint(1, 3)):
        locale_country = rng.choice(list(COUNTRIES))
        locale_atoms = [locale_country]
        if locale_country in REGIONS and rng.random() < 0.5:
            locale_atoms.append(rng.choice(REGIONS[locale_country]))
        license_atoms = rng.sample(CLASSES, rng.randint(1, 2)) + \
            rng.sample(VEHICLES, rng.randint(1, 2))
        privileges.append(NestedSet(locale_atoms,
                                    [NestedSet(license_atoms)]))
    return NestedSet(atoms, privileges)


def main() -> None:
    rng = random.Random(1913)
    records = [(f"person{i:05d}", person_record(rng)) for i in range(5000)]

    with tempfile.NamedTemporaryFile(suffix=".idx") as handle:
        start = time.perf_counter()
        index = NestedSetIndex.build(records, storage="diskhash",
                                     path=handle.name, cache="frequency")
        print(f"Indexed {index.n_records} people "
              f"({index.n_nodes} nodes) on disk "
              f"in {time.perf_counter() - start:.2f}s\n")

        def ask(question: str, query: str, **options) -> None:
            start = time.perf_counter()
            result = index.query(query, **options)
            elapsed = (time.perf_counter() - start) * 1000
            print(f"{question}\n  query {query}"
                  f"\n  -> {len(result)} people in {elapsed:.2f} ms; "
                  f"e.g. {result[:3]}\n")

        ask("USA residents licensed for a motorbike in the UK?",
            "{USA, {UK, {A, motorbike}}}")

        ask("Anyone allowed to drive a bus in Bavaria (class D)?",
            "{DE, BY, {D, bus}}", mode="anywhere")

        ask("Londoners with any Texas privileges?",
            "{London, {USA, TX}}")

        ask("Class A and B car drivers somewhere in the USA "
            "(skip the region level -- homeomorphic):",
            "{USA, {A, B, car}}", semantics="homeo", mode="anywhere")

        ask("People living in Boston/USA or London/UK -- at least 2 "
            "profile facts in common (epsilon-overlap):",
            "{Boston, USA, London, UK}", join="overlap", epsilon=2)

        # superset: find people whose whole record fits inside a template
        template = ("{London, UK, Leeds, Bristol, "
                    "{UK, {A, B, car, motorbike}}}")
        ask("UK-only people fully covered by this template "
            "(superset join):", template, join="superset")

        # equality: exact-duplicate detection
        duplicates = 0
        for key, tree in records[:200]:
            twins = index.query(tree, join="equality")
            duplicates += len(twins) - 1
        print(f"Duplicate records among the first 200 people: {duplicates}")

        hits = index.stats()["cache"]
        print(f"\nFrequency-cache hit rate: {hits['hit_rate']:.1%} "
              f"({hits['hits']} hits)")
        index.close()


if __name__ == "__main__":
    main()
