#!/usr/bin/env python3
"""Sets, bags, sequences: the data-model zoo (paper future work 2).

The paper models records as nested *sets*; its closing remarks ask about
multiset and list variants.  This example shows all three abstractions
over the same shopping-cart documents, how containment changes meaning
at each level, and how the set index accelerates the richer models
through filter-verify.

Run:  python examples/data_model_zoo.py
"""

from repro import NestedSet, NestedSetIndex
from repro.core.bags import NestedBag, bag_contains, bag_filter_verify
from repro.core.seqs import NestedSeq, seq_contains, seq_filter_verify

# One customer's shopping events, as ordered JSON-ish carts: item lists
# carry duplicates (quantities) and order (the sequence of adding).
CARTS = {
    "cart1": ["apple", "apple", "bread", ["card", "visa"]],
    "cart2": ["bread", "apple", ["card", "visa"], "apple"],
    "cart3": ["apple", "bread", ["cash"]],
    "cart4": ["apple", ["card", "visa"], "bread"],
}


def main() -> None:
    seqs = {key: NestedSeq.from_obj(cart) for key, cart in CARTS.items()}
    bags = {key: seq.to_bag() for key, seq in seqs.items()}
    sets = {key: seq.to_set() for key, seq in seqs.items()}

    print("The same cart at three abstraction levels:")
    print("  seq :", seqs["cart1"].to_text())
    print("  bag :", bags["cart1"].to_text())
    print("  set :", sets["cart1"].to_text())

    # -- sets: order and quantity vanish --------------------------------------
    print("\nSET containment (the paper's model): 'bought apples and "
          "bread, paid by visa'")
    query_set = NestedSet(["apple", "bread"], [NestedSet(["card", "visa"])])
    hits = [key for key, tree in sets.items()
            if NestedSetIndex.build([(key, tree)]).query(query_set)]
    print("  ->", hits, " (cart3 pays cash: excluded)")

    # -- bags: quantities matter --------------------------------------------------
    print("\nBAG containment: 'bought at least TWO apples'")
    query_bag = NestedBag(["apple", "apple"])
    hits = sorted(key for key, bag in bags.items()
                  if bag_contains(bag, query_bag))
    print("  ->", hits, " (cart3/cart4 have a single apple)")

    # -- sequences: order matters too ---------------------------------------------------
    print("\nSEQ containment: 'added apple BEFORE swiping the card'")
    query_seq = NestedSeq(["apple", NestedSeq(["card"])])
    hits = sorted(key for key, seq in seqs.items()
                  if seq_contains(seq, query_seq))
    print("  ->", hits, " (cart4 also qualifies; cart3 pays cash)")

    print("\nSEQ containment: 'swiped the card BEFORE the last apple'")
    query_seq2 = NestedSeq([NestedSeq(["card"]), "apple"])
    hits = sorted(key for key, seq in seqs.items()
                  if seq_contains(seq, query_seq2))
    print("  ->", hits)

    # -- the set index accelerates the richer models -------------------------------------
    print("\nFilter-verify through one shared set index:")
    index = NestedSetIndex.build(sets.items())
    bag_hits = bag_filter_verify(index, bags, query_bag)
    seq_hits = seq_filter_verify(index, seqs, query_seq)
    print(f"  bag query via index: {sorted(bag_hits)}")
    print(f"  seq query via index: {sorted(seq_hits)}")
    print("  (the deduplicated query prunes on the index -- sound, "
          "because every abstraction only loses constraints)")


if __name__ == "__main__":
    main()
