#!/usr/bin/env python3
"""Mini reproduction of the paper's Figure 6 experiments in one script.

Runs scaled-down versions of Experiments 1-3 (uniform/skewed synthetic
and the simulated Twitter/DBLP collections) with the paper's measurement
protocol, printing one series table per figure.  The full-size versions
live under benchmarks/ (pytest-benchmark); this script is the readable
tour.

Run:  python examples/experiment_tour.py
"""

from repro.bench.protocol import SeriesPoint, measure
from repro.bench.reporting import format_figure, speedup
from repro.bench.workloads import WorkloadCache, make_query_runner

FIGURES = [
    ("Fig 6a (scaled): uniform wide", "uniform-wide", [500, 1000, 2000], 30),
    ("Fig 6c (scaled): skewed wide, theta=0.7", "zipf-wide",
     [500, 1000, 2000], 30),
    ("Fig 6e (scaled): Twitter", "twitter", [500, 1000, 2000], 20),
    ("Fig 6f (scaled): DBLP", "dblp", [500, 1000, 2000], 20),
]

SERIES = [("topdown", None), ("topdown", "frequency"),
          ("bottomup", None), ("bottomup", "frequency")]


def main() -> None:
    workloads = WorkloadCache()
    try:
        for title, dataset, sizes, n_queries in FIGURES:
            points = []
            for size in sizes:
                workload = workloads.get(dataset, size,
                                         n_queries=n_queries)
                for algorithm, policy in SERIES:
                    workload.index.set_cache(policy)
                    runner = make_query_runner(workload.index,
                                               workload.queries, algorithm)
                    runner()  # warm-up
                    timing = measure(runner, repeats=5)
                    label = algorithm + ("+cache" if policy else "")
                    points.append(SeriesPoint(label, size, timing))
            print(format_figure(title, points,
                                y_label=f"avg {n_queries}-query time (ms)"))
            largest = [p for p in points if p.x == sizes[-1]]
            by_series = {p.series: p.timing.millis for p in largest}
            factor = speedup(by_series["topdown"],
                             by_series["topdown+cache"])
            print(f"caching speedup at {sizes[-1]} records "
                  f"(top-down): {factor:.1f}x\n")
    finally:
        workloads.clear()

    print("Paper shapes to compare against (Section 5.2):")
    print(" * uniform data: caching shows no real effect")
    print(" * skewed data: considerable cost increase; modest cache win")
    print(" * Twitter/DBLP: heavy skew; caching wins by a large factor")


if __name__ == "__main__":
    main()
