"""nestcontain -- efficient containment queries on nested sets.

A from-scratch reproduction of Ibrahim & Fletcher, *Efficient processing of
containment queries on nested sets*, EDBT 2013: the nested-set data model,
the inverted-file index, the top-down and bottom-up containment algorithms,
the caching and Bloom-filter optimizations, the join-type and embedding-
semantics extensions, and the full experimental harness.

Quickstart::

    from repro import NestedSet, NestedSetIndex

    records = [
        ("sue", NestedSet.parse("{London, UK, {UK, {A, B}}}")),
        ("tim", NestedSet.parse("{Boston, USA, {UK, {A, motorbike}}}")),
    ]
    index = NestedSetIndex.build(records)
    index.query("{USA, {UK, {A, motorbike}}}")   # -> ['tim']
"""

from .core import (
    ALGORITHMS,
    Atom,
    BloomFilter,
    BloomIndex,
    ExecutionContext,
    ExecutionPlan,
    InvertedFile,
    NaiveScanner,
    NestedSet,
    NestedSetError,
    NestedSetIndex,
    PlanError,
    QuerySpec,
    QuerySpecError,
    ShardError,
    ShardedIndex,
    as_nested_set,
    compile_query,
    contains,
    hom_contains,
    homeo_contains,
    iso_contains,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "Atom",
    "BloomFilter",
    "BloomIndex",
    "ExecutionContext",
    "ExecutionPlan",
    "InvertedFile",
    "NaiveScanner",
    "NestedSet",
    "NestedSetError",
    "NestedSetIndex",
    "PlanError",
    "QuerySpec",
    "QuerySpecError",
    "ShardError",
    "ShardedIndex",
    "__version__",
    "as_nested_set",
    "compile_query",
    "contains",
    "hom_contains",
    "homeo_contains",
    "iso_contains",
]
