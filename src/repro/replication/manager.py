"""Role state machine the server consults: primary, replica, promotion.

One :class:`ReplicationManager` per served index.  A primary holds a
:class:`~repro.replication.shipper.ReplicationSource` (bootstrap
sessions + tail fetches); a replica holds a running
:class:`~repro.replication.applier.ReplicaTailer` and rejects mutations.
``promote()`` flips a replica to primary in place: the tailer stops
(its log end is already applied), the term bumps durably, and a fresh
source comes up over the same log -- the promoted node can ship to its
own replicas immediately, continuing the old primary's sequence space.
"""

from __future__ import annotations

import threading

from .applier import ReplicaTailer
from .shipper import ReplicationSource


class ReplicationManager:
    """Per-server replication role, consulted on every mutation."""

    def __init__(self, index, *, role: str,
                 source: ReplicationSource | None = None,
                 tailer: ReplicaTailer | None = None,
                 primary_address: str | None = None) -> None:
        if role not in ("primary", "replica"):
            raise ValueError(f"role must be primary or replica, got {role!r}")
        self._index = index
        self._lock = threading.Lock()
        self.role = role
        self.source = source
        self.tailer = tailer
        self.primary_address = primary_address

    @classmethod
    def as_primary(cls, index) -> "ReplicationManager":
        return cls(index, role="primary",
                   source=ReplicationSource(index))

    @classmethod
    def as_replica(cls, index, tailer: ReplicaTailer
                   ) -> "ReplicationManager":
        return cls(index, role="replica", tailer=tailer,
                   primary_address=tailer.primary_address)

    @property
    def term(self) -> int:
        if self.source is not None:
            return self.source.term
        if self.tailer is not None:
            return self.tailer._log.term
        return 0

    def promote(self) -> dict[str, object]:
        """Flip replica -> primary (idempotent on a primary)."""
        with self._lock:
            if self.role == "primary":
                return {"role": "primary", "term": self.term,
                        "promoted": False}
            tailer, self.tailer = self.tailer, None
            term = tailer.promote()
            self.source = ReplicationSource(self._index)
            self.role = "primary"
            self.primary_address = None
            return {"role": "primary", "term": term, "promoted": True,
                    "applied_seq": tailer.applied_seq}

    def lag(self) -> dict[str, object] | None:
        if self.tailer is not None:
            return self.tailer.lag()
        return None

    def summary(self) -> dict[str, object]:
        """Role/term/lag block merged into server stats and the gateway."""
        out: dict[str, object] = {"role": self.role, "term": self.term}
        lag = self.lag()
        if lag is not None:
            out["replica_lag"] = lag
            out["primary"] = self.primary_address
        if self.source is not None:
            out["shipping"] = self.source.summary()
        return out

    def close(self) -> None:
        if self.tailer is not None:
            self.tailer.stop()
        if self.source is not None:
            self.source.close()
