"""Primary-side log shipping: bootstrap snapshots and group tailing.

:class:`ReplicationSource` backs the server's ``repl_*`` operations on
whatever index the server is serving.  It requires the store to have
been opened with ``wal_factory=ReplicationLog`` (the ``serve`` CLI does
this by default for disk stores), because shipping needs the durable
sequence numbers and follower tracking that log provides.

Bootstrap protocol (replica side drives it):

1. ``repl_bootstrap`` -- the source records ``boot_next_seq`` *before*
   pinning a :class:`~repro.storage.pager.PageReader`, then pins one and
   returns a session token plus the snapshot geometry (version,
   page_size, n_pages) and the tail coordinates (next_seq, term).
   Ordering matters: any group committed between the seq capture and
   the pin is *included in the snapshot* and will also be shipped --
   replaying it twice is idempotent (physical post-images) and the
   version max-guard keeps the counter monotonic.
2. ``repl_pages`` -- the replica pulls page runs out of the pinned
   reader until it holds all ``n_pages``.
3. ``repl_done`` -- the session's reader unpins; the replica then opens
   the copied file locally and starts tailing from ``next_seq``.

Tailing: ``repl_fetch`` doubles as the acknowledgement -- ``after_seq``
is the replica's durable apply horizon, recorded against its
``replica_id`` so checkpoint truncation can wait for it.  When the
requested sequence has been truncated away the fetch answers
``status="behind"`` and the replica re-bootstraps.
"""

from __future__ import annotations

import base64
import secrets
import threading
import time

from ..storage.pager import PageReader, parse_header
from .log import ReplicationLog

#: Bootstrap sessions idle longer than this are reaped (their pinned
#: readers released) the next time any session-touching call runs.
SESSION_TTL_S = 600.0

#: Ceiling on one ``repl_pages`` response, well under MAX_FRAME_BYTES
#: (pages are base64-encoded, a 4/3 expansion, plus JSON framing).
MAX_PAGE_RUN_BYTES = 4 << 20

#: Ceiling on one ``repl_fetch`` response's raw group bytes.
MAX_FETCH_BYTES = 4 << 20


def base_store_of(index):
    """The single backing KVStore of an index (sharded or not)."""
    store = getattr(index, "base_store", None)
    if store is None:
        store = index.inverted_file.store
    return store


class _Session:
    __slots__ = ("reader", "n_pages", "last_used")

    def __init__(self, reader: PageReader, n_pages: int) -> None:
        self.reader = reader
        self.n_pages = n_pages
        self.last_used = time.monotonic()


class ReplicationSource:
    """Serves bootstrap snapshots and log tails off a primary's index."""

    def __init__(self, index) -> None:
        store = base_store_of(index)
        pager = getattr(store, "pager", None)
        if pager is None:
            raise ValueError(
                "replication needs a disk-backed store (no pager found)")
        log = pager.wal
        if not isinstance(log, ReplicationLog):
            raise ValueError(
                "replication needs the store opened with "
                "wal_factory=ReplicationLog")
        self._pager = pager
        self._log = log
        self._lock = threading.Lock()
        self._sessions: dict[str, _Session] = {}
        self.last_commit_at = time.time()
        log.on_commit = self._note_commit

    @property
    def log(self) -> ReplicationLog:
        return self._log

    @property
    def term(self) -> int:
        return self._log.term

    def _note_commit(self, _seq: int) -> None:
        self.last_commit_at = time.time()

    # -- bootstrap ----------------------------------------------------------

    def _reap_locked(self) -> None:
        now = time.monotonic()
        for token in [t for t, s in self._sessions.items()
                      if now - s.last_used > SESSION_TTL_S]:
            self._sessions.pop(token).reader.close()

    def bootstrap(self, replica_id: str) -> dict[str, object]:
        """Open a snapshot session; returns geometry + tail coordinates."""
        with self._lock:
            self._reap_locked()
            # Seq capture strictly before the pin -- see the module doc.
            boot_next_seq = self._log.next_seq
            reader = self._pager.reader()
            _page_size, n_pages, _free, _meta = \
                parse_header(reader.read(0))
            token = secrets.token_hex(8)
            self._sessions[token] = _Session(reader, n_pages)
        self._log.register_follower(replica_id, boot_next_seq - 1)
        return {
            "session": token,
            "version": reader.version,
            "page_size": reader.page_size,
            "n_pages": n_pages,
            "next_seq": boot_next_seq,
            "term": self._log.term,
        }

    def pages(self, session: str, start_page: int,
              count: int) -> dict[str, object]:
        """A run of snapshot pages, base64-packed, capped by bytes."""
        with self._lock:
            state = self._sessions.get(session)
            if state is None:
                raise KeyError(f"unknown bootstrap session {session!r}")
            state.last_used = time.monotonic()
        reader = state.reader
        per_page = reader.page_size
        count = max(1, min(count, MAX_PAGE_RUN_BYTES // per_page,
                           state.n_pages - start_page))
        if start_page >= state.n_pages or start_page < 0:
            raise IndexError(
                f"page {start_page} past snapshot end {state.n_pages}")
        run = b"".join(reader.read(page_id)
                       for page_id in range(start_page, start_page + count))
        return {
            "start_page": start_page,
            "count": count,
            "data": base64.b64encode(run).decode("ascii"),
        }

    def done(self, session: str) -> dict[str, object]:
        """Release a bootstrap session's pinned reader (idempotent)."""
        with self._lock:
            state = self._sessions.pop(session, None)
        if state is not None:
            state.reader.close()
        return {"closed": state is not None}

    # -- tailing ------------------------------------------------------------

    def fetch(self, replica_id: str, after_seq: int, *,
              max_groups: int = 256) -> dict[str, object]:
        """Groups after ``after_seq``; records the ack as a side effect."""
        self._log.ack(replica_id, after_seq)
        try:
            first_seq, count, data = self._log.read_raw_groups(
                after_seq + 1, max_groups=max_groups,
                max_bytes=MAX_FETCH_BYTES)
        except LookupError:
            return {
                "status": "behind",
                "base_seq": self._log.base_seq,
                "term": self._log.term,
            }
        return {
            "status": "ok",
            "first_seq": first_seq,
            "count": count,
            "data": base64.b64encode(data).decode("ascii"),
            "end_seq": self._log.last_seq,
            "term": self._log.term,
            "last_commit_at": self.last_commit_at,
        }

    def forget(self, replica_id: str) -> None:
        self._log.forget_follower(replica_id)

    # -- introspection ------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """Follower lag view for stats / ``info --server``."""
        followers = self._log.followers()
        last = self._log.last_seq
        return {
            "term": self._log.term,
            "last_seq": last,
            "followers": {rid: {"acked_seq": acked,
                                "lag_groups": max(0, last - acked)}
                          for rid, acked in followers.items()},
            "checkpoints_deferred": self._log.checkpoints_deferred,
        }

    def close(self) -> None:
        with self._lock:
            sessions, self._sessions = dict(self._sessions), {}
        for state in sessions.values():
            state.reader.close()
        if self._log.on_commit == self._note_commit:
            self._log.on_commit = None
