"""Primary/replica log shipping over the query service (PR 10).

Layers, bottom up:

* :mod:`.log` -- :class:`ReplicationLog`, the WAL subclass giving every
  commit group a durable sequence number and fencing term;
* :mod:`.shipper` -- :class:`ReplicationSource`, the primary-side state
  behind the ``repl_*`` wire ops (bootstrap snapshots, tail fetches);
* :mod:`.applier` -- :func:`bootstrap_from_primary` and
  :class:`ReplicaTailer`, the replica's copy-then-replay loop;
* :mod:`.manager` -- :class:`ReplicationManager`, the role state
  machine the server consults (and flips on ``promote``);
* :mod:`.client` -- :class:`ReplicaSetClient`, read routing with a
  staleness bound and automatic failover.
"""

from .applier import ReplicaTailer, bootstrap_from_primary
from .client import ReplicaSetClient
from .log import ReplicationLog, split_shipped_label
from .manager import ReplicationManager
from .shipper import ReplicationSource

__all__ = [
    "ReplicaSetClient",
    "ReplicaTailer",
    "ReplicationLog",
    "ReplicationManager",
    "ReplicationSource",
    "bootstrap_from_primary",
    "split_shipped_label",
]
