"""Replication log: the write-ahead log with a durable shipping order.

``ReplicationLog`` is a drop-in :class:`~repro.storage.wal.WriteAheadLog`
(the pager builds it through its ``wal_factory`` knob) that makes the
log *tailable*:

* every commit group carries a durable **sequence number** and the
  primary's **fencing term**, stamped inside the (opaque) group label
  right after the pager's version stamp::

      label := "@" version:u64 "R" seq:u64 term:u64 original_label

  Stamps ride inside the label, so the on-disk group format is
  unchanged and a plain ``WriteAheadLog`` can still recover the file
  (the pager's version stamp stays outermost, exactly where its
  recovery expects it).

* a tiny sidecar file (``<wal>-repl``) persists the sequence floor and
  the current term across truncations, so sequence numbers never
  restart or repeat after a checkpoint or a crash;

* :meth:`checkpoint` is **gated on follower acknowledgement**: while a
  registered follower has not acked up to the log end, truncation is
  deferred (the groups stay pending and replay idempotently) until the
  log exceeds a retention window -- then it truncates anyway and the
  laggard must re-bootstrap from a snapshot;

* :meth:`read_raw_groups` returns a contiguous run of committed groups
  as raw log bytes (checksums included) for shipping, using the
  offset-based iteration shared with recovery.

Sidecar crash-ordering: the floor is persisted *before* the truncate.
If the process dies in between, the log still holds its stamped groups,
so recovery takes sequence numbers from the stamps (which dominate the
sidecar floor) and nothing is renumbered; if it dies after, the sidecar
floor alone carries the next sequence forward over the now-empty log.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Callable

from ..storage.errors import CorruptionError
from ..storage.wal import (WriteAheadLog, split_version_label,
                           stamp_version_label)

SIDE_MAGIC = b"NCRS"
SIDE_VERSION = 1
_SIDECAR = struct.Struct("<4sHQQ")  # magic, version, next-seq floor, term

#: Leading byte of a replication-stamped label (inside the version stamp).
_REPL_STAMP = b"R"
_REPL_STAMP_LEN = 1 + 8 + 8  # marker + seq u64 + term u64

#: Default bytes of shipped-but-unacked log retained for slow followers
#: before checkpoint truncation proceeds without them.
DEFAULT_RETAIN_BYTES = 64 << 20


def stamp_repl_label(label: bytes, seq: int, term: int) -> bytes:
    """Prefix a label with its shipping sequence number and term."""
    return _REPL_STAMP + struct.pack("<QQ", seq, term) + label


def split_repl_label(label: bytes) -> tuple[int | None, int | None, bytes]:
    """Split a stamped label into ``(seq, term, original_label)``.

    Labels written by a plain WAL (no replication) come back as
    ``(None, None, label)``.
    """
    if len(label) >= _REPL_STAMP_LEN and label[:1] == _REPL_STAMP:
        seq, term = struct.unpack_from("<QQ", label, 1)
        return seq, term, label[_REPL_STAMP_LEN:]
    return None, None, label


def split_shipped_label(label: bytes
                        ) -> tuple[int | None, int | None, int | None]:
    """Decode ``(version, seq, term)`` from a fully stamped group label."""
    version, rest = split_version_label(label)
    seq, term, _ = split_repl_label(rest)
    return version, seq, term


def sidecar_path(wal_path: str) -> str:
    return wal_path + "-repl"


def write_sidecar(path: str, next_seq: int, term: int) -> None:
    """Persist the sequence floor and term (atomic: one small write)."""
    blob = _SIDECAR.pack(SIDE_MAGIC, SIDE_VERSION, next_seq, term)
    with open(path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())


def read_sidecar(path: str) -> tuple[int, int]:
    """Return ``(next_seq_floor, term)``; ``(1, 0)`` for a fresh log."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read(_SIDECAR.size)
    except FileNotFoundError:
        return 1, 0
    if len(blob) < _SIDECAR.size:
        return 1, 0
    magic, version, next_seq, term = _SIDECAR.unpack(blob)
    if magic != SIDE_MAGIC:
        raise CorruptionError(f"bad replication sidecar magic in {path!r}")
    if version != SIDE_VERSION:
        raise CorruptionError(
            f"unsupported replication sidecar version {version}")
    return next_seq, term


class ReplicationLog(WriteAheadLog):
    """A write-ahead log whose groups form a durable, tailable sequence."""

    def __init__(self, path: str, *, create: bool = False,
                 sync: bool = True,
                 retain_bytes: int = DEFAULT_RETAIN_BYTES) -> None:
        if create:
            # A fresh log restarts the sequence space too.
            side = sidecar_path(path)
            if os.path.exists(side):
                os.remove(side)
        super().__init__(path, create=create, sync=sync)
        self.retain_bytes = retain_bytes
        #: Serializes every access to the shared file handle: commits
        #: and checkpoints (already serialized by the pager's commit
        #: lock) against tail reads from server threads.
        self._lock = threading.RLock()
        #: Sequence number of the group at the head of the log file.
        self._base_seq, self._term = read_sidecar(sidecar_path(path))
        #: Byte offset of each group currently in the log file;
        #: ``offsets[i]`` holds the group with seq ``base_seq + i``.
        self._offsets: list[int] = []
        #: Last-acked seq per registered follower id.
        self._acked: dict[str, int] = {}
        #: Follower acks that arrived while the laggard was already past
        #: retention; counted for stats.
        self.checkpoints_deferred = 0
        #: Optional post-commit hook (the shipper's wakeup), called
        #: outside no locks worth noting but inside the commit lock.
        self.on_commit: Callable[[int], None] | None = None
        self._scan_existing()

    # -- sequence bookkeeping ----------------------------------------------

    def _scan_existing(self) -> None:
        """Rebuild offsets (and the seq base) from groups already on disk.

        Stamped groups dominate the sidecar floor: a crash between the
        floor write and the truncate leaves both present, and trusting
        the stamps keeps the on-disk groups' numbering authoritative.
        """
        offsets: list[int] = []
        first_seq: int | None = None
        max_term = self._term
        for pos, label, _records, _next in self.iter_groups():
            _version, seq, term = split_shipped_label(label)
            if seq is not None:
                if first_seq is None:
                    first_seq = seq - len(offsets)
                if term is not None and term > max_term:
                    max_term = term
            offsets.append(pos)
        self._offsets = offsets
        self._term = max_term
        if first_seq is not None:
            self._base_seq = first_seq

    @property
    def base_seq(self) -> int:
        """Seq of the oldest group still in the log (next one if empty)."""
        return self._base_seq

    @property
    def next_seq(self) -> int:
        return self._base_seq + len(self._offsets)

    @property
    def last_seq(self) -> int:
        """Seq of the newest committed group (``base_seq - 1`` if none)."""
        return self._base_seq + len(self._offsets) - 1

    @property
    def term(self) -> int:
        return self._term

    def bump_term(self) -> int:
        """Advance the fencing term durably (promotion)."""
        with self._lock:
            self._term += 1
            write_sidecar(sidecar_path(self.path), self.next_seq, self._term)
            return self._term

    def adopt_term(self, term: int) -> None:
        """Raise the term durably (a replica saw a newer primary's groups)."""
        with self._lock:
            if term > self._term:
                self._term = term
                write_sidecar(sidecar_path(self.path), self.next_seq,
                              self._term)

    # -- commit ------------------------------------------------------------

    def commit(self, label: bytes, records: list[bytes]) -> None:
        """Append one group, stamped with the next seq and current term."""
        version, original = split_version_label(label)
        stamped = stamp_repl_label(original, self.next_seq, self._term)
        if version is not None:
            stamped = stamp_version_label(stamped, version)
        self.commit_prestamped(stamped, records)

    def commit_prestamped(self, label: bytes, records: list[bytes]) -> None:
        """Append a group whose label already carries its seq stamp.

        The replica apply path commits shipped groups verbatim -- same
        seq, same term, same version stamp as on the primary -- so a
        promoted replica continues the primary's sequence exactly.
        """
        with self._lock:
            offset = self.size
            super().commit(label, records)
            self._offsets.append(offset)
            hook = self.on_commit
        if hook is not None:
            hook(self.last_seq)

    # -- follower tracking -------------------------------------------------

    def register_follower(self, follower_id: str, acked_seq: int) -> None:
        """Track a tailing replica; its ack gates checkpoint truncation."""
        with self._lock:
            self._acked[follower_id] = acked_seq

    def forget_follower(self, follower_id: str) -> None:
        with self._lock:
            self._acked.pop(follower_id, None)

    def ack(self, follower_id: str, seq: int) -> None:
        """Record that a follower has durably applied through ``seq``."""
        with self._lock:
            prev = self._acked.get(follower_id, -1)
            if seq > prev:
                self._acked[follower_id] = seq

    def followers(self) -> dict[str, int]:
        with self._lock:
            return dict(self._acked)

    def min_acked(self) -> int | None:
        with self._lock:
            if not self._acked:
                return None
            return min(self._acked.values())

    # -- tailing -----------------------------------------------------------

    def read_raw_groups(self, start_seq: int, *, max_groups: int = 256,
                        max_bytes: int = 4 << 20
                        ) -> tuple[int, int, bytes]:
        """Contiguous committed groups from ``start_seq`` as raw log bytes.

        Returns ``(first_seq, count, data)`` where ``data`` is the exact
        on-disk byte run (headers, checksums and all) of ``count``
        groups starting at ``first_seq`` -- zero groups when the log has
        nothing at or past ``start_seq``.  Raises ``LookupError`` when
        ``start_seq`` has already been truncated away (the follower fell
        past retention and must re-bootstrap).
        """
        with self._lock:
            if start_seq < self._base_seq:
                raise LookupError(
                    f"seq {start_seq} predates retained log base "
                    f"{self._base_seq}")
            index = start_seq - self._base_seq
            if index >= len(self._offsets):
                return start_seq, 0, b""
            end_index = min(index + max_groups, len(self._offsets))
            start_off = self._offsets[index]
            stop_off = (self._offsets[end_index]
                        if end_index < len(self._offsets) else self.size)
            while (end_index - index > 1
                   and stop_off - start_off > max_bytes):
                end_index -= 1
                stop_off = self._offsets[end_index]
            self._file.seek(start_off)
            data = self._file.read(stop_off - start_off)
            return start_seq, end_index - index, data

    def read_group_at(self, offset: int
                      ) -> tuple[bytes, list[bytes], int] | None:
        with self._lock:
            return super().read_group_at(offset)

    # -- checkpoint --------------------------------------------------------

    def checkpoint(self) -> None:
        """Truncate -- unless a follower still needs the retained groups.

        Deferred truncation leaves the groups pending; they replay
        idempotently on the next recovery, so durability is unaffected.
        Once the log outgrows ``retain_bytes`` the laggard loses its
        window (it re-bootstraps from a snapshot) and truncation
        proceeds.
        """
        with self._lock:
            if self._offsets:
                min_acked = self.min_acked()
                if (min_acked is not None and min_acked < self.last_seq
                        and self.size <= self.retain_bytes):
                    self.checkpoints_deferred += 1
                    return
            next_seq = self.next_seq
            write_sidecar(sidecar_path(self.path), next_seq, self._term)
            super().checkpoint()
            self._base_seq = next_seq
            self._offsets = []

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict[str, object]:
        out = super().describe()
        with self._lock:
            out.update({
                "replicated": True,
                "base_seq": self._base_seq,
                "last_seq": self.last_seq,
                "term": self._term,
                "followers": dict(self._acked),
                "checkpoints_deferred": self.checkpoints_deferred,
            })
        return out
