"""Replica side: bootstrap from a primary snapshot, then tail its log.

``bootstrap_from_primary`` drives the three-step snapshot protocol (see
:mod:`.shipper`) against a running primary and leaves on disk everything
a replica open needs: the store file (a page-level copy pinned at one
MVCC version), an empty write-ahead log, and a replication sidecar
carrying the primary's next sequence number and term -- so the replica's
:class:`~repro.replication.log.ReplicationLog` opens straight into the
primary's sequence space.

:class:`ReplicaTailer` then runs the replay loop on a background
thread: long-poll ``repl_fetch`` (each fetch acks the durable apply
horizon), parse the raw group run with the WAL's own parser, and replay
each group through :meth:`Pager.apply_replicated_group` bracketed by the
engine's ``note_replicated_apply`` / ``finish_replicated_apply`` hooks
-- the same cache-epoch discipline a local commit follows, so snapshot
reads on the replica stay consistent mid-replay.

Fencing: every shipped group carries the term it was committed under.
A group with a term *lower* than the replica's own is a message from a
deposed primary and stops the tailer (``stale_primary``); a *higher*
term is adopted durably.  Promotion replays whatever the local log
holds (the tailer applies every group the moment it is fetched, so the
log end is always applied), bumps the term, and the replica's log --
which carries the primary's exact stamps -- becomes a shippable source
itself.
"""

from __future__ import annotations

import base64
import os
import threading
import time

from ..storage.errors import CorruptionError
from ..storage.pager import wal_path
from ..storage.wal import WriteAheadLog
from .log import ReplicationLog, sidecar_path, split_shipped_label, \
    write_sidecar
from .shipper import base_store_of

#: Default long-poll window of one tail fetch (milliseconds).
DEFAULT_POLL_WAIT_MS = 500

#: Backoff bounds while the primary is unreachable.
_RETRY_BACKOFF_S = 0.1
_RETRY_MAX_BACKOFF_S = 2.0


def bootstrap_from_primary(call, dest_path: str,
                           replica_id: str) -> dict[str, object]:
    """Copy a primary's snapshot into ``dest_path``; returns the geometry.

    ``call`` is a request function (``ServiceClient.call``) bound to the
    primary.  On return the store file, a fresh WAL and the replication
    sidecar are on disk; open the store with
    ``wal_factory=ReplicationLog`` and hand it to a
    :class:`ReplicaTailer` starting after ``result["next_seq"] - 1``.
    """
    boot = call({"op": "repl_bootstrap", "replica_id": replica_id})
    session = boot["session"]
    n_pages = int(boot["n_pages"])
    page_size = int(boot["page_size"])
    try:
        with open(dest_path, "wb") as handle:
            page = 0
            while page < n_pages:
                chunk = call({"op": "repl_pages", "session": session,
                              "start_page": page,
                              "count": n_pages - page})
                data = base64.b64decode(chunk["data"])
                if chunk["start_page"] != page or \
                        len(data) != chunk["count"] * page_size:
                    raise CorruptionError(
                        "bootstrap page run out of sequence")
                handle.write(data)
                page += int(chunk["count"])
            handle.flush()
            os.fsync(handle.fileno())
    finally:
        call({"op": "repl_done", "session": session})
    log_path = wal_path(dest_path)
    if os.path.exists(log_path):
        os.remove(log_path)
    write_sidecar(sidecar_path(log_path), int(boot["next_seq"]),
                  int(boot["term"]))
    return boot


class ReplicaTailer:
    """Background replay loop keeping one replica index in sync."""

    def __init__(self, index, call, *, replica_id: str,
                 primary_address: str,
                 poll_wait_ms: int = DEFAULT_POLL_WAIT_MS,
                 max_groups: int = 256) -> None:
        store = base_store_of(index)
        pager = store.pager
        if pager is None or not isinstance(pager.wal, ReplicationLog):
            raise ValueError("replica store must be opened with "
                             "wal_factory=ReplicationLog")
        self._index = index
        self._store = store
        self._pager = pager
        self._log: ReplicationLog = pager.wal
        self._call = call
        self.replica_id = replica_id
        self.primary_address = primary_address
        self.poll_wait_ms = poll_wait_ms
        self.max_groups = max_groups
        #: Durable apply horizon; starts at whatever the local log holds.
        self.applied_seq = self._log.last_seq
        #: Primary's log end as of the last successful fetch.
        self.end_seq = self.applied_seq
        #: Primary's wall clock at its most recent commit (its report).
        self.last_primary_commit_at: float | None = None
        self.last_fetch_at: float | None = None
        self.status = "starting"       # starting|tailing|behind|
        #                                stale_primary|stopped|error
        self.error: str | None = None
        self.groups_applied = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-replica-tail")

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ReplicaTailer":
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    # -- the loop -----------------------------------------------------------

    def _run(self) -> None:
        backoff = _RETRY_BACKOFF_S
        while not self._stop.is_set():
            try:
                reply = self._call({
                    "op": "repl_fetch",
                    "replica_id": self.replica_id,
                    "after_seq": self.applied_seq,
                    "max_groups": self.max_groups,
                    "wait_ms": self.poll_wait_ms,
                })
            except Exception as exc:  # noqa: BLE001 -- primary may be down
                self.status = "error"
                self.error = f"{type(exc).__name__}: {exc}"
                if self._stop.wait(backoff):
                    break
                backoff = min(backoff * 2, _RETRY_MAX_BACKOFF_S)
                continue
            backoff = _RETRY_BACKOFF_S
            self.last_fetch_at = time.time()
            if reply.get("status") == "behind":
                # The primary truncated past our horizon: this replica
                # needs a fresh bootstrap (operator restarts it).
                self.status = "behind"
                self.error = (f"log truncated past seq {self.applied_seq} "
                              f"(primary base_seq {reply['base_seq']}); "
                              "re-bootstrap required")
                return
            try:
                self._apply_reply(reply)
            except _StaleTermError as exc:
                self.status = "stale_primary"
                self.error = str(exc)
                return
            self.status = "tailing"
            self.error = None
        self.status = "stopped"

    def _apply_reply(self, reply: dict) -> None:
        count = int(reply.get("count", 0))
        self.end_seq = int(reply["end_seq"])
        commit_at = reply.get("last_commit_at")
        if commit_at is not None:
            self.last_primary_commit_at = float(commit_at)
        if count == 0:
            return
        data = base64.b64decode(reply["data"])
        pos = 0
        applied_any = False
        for _ in range(count):
            parsed = WriteAheadLog._parse_group(data, pos)
            if parsed is None:
                raise CorruptionError("torn group in shipped run")
            label, records, pos = parsed
            if self._apply_group(label, records):
                applied_any = True
        if applied_any:
            # One metadata refresh per shipped run, not per group:
            # the pager already re-absorbed its header, this re-reads
            # the store-level meta and the engine-level config.
            self._store.reload_meta()
            self._index.finish_replicated_apply()
            with self._lock:
                self.groups_applied += count

    def _apply_group(self, label: bytes, records: list[bytes]) -> bool:
        version, seq, term = split_shipped_label(label)
        if seq is None or term is None:
            raise CorruptionError("shipped group without a seq stamp")
        if term < self._log.term:
            raise _StaleTermError(
                f"group seq {seq} carries term {term} < local term "
                f"{self._log.term}; the primary was deposed")
        if term > self._log.term:
            self._log.adopt_term(term)
        if seq <= self.applied_seq:
            return False    # bootstrap overlap: already in the snapshot
        if seq != self.applied_seq + 1:
            raise CorruptionError(
                f"sequence gap: expected {self.applied_seq + 1}, "
                f"got {seq}")
        self._index.note_replicated_apply(version)
        self._pager.apply_replicated_group(label, records, version=version)
        self.applied_seq = seq
        return True

    # -- promotion ----------------------------------------------------------

    def promote(self) -> int:
        """Stop tailing and fence: returns the new (bumped) term.

        Every fetched group is already applied (the loop never buffers),
        so "replay to the log end" holds by construction; the term bump
        is durable before this returns, so any group later arriving
        from the old primary fails the fence.
        """
        self.stop()
        return self._log.bump_term()

    # -- introspection ------------------------------------------------------

    def lag(self) -> dict[str, object]:
        """``{"lag_groups", "lag_seconds"}`` as of the last fetch."""
        lag_groups = max(0, self.end_seq - self.applied_seq)
        if lag_groups == 0:
            lag_seconds = 0.0
        elif self.last_primary_commit_at is not None:
            lag_seconds = max(0.0, time.time()
                              - self.last_primary_commit_at)
        else:
            lag_seconds = float("inf")
        return {"lag_groups": lag_groups, "lag_seconds": lag_seconds,
                "applied_seq": self.applied_seq, "end_seq": self.end_seq,
                "status": self.status, "error": self.error}


class _StaleTermError(Exception):
    """A shipped group carried a term below the replica's own."""
