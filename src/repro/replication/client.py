"""Replica-set aware client: routed reads, fenced writes, failover.

:class:`ReplicaSetClient` wraps one :class:`~repro.server.client.
ServiceClient` per endpoint and adds the routing policy:

* **reads** (``query`` / ``query_batch``) go round-robin over replicas
  whose last observed lag is within ``max_staleness_s`` (the primary
  always qualifies -- it is never stale); an endpoint that fails a read
  is dropped from rotation until the next role refresh and the read
  retries elsewhere, so one dead replica costs one exception, not an
  error surfaced to the caller;
* **writes** (``insert`` / ``delete`` / ``ingest``) go to the primary.
  A ``read_only`` error (the roles moved under us) or a connection
  failure triggers **failover**: endpoints are re-polled for
  ``role == "primary"`` with capped backoff until ``failover_timeout_s``
  expires -- promotion of a replica is picked up automatically.

Role and lag observations come from each endpoint's ``stats`` op and
are cached for ``role_refresh_s`` so routing does not add a stats round
trip per read.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from ..server.client import ServiceClient, ServiceError

__all__ = ["ReplicaSetClient"]

#: Transient connection errors worth failing over on.
_CONNECT_ERRORS = (ConnectionError, OSError)


def _parse_endpoint(endpoint: "str | tuple[str, int]") -> tuple[str, int]:
    if isinstance(endpoint, tuple):
        return endpoint[0], int(endpoint[1])
    host, _, port = endpoint.rpartition(":")
    return host or "127.0.0.1", int(port)


class _Endpoint:
    __slots__ = ("host", "port", "client", "role", "lag_seconds",
                 "checked_at", "alive")

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.client: ServiceClient | None = None
        self.role: str | None = None
        self.lag_seconds = float("inf")
        self.checked_at = 0.0
        self.alive = True

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class ReplicaSetClient:
    """Read/write routing over one primary and its replicas."""

    def __init__(self, endpoints: Sequence["str | tuple[str, int]"], *,
                 max_staleness_s: float = 5.0,
                 role_refresh_s: float = 1.0,
                 failover_timeout_s: float = 10.0,
                 connect_timeout: float = 2.0,
                 io_timeout: float | None = 60.0) -> None:
        if not endpoints:
            raise ValueError("at least one endpoint is required")
        self._endpoints = [_Endpoint(*_parse_endpoint(e))
                           for e in endpoints]
        self.max_staleness_s = max_staleness_s
        self.role_refresh_s = role_refresh_s
        self.failover_timeout_s = failover_timeout_s
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._rr = 0
        self._refreshed_at = 0.0

    # -- connections --------------------------------------------------------

    def _client_of(self, endpoint: _Endpoint) -> ServiceClient:
        if endpoint.client is None:
            endpoint.client = ServiceClient(
                endpoint.host, endpoint.port,
                connect_timeout=self._connect_timeout,
                io_timeout=self._io_timeout,
                retries=1)
        return endpoint.client

    def _drop(self, endpoint: _Endpoint) -> None:
        endpoint.alive = False
        if endpoint.client is not None:
            endpoint.client.close()
            endpoint.client = None

    # -- role discovery -----------------------------------------------------

    def refresh_roles(self, force: bool = False) -> None:
        """Re-poll every endpoint's role and lag (rate-limited)."""
        now = time.monotonic()
        if not force and now - self._refreshed_at < self.role_refresh_s:
            return
        self._refreshed_at = now
        for endpoint in self._endpoints:
            try:
                stats = self._client_of(endpoint).stats()
            except Exception:  # noqa: BLE001 -- any failure = not routable
                self._drop(endpoint)
                continue
            server = stats.get("server", {})
            endpoint.alive = True
            endpoint.role = server.get("role") or "primary"
            lag = server.get("replica_lag") or {}
            endpoint.lag_seconds = float(lag.get("lag_seconds", 0.0))
            endpoint.checked_at = now

    def primary(self) -> _Endpoint | None:
        self.refresh_roles()
        for endpoint in self._endpoints:
            if endpoint.alive and endpoint.role in (None, "primary"):
                return endpoint
        return None

    def _read_targets(self) -> list[_Endpoint]:
        """Replicas within the staleness bound, then the primary."""
        self.refresh_roles()
        fresh = [e for e in self._endpoints
                 if e.alive and e.role == "replica"
                 and e.lag_seconds <= self.max_staleness_s]
        primaries = [e for e in self._endpoints
                     if e.alive and e.role in (None, "primary")]
        if fresh:
            self._rr = (self._rr + 1) % len(fresh)
            return fresh[self._rr:] + fresh[:self._rr] + primaries
        return primaries + [e for e in self._endpoints
                            if e.alive and e.role == "replica"]

    # -- reads --------------------------------------------------------------

    def _routed_read(self, request: dict) -> Any:
        last_error: Exception | None = None
        for endpoint in self._read_targets():
            try:
                return self._client_of(endpoint).call(request)
            except _CONNECT_ERRORS as exc:
                last_error = exc
                self._drop(endpoint)
            except ServiceError as exc:
                if exc.code in ("shutting_down",):
                    last_error = exc
                    self._drop(endpoint)
                    continue
                raise
        if last_error is not None:
            raise last_error
        raise ConnectionError("no live endpoint to read from")

    def query(self, query: object, **options: Any) -> list[str]:
        request: dict[str, Any] = {"op": "query", "query": query}
        if options:
            request["options"] = options
        return self._routed_read(request)

    def query_batch(self, queries: Sequence[object],
                    **options: Any) -> list[list[str]]:
        request: dict[str, Any] = {"op": "query_batch",
                                   "queries": list(queries)}
        if options:
            request["options"] = options
        return self._routed_read(request)

    # -- writes (primary only, with failover) -------------------------------

    def _routed_write(self, request: dict) -> Any:
        deadline = time.monotonic() + self.failover_timeout_s
        backoff = 0.05
        while True:
            endpoint = self.primary()
            if endpoint is not None:
                try:
                    return self._client_of(endpoint).call(request)
                except ServiceError as exc:
                    if exc.code != "read_only":
                        raise
                    # Roles moved under us: what we believed was the
                    # primary demurred.  Re-discover and try again.
                    endpoint.role = "replica"
                except _CONNECT_ERRORS:
                    self._drop(endpoint)
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    "no reachable primary within "
                    f"{self.failover_timeout_s:.1f}s")
            time.sleep(backoff)
            backoff = min(backoff * 2, 1.0)
            # A dead endpoint may have restarted (or been promoted).
            for candidate in self._endpoints:
                candidate.alive = True
            self.refresh_roles(force=True)

    def insert(self, key: str, value: str) -> int:
        return self._routed_write({"op": "insert", "key": key,
                                   "value": value})["ordinal"]

    def delete(self, key: str) -> bool:
        return self._routed_write({"op": "delete",
                                   "key": key})["deleted"]

    def ingest(self, records: Sequence[tuple[str, str]]) -> dict:
        return self._routed_write({
            "op": "ingest",
            "records": [[key, value] for key, value in records]})

    # -- control ------------------------------------------------------------

    def promote(self, endpoint: "str | tuple[str, int]") -> dict:
        """Promote one endpoint to primary; returns the server's reply."""
        host, port = _parse_endpoint(endpoint)
        for known in self._endpoints:
            if (known.host, known.port) == (host, port):
                result = self._client_of(known).call({"op": "promote"})
                self.refresh_roles(force=True)
                return result
        with ServiceClient(host, port,
                           connect_timeout=self._connect_timeout) as client:
            return client.call({"op": "promote"})

    def stats(self) -> dict:
        return self._routed_read({"op": "stats"})

    def endpoints(self) -> list[dict[str, object]]:
        """Routing table view (for tests and ``info``)."""
        self.refresh_roles()
        return [{"address": e.address, "role": e.role,
                 "alive": e.alive, "lag_seconds": e.lag_seconds}
                for e in self._endpoints]

    def close(self) -> None:
        for endpoint in self._endpoints:
            if endpoint.client is not None:
                endpoint.client.close()
                endpoint.client = None

    def __enter__(self) -> "ReplicaSetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
