"""Zipfian sampling for skewed synthetic data (Section 5.1).

The paper's skewed data sets draw leaf values "such that data objects
exhibited a skewed Zipfian distribution of leaf values, across all sets in
the database [12]", with skew factor ``0 < θ < 1`` (closer to 1 = more
skew) and ``θ ∈ {0.5, 0.7, 0.9}``.

:class:`ZipfSampler` draws ranks ``1..n`` with probability proportional to
``1 / rank**θ`` via inverse-CDF sampling over a precomputed cumulative
table (numpy), which is exact and fast for the domain sizes used here.
"""

from __future__ import annotations

import random

import numpy as np


class ZipfSampler:
    """Draw 0-based ranks with Zipfian probabilities ``∝ 1/(rank+1)**θ``."""

    def __init__(self, n_items: int, theta: float,
                 rng: random.Random | None = None) -> None:
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        if not 0.0 < theta < 2.0:
            raise ValueError("theta must be in (0, 2); the paper uses (0, 1)")
        self.n_items = n_items
        self.theta = theta
        self._rng = rng if rng is not None else random.Random()
        weights = 1.0 / np.power(np.arange(1, n_items + 1, dtype=np.float64),
                                 theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self) -> int:
        """Draw one rank in ``[0, n_items)`` (rank 0 is the most popular)."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` i.i.d. ranks."""
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Exact probability mass of a 0-based rank."""
        if not 0 <= rank < self.n_items:
            raise ValueError(f"rank {rank} outside [0, {self.n_items})")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)


class UniformSampler:
    """Uniform ranks over ``[0, n_items)`` (the paper's uniform data sets)."""

    def __init__(self, n_items: int,
                 rng: random.Random | None = None) -> None:
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        self.n_items = n_items
        self._rng = rng if rng is not None else random.Random()

    def sample(self) -> int:
        return self._rng.randrange(self.n_items)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]
