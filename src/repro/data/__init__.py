"""Data substrate: dataset generators, adapters, and query workloads."""

from .dblp import article_xml, generate_articles
from .json_adapter import json_query, json_text_to_nested, json_to_nested
from .ingest import (
    DBLP_RECORD_TAGS,
    IngestError,
    iter_jsonl,
    iter_xml_records,
    load_jsonl_file,
    load_xml_file,
)
from .io import load_collection_file, save_collection_file
from .queries import (
    BenchmarkQuery,
    add_atom_at_random_node,
    fresh_atom,
    make_benchmark_queries,
    make_branching_queries,
    verify_workload,
)
from .synthetic import (
    DEEP,
    DEFAULT_DOMAIN,
    PAPER_DOMAIN,
    SHAPES,
    WIDE,
    DatasetSpec,
    ShapeParams,
    collection_profile,
    generate_collection,
    generate_nested_set,
)
from .twitter import generate_tweets
from .workflows import generate_workflows, provenance_query
from .xml_adapter import element_to_nested, xml_query, xml_text_to_nested
from .zipf import UniformSampler, ZipfSampler

__all__ = [
    "BenchmarkQuery",
    "DEEP",
    "DEFAULT_DOMAIN",
    "DatasetSpec",
    "PAPER_DOMAIN",
    "SHAPES",
    "ShapeParams",
    "UniformSampler",
    "WIDE",
    "ZipfSampler",
    "DBLP_RECORD_TAGS",
    "IngestError",
    "add_atom_at_random_node",
    "article_xml",
    "collection_profile",
    "element_to_nested",
    "fresh_atom",
    "generate_articles",
    "generate_collection",
    "generate_nested_set",
    "generate_tweets",
    "generate_workflows",
    "json_query",
    "json_text_to_nested",
    "json_to_nested",
    "iter_jsonl",
    "iter_xml_records",
    "load_collection_file",
    "load_jsonl_file",
    "load_xml_file",
    "make_benchmark_queries",
    "make_branching_queries",
    "provenance_query",
    "save_collection_file",
    "verify_workload",
    "xml_query",
    "xml_text_to_nested",
]
