"""Mapping JSON documents into the nested-set data model.

The paper indexes a Twitter crawl "in nested JSON format (which we
directly mapped into our data model)".  The direct mapping used here:

* a JSON **object** becomes a set containing

  - the atom ``"key=value"`` for every scalar field, and
  - for every object- or array-valued field, the mapped child set with the
    marker atom ``"@key"`` added (so field names survive the mapping);

* a JSON **array** becomes a set of its mapped elements (scalars become
  atoms, composites become child sets);

* scalars map to atoms: strings to themselves, ints stay ints, floats to
  their ``repr``, booleans to ``true``/``false``, ``null`` to ``"null"``.

The mapping loses array order and duplicates -- exactly the abstraction
the paper's set-based data model makes.
"""

from __future__ import annotations

import json
from typing import Union

from ..core.model import Atom, NestedSet

Json = Union[dict, list, str, int, float, bool, None]


def scalar_atom(value: str | int | float | bool | None) -> Atom:
    """Map a JSON scalar to an atom."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return value


def json_to_nested(value: Json) -> NestedSet:
    """Map any JSON value to a nested set (scalars become singletons)."""
    if isinstance(value, dict):
        atoms: list[Atom] = []
        children: list[NestedSet] = []
        for key, member in value.items():
            if isinstance(member, (dict, list)):
                children.append(json_to_nested(member).with_atom(f"@{key}"))
            else:
                atoms.append(f"{key}={scalar_atom(member)}")
        return NestedSet(atoms, children)
    if isinstance(value, list):
        atoms = []
        children = []
        for member in value:
            if isinstance(member, (dict, list)):
                children.append(json_to_nested(member))
            else:
                atoms.append(scalar_atom(member))
        return NestedSet(atoms, children)
    return NestedSet([scalar_atom(value)])


def json_text_to_nested(text: str) -> NestedSet:
    """Parse a JSON document and map it (convenience for files/streams)."""
    return json_to_nested(json.loads(text))


def json_query(template: Json) -> NestedSet:
    """Build a containment query from a partial JSON document.

    Because the mapping is structural, a JSON fragment mentioning only the
    fields of interest maps to a nested set that is homomorphically
    contained in the mapping of any document matching those fields --
    i.e. JSON "documents containing this sub-document" queries come for
    free (cf. Postgres ``jsonb @>``).
    """
    return json_to_nested(template)
