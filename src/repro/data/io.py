"""Reading and writing nested-set collections as flat text files.

Format: one record per line, ``key<TAB>nested-set-text`` with the
canonical text syntax of :meth:`repro.core.model.NestedSet.to_text`.
Lines starting with ``#`` and blank lines are ignored.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from ..core.model import NestedSet


class CollectionFormatError(ValueError):
    """Raised for malformed collection files."""


def dump_collection(records: Iterable[tuple[str, NestedSet]],
                    handle: TextIO) -> int:
    """Write records; returns the number written."""
    count = 0
    for key, tree in records:
        if "\t" in key or "\n" in key:
            raise CollectionFormatError(
                f"record key {key!r} contains a tab or newline")
        handle.write(f"{key}\t{tree.to_text()}\n")
        count += 1
    return count


def load_collection(handle: TextIO) -> Iterator[tuple[str, NestedSet]]:
    """Yield ``(key, tree)`` records from a collection file."""
    for line_no, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        key, sep, text = stripped.partition("\t")
        if not sep:
            raise CollectionFormatError(
                f"line {line_no}: expected 'key<TAB>set', got {stripped!r}")
        try:
            tree = NestedSet.parse(text)
        except ValueError as exc:
            raise CollectionFormatError(
                f"line {line_no}: bad nested set: {exc}") from exc
        yield key, tree


def save_collection_file(records: Iterable[tuple[str, NestedSet]],
                         path: str) -> int:
    """Write records to ``path``; returns the number written."""
    with open(path, "w") as handle:
        return dump_collection(records, handle)


def load_collection_file(path: str) -> list[tuple[str, NestedSet]]:
    """Read all records of a collection file."""
    with open(path) as handle:
        return list(load_collection(handle))
