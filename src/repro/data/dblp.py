"""Simulated DBLP collection (Section 5.1, second real data set).

The paper indexes article records from the DBLP Computer Science
Bibliography XML dump.  This module generates a synthetic bibliography
with the dump's record shape (``<article>`` elements with ``author``,
``title``, ``year``, ``journal``, ``pages`` children) and its hallmark
skew -- prolific authors and popular venues follow Zipf distributions, as
in the real data ("the distributions of values in both data sets were
skewed", Experiment 3).  Records go through the real XML adapter, so the
same code path a genuine DBLP dump would take is exercised.
"""

from __future__ import annotations

import random
import xml.etree.ElementTree as ET
from typing import Iterator

from ..core.model import NestedSet
from .xml_adapter import element_to_nested
from .zipf import ZipfSampler

#: Pool sizes for the skewed dimensions.
N_VENUES = 60
TITLE_VOCAB = 3000

_VENUE_NAMES = tuple(f"Journal of Topic {i}" for i in range(N_VENUES))


def generate_article(index: int, rng: random.Random, authors: ZipfSampler,
                     venues: ZipfSampler, words: ZipfSampler) -> ET.Element:
    """One synthetic DBLP ``<article>`` element."""
    article = ET.Element("article", {
        "key": f"journals/jt{venues.sample()}/rec{index}",
        "mdate": f"20{rng.randint(10, 12)}-{rng.randint(1, 12):02d}-01",
    })
    n_authors = rng.randint(1, 5)
    for rank in sorted({authors.sample() for _ in range(n_authors)}):
        author = ET.SubElement(article, "author")
        author.text = f"Author {rank}"
    title = ET.SubElement(article, "title")
    n_words = rng.randint(4, 10)
    title.text = " ".join(f"word{words.sample()}" for _ in range(n_words))
    year = ET.SubElement(article, "year")
    # Publication volume grows over time: skew years toward the recent end.
    year.text = str(2012 - min(int(rng.expovariate(0.15)), 40))
    journal = ET.SubElement(article, "journal")
    journal.text = _VENUE_NAMES[venues.sample()]
    pages = ET.SubElement(article, "pages")
    start = rng.randint(1, 900)
    pages.text = f"{start}-{start + rng.randint(5, 30)}"
    return article


def generate_articles(n_records: int, seed: int = 0,
                      n_authors: int | None = None
                      ) -> Iterator[tuple[str, NestedSet]]:
    """Yield ``(key, nested set)`` article records, deterministically."""
    rng = random.Random(("dblp", seed, n_records).__repr__())
    if n_authors is None:
        n_authors = max(100, n_records // 10)
    authors = ZipfSampler(n_authors, 0.85, rng)
    venues = ZipfSampler(N_VENUES, 0.8, rng)
    words = ZipfSampler(TITLE_VOCAB, 0.7, rng)
    width = max(6, len(str(n_records)))
    for index in range(n_records):
        element = generate_article(index, rng, authors, venues, words)
        yield f"a{index:0{width}d}", element_to_nested(element)


def article_xml(index: int = 0, seed: int = 0) -> str:
    """A raw XML snippet (handy for docs and the XML-adapter tests)."""
    rng = random.Random(("dblp", seed, "snippet", index).__repr__())
    authors = ZipfSampler(500, 0.85, rng)
    venues = ZipfSampler(N_VENUES, 0.8, rng)
    words = ZipfSampler(TITLE_VOCAB, 0.7, rng)
    element = generate_article(index, rng, authors, venues, words)
    return ET.tostring(element, encoding="unicode")
