"""Ingesting real document collections: JSON Lines and XML dumps.

The paper's real data sets are a Twitter crawl (nested JSON) and the DBLP
XML dump.  The simulated generators in :mod:`repro.data.twitter` /
:mod:`repro.data.dblp` stand in for those corpora in the benchmarks (we
cannot ship the originals), but a user with the actual files should be
able to ingest them directly.  This module provides the streaming
loaders:

* :func:`iter_jsonl` -- one JSON document per line (the shape Twitter's
  APIs and most document stores export), mapped through the JSON adapter;
* :func:`iter_xml_records` -- record elements pulled incrementally from
  an arbitrarily large XML file with ``iterparse`` (the DBLP dump is
  multi-GB; the whole tree is never materialized);

plus key-extraction hooks so records get stable identifiers from their
own content (tweet ``id_str``, DBLP ``key`` attribute, ...), and
:class:`StreamIngestor` -- a background batcher that turns a live record
stream (``nestcontain ingest --follow``, the server's ``ingest`` op)
into amortized write-ahead-log commit groups off the query path.
"""

from __future__ import annotations

import json
import threading
import xml.etree.ElementTree as ET
from typing import Callable, Iterator, TextIO

from ..core.model import NestedSet
from .json_adapter import json_to_nested
from .xml_adapter import element_to_nested


class IngestError(ValueError):
    """Raised for malformed input documents."""


#: Extracts a record key from a parsed JSON document (None = synthesize).
JsonKeyFn = Callable[[dict], "str | None"]
#: Extracts a record key from an XML element (None = synthesize).
XmlKeyFn = Callable[[ET.Element], "str | None"]


def default_json_key(document: dict) -> str | None:
    """id_str / id / key / _id, whichever the document carries first."""
    for field in ("id_str", "id", "key", "_id"):
        value = document.get(field)
        if value is not None:
            return str(value)
    return None


def default_xml_key(element: ET.Element) -> str | None:
    """The ``key`` or ``id`` attribute, DBLP-style."""
    for name in ("key", "id"):
        value = element.get(name)
        if value is not None:
            return value
    return None


def iter_jsonl(handle: TextIO, *, key_fn: JsonKeyFn = default_json_key,
               skip_invalid: bool = False
               ) -> Iterator[tuple[str, NestedSet]]:
    """Yield ``(key, nested set)`` records from a JSON Lines stream.

    Blank lines are ignored.  Malformed lines raise :class:`IngestError`
    (with the line number) unless ``skip_invalid`` is set.  Documents
    without an extractable key get ``doc<line_no>``.
    """
    for line_no, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            document = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if skip_invalid:
                continue
            raise IngestError(f"line {line_no}: invalid JSON: {exc}") \
                from exc
        key = None
        if isinstance(document, dict):
            key = key_fn(document)
        if key is None:
            key = f"doc{line_no}"
        yield key, json_to_nested(document)


def load_jsonl_file(path: str, **options: object
                    ) -> list[tuple[str, NestedSet]]:
    """Read a whole ``.jsonl`` file."""
    with open(path) as handle:
        return list(iter_jsonl(handle, **options))  # type: ignore[arg-type]


def iter_xml_records(source: "str | TextIO", record_tags: set[str], *,
                     key_fn: XmlKeyFn = default_xml_key
                     ) -> Iterator[tuple[str, NestedSet]]:
    """Stream record elements out of a large XML file.

    ``record_tags`` names the elements that constitute records (for DBLP:
    ``{"article", "inproceedings", "book", ...}``).  Elements are mapped
    and *cleared* as soon as their end tag arrives, so memory stays
    bounded by one record.  Records without an extractable key get
    ``<tag><ordinal>``.
    """
    if not record_tags:
        raise IngestError("record_tags must name at least one element")
    count = 0
    depth_stack: list[ET.Element] = []
    for event, element in ET.iterparse(source, events=("start", "end")):
        if event == "start":
            depth_stack.append(element)
            continue
        depth_stack.pop()
        if element.tag not in record_tags:
            continue
        # Only top-level-ish records: skip a record tag nested inside
        # another record tag (rare, but keeps semantics crisp).
        if any(parent.tag in record_tags for parent in depth_stack):
            continue
        key = key_fn(element)
        if key is None:
            key = f"{element.tag}{count}"
        yield key, element_to_nested(element)
        count += 1
        element.clear()


def load_xml_file(path: str, record_tags: set[str], **options: object
                  ) -> list[tuple[str, NestedSet]]:
    """Read every record element of an XML file."""
    return list(iter_xml_records(path, record_tags,
                                 **options))  # type: ignore[arg-type]


#: The record element names of the DBLP dump.
DBLP_RECORD_TAGS = frozenset({
    "article", "inproceedings", "proceedings", "book", "incollection",
    "phdthesis", "mastersthesis", "www",
})


# -- streaming ingest ---------------------------------------------------------


class StreamIngestor:
    """Batch a live record stream into WAL commit groups, off the hot path.

    ``submit(key, value)`` enqueues and returns immediately; a background
    thread gathers pending records and commits them through
    ``index.insert_batch`` -- **one** write-ahead-log group (one version,
    one fsync) per batch, flushed when ``batch_size`` records are waiting
    or ``flush_interval`` seconds pass with a partial batch, whichever
    comes first.  Under the engine's MVCC read path these commits never
    block in-flight queries: readers keep their pinned versions and each
    group lands as one atomic version step.

    A batch that fails wholesale (one malformed record aborts its whole
    transactional group) is retried record by record, so one bad record
    costs only itself; per-record failures count in :attr:`errors`.

    Thread-safe for any number of producers.  Counters:
    :attr:`records_ingested`, :attr:`groups_committed`, :attr:`errors`.
    """

    def __init__(self, index: object, *, batch_size: int = 64,
                 flush_interval: float = 0.25) -> None:
        self._index = index
        self.batch_size = max(1, int(batch_size))
        self.flush_interval = max(0.001, float(flush_interval))
        self._cond = threading.Condition()
        self._pending: list[tuple[str, object]] = []
        self._submitted = 0
        self._completed = 0
        self._closing = False
        self._force_flush = False
        self.records_ingested = 0
        self.groups_committed = 0
        self.errors = 0
        self._failure: BaseException | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-ingest", daemon=True)
        self._started = False

    # -- producer side -----------------------------------------------------

    def start(self) -> "StreamIngestor":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def submit(self, key: str, value: object) -> None:
        """Enqueue one record; returns before it is committed."""
        with self._cond:
            if self._closing:
                raise IngestError("ingestor is closed")
            self._pending.append((key, value))
            self._submitted += 1
            if len(self._pending) >= self.batch_size:
                self._cond.notify_all()
        if not self._started:
            self.start()

    def flush(self, timeout: float | None = None) -> bool:
        """Block until everything submitted so far is committed."""
        with self._cond:
            target = self._submitted
            self._force_flush = True
            self._cond.notify_all()
            return self._cond.wait_for(
                lambda: self._completed >= target, timeout=timeout)

    def counters(self) -> dict[str, int]:
        with self._cond:
            return {
                "records_ingested": self.records_ingested,
                "groups_committed": self.groups_committed,
                "errors": self.errors,
                "pending": len(self._pending),
            }

    def close(self) -> None:
        """Flush the tail and stop the background thread (idempotent)."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._cond.notify_all()
        if self._started:
            self._thread.join()

    def __enter__(self) -> "StreamIngestor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- background thread -------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: (len(self._pending) >= self.batch_size
                             or self._force_flush or self._closing),
                    timeout=self.flush_interval)
                batch = self._pending[:self.batch_size]
                del self._pending[:self.batch_size]
                if not self._pending:   # sticky until the queue drains,
                    self._force_flush = False  # so a flush empties it all
                done = self._closing and not batch
            if batch:
                self._commit(batch)
                with self._cond:
                    self._completed += len(batch)
                    self._cond.notify_all()
            elif done:
                return

    def _commit(self, batch: list[tuple[str, object]]) -> None:
        try:
            self._index.insert_batch(batch)
        except Exception:
            # The group aborted as a unit; salvage record by record so
            # one malformed document costs only itself.
            for key, value in batch:
                try:
                    self._index.insert(key, value)
                except Exception:
                    with self._cond:
                        self.errors += 1
                else:
                    with self._cond:
                        self.records_ingested += 1
                        self.groups_committed += 1
        else:
            with self._cond:
                self.records_ingested += len(batch)
                self.groups_committed += 1
