"""Synthetic nested-set generators (Section 5.1, Table 3).

The paper's generation process, quoted:

    "starting at the root, (1) randomly choose a number of leaf nodes for
    the current node; (2) after assigning labels to the leaf children of
    the current node, stop extending this node with some probability;
    (3) if we do not stop, then randomly choose some number of internal
    children, and recur on each of them, starting at step (1)."

Table 3 parameters:

    ===============================  =====  =====
    parameter                        wide   deep
    ===============================  =====  =====
    max # of leaves per node          12     2
    max # of non-leaves per node       6     3
    stopping probability              0.8   0.2
    ===============================  =====  =====

Leaf values come from a fixed label domain (10,000,000 labels in the
paper; default 100,000 here -- laptop scale, see DESIGN.md substitutions),
drawn uniformly or Zipfian (θ ∈ {0.5, 0.7, 0.9}).

One necessary guard the paper leaves implicit: with the deep parameters
the branching process is supercritical (continue with p=0.8 and 1-3
children ⇒ expected ≈2 children ⇒ infinite trees with positive
probability), so a ``max_depth`` cap forces termination; at the cap the
node always stops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..core.model import NestedSet
from .zipf import UniformSampler, ZipfSampler

#: Paper default label-domain size (Section 5.1).
PAPER_DOMAIN = 10_000_000
#: Scaled default for laptop-size experiments.
DEFAULT_DOMAIN = 100_000


@dataclass(frozen=True)
class ShapeParams:
    """Tree-shape parameters of Table 3 plus the termination guard."""

    max_leaves: int
    max_internal: int
    stop_probability: float
    max_depth: int

    def __post_init__(self) -> None:
        if self.max_leaves < 1:
            raise ValueError("max_leaves must be >= 1 (non-empty sets)")
        if self.max_internal < 1:
            raise ValueError("max_internal must be >= 1")
        if not 0.0 < self.stop_probability <= 1.0:
            raise ValueError("stop_probability must be in (0, 1]")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")


#: Table 3, "wide sets" column.
WIDE = ShapeParams(max_leaves=12, max_internal=6, stop_probability=0.8,
                   max_depth=8)
#: Table 3, "deep sets" column.  The depth cap matters here: the deep
#: branching process is supercritical (expected ≈1.6 internal children per
#: continuing node), so expected tree size grows geometrically with the
#: cap.  Depth 10 yields ~100-300 nodes per record -- deep *and*
#: laptop-sized; see DESIGN.md.
DEEP = ShapeParams(max_leaves=2, max_internal=3, stop_probability=0.2,
                   max_depth=10)

SHAPES = {"wide": WIDE, "deep": DEEP}
DISTRIBUTIONS = ("uniform", "zipf")


@dataclass(frozen=True)
class DatasetSpec:
    """Full recipe for one synthetic collection."""

    shape: str = "wide"
    distribution: str = "uniform"
    theta: float = 0.7
    domain_size: int = DEFAULT_DOMAIN

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"unknown shape {self.shape!r}; "
                             f"expected one of {tuple(SHAPES)}")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(f"unknown distribution {self.distribution!r}; "
                             f"expected one of {DISTRIBUTIONS}")
        if self.domain_size < 1:
            raise ValueError("domain_size must be >= 1")

    @property
    def name(self) -> str:
        """Identifier like ``uniform-wide`` or ``zipf0.7-deep``."""
        if self.distribution == "uniform":
            return f"uniform-{self.shape}"
        return f"zipf{self.theta}-{self.shape}"


def _label_sampler(spec: DatasetSpec, rng: random.Random):
    if spec.distribution == "uniform":
        return UniformSampler(spec.domain_size, rng)
    return ZipfSampler(spec.domain_size, spec.theta, rng)


def generate_nested_set(rng: random.Random, sampler,
                        params: ShapeParams) -> NestedSet:
    """Generate one nested set by the paper's recursive process."""

    def gen(depth: int) -> NestedSet:
        n_leaves = rng.randint(1, params.max_leaves)
        atoms = {f"v{sampler.sample()}" for _ in range(n_leaves)}
        children: list[NestedSet] = []
        stop = depth >= params.max_depth or \
            rng.random() < params.stop_probability
        if not stop:
            n_internal = rng.randint(1, params.max_internal)
            children = [gen(depth + 1) for _ in range(n_internal)]
        return NestedSet(atoms, children)

    return gen(1)


def generate_collection(n_records: int, spec: DatasetSpec = DatasetSpec(),
                        seed: int = 0) -> Iterator[tuple[str, NestedSet]]:
    """Yield ``(key, nested set)`` records for a collection of size ``n``.

    Deterministic in ``(n_records, spec, seed)``; keys are ``s000001``-style
    so result lists sort stably.
    """
    rng = random.Random((seed, spec.name, n_records).__repr__())
    sampler = _label_sampler(spec, rng)
    params = SHAPES[spec.shape]
    width = max(6, len(str(n_records)))
    for index in range(n_records):
        yield f"s{index:0{width}d}", generate_nested_set(rng, sampler, params)


def collection_profile(records: list[tuple[str, NestedSet]]) -> dict[str, float]:
    """Shape diagnostics used by tests and EXPERIMENTS.md."""
    if not records:
        return {"records": 0, "avg_depth": 0.0, "avg_leaves": 0.0,
                "avg_internal": 0.0, "distinct_atoms": 0}
    total_depth = sum(tree.depth for _key, tree in records)
    total_leaves = sum(tree.leaf_count for _key, tree in records)
    total_internal = sum(tree.internal_count for _key, tree in records)
    atoms: set = set()
    for _key, tree in records:
        atoms |= tree.all_atoms()
    n = len(records)
    return {
        "records": n,
        "avg_depth": total_depth / n,
        "avg_leaves": total_leaves / n,
        "avg_internal": total_internal / n,
        "distinct_atoms": len(atoms),
    }
