"""Simulated scientific-workflow provenance (the paper's §1 motivation).

The introduction motivates nested sets with "business and scientific
workflow management": a workflow run is naturally a nested structure --
the run contains stages, stages contain task invocations, invocations
carry parameters, consumed datasets, and produced artifacts.  Containment
queries then express provenance questions: *which runs executed an
alignment task on the hg38 reference with quality filtering enabled?*

The generator emits runs over a library of pipeline templates with
Zipf-skewed tool popularity, realistic parameter jitter, and shared
upstream datasets -- the workload shapes (repeated hot sub-structures,
deep nesting) that drive the paper's algorithms.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..core.model import NestedSet
from .zipf import ZipfSampler

#: Tool library: (tool name, parameter domains).
TOOLS = (
    ("align", {"ref": ("hg38", "hg19", "mm10"),
               "mode": ("fast", "sensitive")}),
    ("filter", {"quality": ("q20", "q30"), "dedup": ("on", "off")}),
    ("assemble", {"kmer": ("k21", "k33", "k55")}),
    ("annotate", {"db": ("refseq", "ensembl")}),
    ("normalize", {"method": ("tmm", "deseq")}),
    ("cluster", {"algo": ("kmeans", "hdbscan"), "k": ("k5", "k10")}),
    ("plot", {"kind": ("heatmap", "volcano")}),
    ("export", {"format": ("csv", "parquet")}),
)

_STATUSES = ("ok", "ok", "ok", "failed", "retried")
_USERS = 40
_DATASETS = 200


def _invocation(rng: random.Random, tools: ZipfSampler,
                datasets: ZipfSampler) -> NestedSet:
    """One task invocation: tool, parameters, inputs, outputs."""
    tool, params = TOOLS[tools.sample()]
    atoms = [f"tool={tool}", f"status={rng.choice(_STATUSES)}"]
    chosen = {name: rng.choice(values) for name, values in params.items()
              if rng.random() < 0.8}
    children = [NestedSet([f"{name}={value}" for name, value
                           in chosen.items()] or ["defaults"])]
    inputs = {f"ds{datasets.sample()}" for _ in range(rng.randint(1, 3))}
    children.append(NestedSet(inputs).with_atom("inputs"))
    if rng.random() < 0.7:
        children.append(NestedSet(
            [f"artifact{rng.randrange(10_000)}"], ()).with_atom("outputs"))
    return NestedSet(atoms, children)


def generate_run(index: int, rng: random.Random, tools: ZipfSampler,
                 datasets: ZipfSampler, users: ZipfSampler) -> NestedSet:
    """One workflow run: metadata plus 1-4 stages of 1-4 invocations."""
    atoms = [
        f"user=u{users.sample()}",
        f"day=2013-{1 + rng.randrange(12):02d}-{1 + rng.randrange(28):02d}",
        rng.choice(("env=cluster", "env=laptop", "env=cloud")),
    ]
    stages = []
    for stage_no in range(rng.randint(1, 4)):
        invocations = [_invocation(rng, tools, datasets)
                       for _ in range(rng.randint(1, 4))]
        stages.append(NestedSet([f"stage{stage_no}"], invocations))
    return NestedSet(atoms, stages)


def generate_workflows(n_records: int, seed: int = 0
                       ) -> Iterator[tuple[str, NestedSet]]:
    """Yield ``(key, nested set)`` workflow runs, deterministically."""
    rng = random.Random(("workflows", seed, n_records).__repr__())
    tools = ZipfSampler(len(TOOLS), 0.9, rng)
    datasets = ZipfSampler(_DATASETS, 0.9, rng)
    users = ZipfSampler(_USERS, 0.8, rng)
    width = max(6, len(str(n_records)))
    for index in range(n_records):
        yield f"run{index:0{width}d}", generate_run(index, rng, tools,
                                                    datasets, users)


def provenance_query(tool: str, **params: str) -> NestedSet:
    """Build the containment query for 'runs that invoked *tool* with
    these parameter settings', e.g. ``provenance_query("align",
    ref="hg38")``."""
    param_set = NestedSet([f"{name}={value}"
                           for name, value in params.items()])
    invocation = NestedSet([f"tool={tool}"],
                           [param_set] if params else ())
    return NestedSet((), [NestedSet((), [invocation])])
