"""Simulated Twitter collection (Section 5.1, first real data set).

The paper indexes a crawl of tweets about a pop idol ("Justin Bieber")
collected through the Twitter Search API; we cannot ship that crawl, so
this module generates a synthetic stream with the same two properties that
drive the paper's observations (see DESIGN.md, substitutions):

1. the **nested JSON shape** of Search-API tweets (user object, entities
   with hashtags / urls / mentions), mapped through
   :mod:`repro.data.json_adapter`;
2. the **heavy skew** of values: "popular users dominate the Twitter
   discussion of the pop idol" -- users, terms, hashtags and languages are
   all Zipf-distributed, with idol-related terms pinned to the hottest
   ranks.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..core.model import NestedSet
from .json_adapter import json_to_nested
from .zipf import ZipfSampler

#: Idol-related terms pinned to the most popular vocabulary ranks.
IDOL_TERMS = (
    "justin", "bieber", "belieber", "music", "concert", "tour",
    "album", "love", "omg", "tickets",
)
_LANGS = ("en", "es", "pt", "id", "tr", "fr", "de", "nl")
_DOMAINS = ("t.co", "youtu.be", "bit.ly", "instagr.am", "twitpic.com")

#: Default vocabulary size behind the idol terms.
VOCAB_SIZE = 5000


def _word(rank: int) -> str:
    if rank < len(IDOL_TERMS):
        return IDOL_TERMS[rank]
    return f"w{rank}"


def generate_tweet(index: int, rng: random.Random, users: ZipfSampler,
                   words: ZipfSampler, langs: ZipfSampler,
                   domains: ZipfSampler, days: int = 30) -> dict:
    """One synthetic Search-API-shaped tweet as a JSON-like dict."""
    n_words = rng.randint(4, 12)
    text_tokens = sorted({_word(words.sample()) for _ in range(n_words)})
    hashtags = [{"text": _word(words.sample())}
                for _ in range(rng.randint(0, 3))]
    urls = [{"display_url": _DOMAINS[domains.sample()]}
            for _ in range(rng.randint(0, 2))]
    mentions = [{"screen_name": f"user{users.sample()}"}
                for _ in range(rng.randint(0, 2))]
    followers = rng.choice(("1k", "10k", "100k", "1m"))
    return {
        "id_str": str(10 ** 17 + index),
        "text_tokens": text_tokens,
        "lang": _LANGS[langs.sample()],
        "created_at": f"2012-03-{1 + rng.randrange(days):02d}",
        "retweeted": rng.random() < 0.3,
        "user": {
            "screen_name": f"user{users.sample()}",
            "lang": _LANGS[langs.sample()],
            "followers_class": followers,
            "verified": rng.random() < 0.05,
        },
        "entities": {
            "hashtags": hashtags,
            "urls": urls,
            "user_mentions": mentions,
        },
    }


def generate_tweets(n_records: int, seed: int = 0,
                    n_users: int | None = None,
                    vocab_size: int = VOCAB_SIZE
                    ) -> Iterator[tuple[str, NestedSet]]:
    """Yield ``(key, nested set)`` tweet records, deterministically."""
    rng = random.Random(("twitter", seed, n_records).__repr__())
    if n_users is None:
        n_users = max(50, n_records // 20)
    users = ZipfSampler(n_users, 0.9, rng)
    words = ZipfSampler(vocab_size, 0.8, rng)
    langs = ZipfSampler(len(_LANGS), 0.9, rng)
    domains = ZipfSampler(len(_DOMAINS), 0.9, rng)
    width = max(6, len(str(n_records)))
    for index in range(n_records):
        tweet = generate_tweet(index, rng, users, words, langs, domains)
        yield f"t{index:0{width}d}", json_to_nested(tweet)
