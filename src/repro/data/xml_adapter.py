"""Mapping XML documents into the nested-set data model.

The paper's second real data set is the DBLP bibliography "as an XML
database ... which we mapped directly into nested sets in our model".
The direct mapping used here, per element:

* the marker atom ``"#tag"`` identifies the element type,
* every attribute contributes the atom ``"@name=value"``,
* non-empty text content contributes the atom ``"tag=text"`` (stripped),
* child elements map recursively to child sets.

So ``<article key="x"><author>A. Turing</author></article>`` becomes
``{#article, @key=x, {#author, author=A. Turing}}``.  Element order and
repeated identical children collapse, which is the set abstraction the
paper adopts.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..core.model import NestedSet


def element_to_nested(element: ET.Element) -> NestedSet:
    """Map one ``xml.etree`` element (recursively) to a nested set."""
    atoms: list[str] = [f"#{element.tag}"]
    for name, value in element.attrib.items():
        atoms.append(f"@{name}={value}")
    text = (element.text or "").strip()
    if text:
        atoms.append(f"{element.tag}={text}")
    children = [element_to_nested(child) for child in element]
    return NestedSet(atoms, children)


def xml_text_to_nested(text: str) -> NestedSet:
    """Parse an XML snippet and map its root element."""
    return element_to_nested(ET.fromstring(text))


def xml_query(text: str) -> NestedSet:
    """Build a containment query from a partial XML fragment.

    A fragment mentioning only the elements/attributes of interest maps to
    a nested set homomorphically contained in the mapping of any document
    exhibiting that structure.
    """
    return xml_text_to_nested(text)
