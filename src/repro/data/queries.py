"""Benchmark query workloads (Section 5.1, "Queries").

The paper's protocol: "we arbitrarily selected 100 nested sets from each
data collection S.  We distorted half of the selected queries such that
they are not contained in the data collection (i.e., we have 50 positive
and 50 negative queries for each S); this was done by adding a new leaf
value to each set which does not appear anywhere else in the database."

:func:`make_benchmark_queries` reproduces the protocol: queries are
sampled records; negatives get a fresh ``__absent_i__`` atom (the double
underscore namespace is reserved -- no generator nor adapter in this
repository produces such atoms, and the function verifies absence against
the provided records).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.model import Atom, NestedSet


@dataclass(frozen=True)
class BenchmarkQuery:
    """One workload query plus its provenance."""

    key: str            # workload-local identifier, q000 ...
    query: NestedSet
    positive: bool      # sampled verbatim (True) or distorted (False)
    source_key: str     # record the query was sampled from


def fresh_atom(index: int) -> str:
    """The reserved fresh-leaf atom injected into negative queries."""
    return f"__absent_{index}__"


def add_atom_at_random_node(tree: NestedSet, atom: Atom,
                            rng: random.Random) -> NestedSet:
    """Rebuild ``tree`` with ``atom`` added to one uniformly random node."""
    nodes = list(tree.iter_sets())
    target = nodes[rng.randrange(len(nodes))]

    def rebuild(node: NestedSet) -> NestedSet:
        children = frozenset(rebuild(child) for child in node.children)
        atoms = node.atoms | {atom} if node is target else node.atoms
        return NestedSet(atoms, children)

    return rebuild(tree)


def make_benchmark_queries(records: Sequence[tuple[str, NestedSet]],
                           n_queries: int = 100,
                           negative_fraction: float = 0.5,
                           seed: int = 0,
                           distort: str = "root"
                           ) -> list[BenchmarkQuery]:
    """Sample the paper's benchmark workload from a collection.

    ``distort`` places the fresh leaf at the ``"root"`` (the paper's
    phrasing, "adding a new leaf value to each set") or at a ``"random"``
    node of the query tree.
    """
    if not records:
        raise ValueError("cannot sample queries from an empty collection")
    if not 0.0 <= negative_fraction <= 1.0:
        raise ValueError("negative_fraction must be in [0, 1]")
    if distort not in ("root", "random"):
        raise ValueError(f"unknown distortion site {distort!r}")
    rng = random.Random(("queries", seed, n_queries).__repr__())
    if n_queries <= len(records):
        sampled = rng.sample(list(records), n_queries)
    else:
        sampled = [records[rng.randrange(len(records))]
                   for _ in range(n_queries)]
    n_negative = round(n_queries * negative_fraction)
    # Interleave positives and negatives so a truncated workload still
    # exercises both kinds.
    flags = [index < n_negative for index in range(n_queries)]
    rng.shuffle(flags)
    workload: list[BenchmarkQuery] = []
    width = max(3, len(str(n_queries)))
    for index, ((source_key, tree), negative) in enumerate(
            zip(sampled, flags)):
        if negative:
            atom = fresh_atom(index)
            if distort == "root":
                query = tree.with_atom(atom)
            else:
                query = add_atom_at_random_node(tree, atom, rng)
        else:
            query = tree
        workload.append(BenchmarkQuery(
            key=f"q{index:0{width}d}", query=query,
            positive=not negative, source_key=source_key))
    return workload


def make_branching_queries(records: Sequence[tuple[str, NestedSet]],
                           n_queries: int = 50, seed: int = 0,
                           branch: int = 3) -> list[NestedSet]:
    """Wide conjunctive queries for evaluation-order experiments.

    Each query is an atom-free root with ``branch`` internal children,
    every child the subtree of a random internal node sampled from a
    random record.  Such a query asks for a record containing *all*
    ``branch`` structures at once -- sibling subqueries with wildly
    different selectivities, which is the regime where the planner's
    ordering decisions (P1) matter.  Most queries are unsatisfiable
    (their parts come from different records), so finding the most
    selective child first pays directly.
    """
    if branch < 1:
        raise ValueError("branch must be >= 1")
    rng = random.Random(("branching", seed, n_queries, branch).__repr__())
    pool: list[NestedSet] = []
    for _key, tree in records:
        pool.extend(tree.iter_sets())
    if not pool:
        raise ValueError("cannot sample subqueries from an empty collection")
    queries = []
    for _ in range(n_queries):
        children = [pool[rng.randrange(len(pool))] for _ in range(branch)]
        queries.append(NestedSet((), children))
    return queries


def verify_workload(workload: Sequence[BenchmarkQuery],
                    records: Sequence[tuple[str, NestedSet]]) -> None:
    """Assert the protocol invariants (used by tests and the harness).

    Every negative query must carry an atom absent from the collection;
    every positive query must be verbatim equal to its source record.
    """
    record_atoms: set = set()
    by_key = dict(records)
    for _key, tree in records:
        record_atoms |= tree.all_atoms()
    for bench in workload:
        if bench.positive:
            if bench.query != by_key[bench.source_key]:
                raise AssertionError(
                    f"positive query {bench.key} differs from its source")
        else:
            alien = bench.query.all_atoms() - record_atoms
            if not alien:
                raise AssertionError(
                    f"negative query {bench.key} has no fresh leaf")
