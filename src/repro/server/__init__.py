"""Concurrent query service: protocol, asyncio server, blocking client.

See DESIGN.md §11 for the frame format, admission control, and the
reader/writer coordination contract the server relies on.
"""

from .client import ServiceClient, ServiceError
from .gateway import HttpGateway
from .metrics import ServerMetrics
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError
from .server import QueryServer, ServerThread

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "HttpGateway",
    "ProtocolError",
    "QueryServer",
    "ServerThread",
    "ServerMetrics",
    "ServiceClient",
    "ServiceError",
]
