"""Blocking client for the query service.

:class:`ServiceClient` speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol` over one TCP connection, sequentially: send
a request frame, read a response frame.  That keeps the client trivial
to reason about (no multiplexing, no response matching) -- concurrency
comes from opening more clients, which is exactly the shape of the
server-side micro-batching experiments.

Server-reported errors surface as :class:`ServiceError` with the
protocol error code (``overloaded``, ``timeout``, ...) preserved so
callers can branch on it -- e.g. retry on ``overloaded``, give up on
``bad_request``.
"""

from __future__ import annotations

import socket
from typing import Any, Sequence

from .protocol import ProtocolError, recv_frame, send_frame

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A response with ``ok: false``; ``code`` is the protocol code."""

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
        self.message = message


class ServiceClient:
    """One blocking connection to a running query server.

    Usable as a context manager::

        with ServiceClient(port=handle.port) as client:
            hits = client.query("{a, {b, c}}")
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 connect_timeout: float = 5.0,
                 io_timeout: float | None = 60.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(io_timeout)
        # One small frame per request: batching happens server-side, so
        # trade throughput-by-coalescing-on-the-wire for latency.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- plumbing ----------------------------------------------------------

    def call(self, request: dict) -> Any:
        """Send one request, return the ``result`` of an ok response."""
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if not isinstance(response, dict) or "ok" not in response:
            raise ProtocolError(f"malformed response: {response!r}")
        if not response["ok"]:
            raise ServiceError(response.get("error", "internal"),
                               response.get("message", ""))
        return response["result"]

    # -- operations --------------------------------------------------------

    def ping(self) -> str:
        return self.call({"op": "ping"})

    def query(self, query: str, *, timeout_ms: float | None = None,
              **options: Any) -> list[str]:
        """Evaluate one containment query; returns matching record keys."""
        request: dict[str, Any] = {"op": "query", "query": query}
        if options:
            request["options"] = options
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def query_batch(self, queries: Sequence[str], *,
                    timeout_ms: float | None = None,
                    **options: Any) -> list[list[str]]:
        """Evaluate many queries in one round trip (one engine batch)."""
        request: dict[str, Any] = {"op": "query_batch",
                                   "queries": list(queries)}
        if options:
            request["options"] = options
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def insert(self, key: str, value: str, *,
               timeout_ms: float | None = None) -> int:
        """Insert one record; returns its ordinal in the index."""
        request: dict[str, Any] = {"op": "insert", "key": key,
                                   "value": value}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)["ordinal"]

    def delete(self, key: str, *,
               timeout_ms: float | None = None) -> bool:
        """Tombstone one record; True if the key existed."""
        request: dict[str, Any] = {"op": "delete", "key": key}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)["deleted"]

    def ingest(self, records: "Sequence[tuple[str, str]]", *,
               timeout_ms: float | None = None) -> dict:
        """Enqueue records for streaming ingest (returns before commit).

        The server batches accepted records into write-ahead-log commit
        groups off the query path; the response carries the ingestor's
        cumulative counters, not a completion acknowledgment.
        """
        request: dict[str, Any] = {
            "op": "ingest",
            "records": [[key, value] for key, value in records],
        }
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def stats(self) -> dict:
        """Server counters plus engine counters, one consistent snapshot."""
        return self.call({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to drain gracefully; returns its acknowledgment."""
        return self.call({"op": "shutdown"})

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
