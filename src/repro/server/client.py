"""Blocking client for the query service.

:class:`ServiceClient` speaks the length-prefixed protocol of
:mod:`repro.server.protocol` over one TCP connection.  Two wire formats
are supported:

* ``wire="binary"`` (the default) -- versioned binary frames carrying a
  request id.  Queries are parsed client-side and shipped as structural
  atom arrays, so the server never parses text; responses decode
  through the packed-id fast path.  Because every response is tagged,
  the connection can be **pipelined**: :meth:`submit` sends a request
  without waiting, :meth:`drain` collects every outstanding response,
  and :meth:`query_pipelined` keeps a bounded window of requests in
  flight -- this is what lets the server's micro-batcher coalesce a
  single client's burst into one engine call.
* ``wire="json"`` -- the PR 5 length-prefixed JSON frames, strictly one
  request per round trip.  Kept for compatibility (and as the benchmark
  comparison point).

Server-reported errors surface as :class:`ServiceError` with the
protocol error code (``overloaded``, ``timeout``, ...) preserved so
callers can branch on it -- e.g. retry on ``overloaded``, give up on
``bad_request``.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Sequence

from .protocol import (
    ProtocolError,
    decode_response_body,
    encode_frame,
    encode_request_binary,
    recv_frame_bytes,
)

__all__ = ["ServiceClient", "ServiceError"]

#: Default bound on outstanding pipelined requests per connection.
DEFAULT_PIPELINE_WINDOW = 32

#: Connection-level failures worth a transparent reconnect: the server
#: restarted, a proxy dropped the connection, or the connect raced a
#: listener coming up.  Timeouts are *not* here -- a timeout may mean
#: the request is still executing, and retrying it would double-apply.
_TRANSIENT_ERRORS = (ConnectionRefusedError, ConnectionResetError,
                     ConnectionAbortedError, BrokenPipeError)


def _is_transient(exc: BaseException) -> bool:
    if isinstance(exc, _TRANSIENT_ERRORS):
        return True
    # recv_frame_bytes folds an EOF mid-frame into ProtocolError; a
    # clean close between frames surfaces as "server closed ...".
    return isinstance(exc, ProtocolError) and "closed" in str(exc)


class ServiceError(Exception):
    """A response with ``ok: false``; ``code`` is the protocol code."""

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
        self.message = message


class ServiceClient:
    """One blocking connection to a running query server.

    Usable as a context manager::

        with ServiceClient(port=handle.port) as client:
            hits = client.query("{a, {b, c}}")

    Pipelined (binary wire only)::

        ids = [client.submit({"op": "query", "query": q})
               for q in queries]
        results = client.drain()            # {request_id: result}
        answers = [results[i] for i in ids]
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 connect_timeout: float = 5.0,
                 io_timeout: float | None = 60.0,
                 wire: str = "binary",
                 retries: int = 0,
                 retry_backoff_s: float = 0.05,
                 retry_max_backoff_s: float = 2.0) -> None:
        if wire not in ("binary", "json"):
            raise ValueError(f"wire must be 'binary' or 'json', "
                             f"got {wire!r}")
        self.wire = wire
        #: Transparent reconnect budget on *transient* connection
        #: errors (refused connect, reset mid-frame).  Off by default:
        #: a replayed ``insert`` is not idempotent, so opting in is the
        #: caller asserting the workload tolerates at-least-once.  The
        #: pipelined :meth:`drain` path retries regardless (see there).
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_max_backoff_s = retry_max_backoff_s
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._next_id = 1
        #: request id -> encoded frame, kept until its response arrives
        #: so a reconnect can replay the in-flight window verbatim.
        self._outstanding: dict[int, bytes | None] = {}
        #: Prepared-query cache: text -> encoded nested-set section,
        #: so repeated queries skip the parse + atom-table work.
        self._query_cache: dict[str, bytes] = {}
        self._sock: socket.socket | None = None
        self._connect(attempts=self.retries)

    # -- plumbing ----------------------------------------------------------

    def _connect(self, attempts: int = 0) -> None:
        """(Re)open the TCP connection, with capped exponential backoff."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        backoff = self.retry_backoff_s
        for attempt in range(attempts + 1):
            try:
                self._sock = socket.create_connection(
                    (self._host, self._port),
                    timeout=self._connect_timeout)
                break
            except _TRANSIENT_ERRORS:
                if attempt == attempts:
                    raise
                time.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max_backoff_s)
        assert self._sock is not None
        self._sock.settimeout(self._io_timeout)
        # One small frame per request: batching happens server-side, so
        # trade throughput-by-coalescing-on-the-wire for latency.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _reconnect_and_replay(self, attempts: int) -> None:
        """Reconnect and resend every outstanding frame, in id order.

        Only callable when every outstanding request kept its frame
        (binary-wire submits do); responses then arrive tagged as if
        the connection had never dropped.
        """
        if any(frame is None for frame in self._outstanding.values()):
            raise ProtocolError(
                "connection lost with unreplayable requests in flight")
        self._connect(attempts=attempts)
        for request_id in sorted(self._outstanding):
            self._sock.sendall(self._outstanding[request_id])

    def _unwrap(self, response: Any) -> Any:
        if not isinstance(response, dict) or "ok" not in response:
            raise ProtocolError(f"malformed response: {response!r}")
        if not response["ok"]:
            raise ServiceError(response.get("error", "internal"),
                               response.get("message", ""))
        return response["result"]

    def _send_request(self, request: dict) -> int:
        request_id = self._next_id
        self._next_id += 1
        frame = encode_request_binary(
            request, request_id, query_cache=self._query_cache)
        self._outstanding[request_id] = frame
        try:
            self._sock.sendall(frame)
        except BaseException:
            del self._outstanding[request_id]
            raise
        return request_id

    def _recv_response(self) -> tuple[int, Any]:
        """Read one tagged response; returns ``(request_id, response)``."""
        body = recv_frame_bytes(self._sock)
        if body is None:
            raise ProtocolError("server closed the connection")
        request_id, response = decode_response_body(body)
        if request_id is None:
            raise ProtocolError("untagged response on the binary wire")
        if request_id not in self._outstanding:
            raise ProtocolError(
                f"response for unknown request id {request_id}")
        del self._outstanding[request_id]
        return request_id, response

    def call(self, request: dict) -> Any:
        """Send one request, return the ``result`` of an ok response."""
        if self.wire == "json":
            self._sock.sendall(encode_frame(request))
            body = recv_frame_bytes(self._sock)
            if body is None:
                raise ProtocolError("server closed the connection")
            _request_id, response = decode_response_body(body)
            return self._unwrap(response)
        if self._outstanding:
            raise ProtocolError(
                f"{len(self._outstanding)} pipelined request(s) "
                "outstanding; drain() before a synchronous call")
        try:
            frame = encode_request_binary(
                request, self._next_id,
                query_cache=self._query_cache)
        except (ProtocolError, ValueError, TypeError, KeyError):
            # Not expressible in binary (unknown op, unparseable
            # query): ship it as a JSON frame so the *server* renders
            # the verdict -- errors stay uniform across wires.
            self._sock.sendall(encode_frame(request))
            body = recv_frame_bytes(self._sock)
            if body is None:
                raise ProtocolError("server closed the connection")
            _request_id, response = decode_response_body(body)
            return self._unwrap(response)
        sent = self._next_id
        self._next_id += 1
        self._outstanding[sent] = frame
        request_id, response = self._roundtrip(frame, sent)
        if request_id != sent:  # cannot happen with nothing outstanding
            raise ProtocolError(f"response id {request_id} for "
                                f"request {sent}")
        return self._unwrap(response)

    def _roundtrip(self, frame: bytes, sent: int) -> tuple[int, Any]:
        """Send + receive one frame, reconnecting on transient failures."""
        attempts = self.retries
        backoff = self.retry_backoff_s
        need_send = True
        while True:
            try:
                if need_send:
                    self._sock.sendall(frame)
                    need_send = False
                return self._recv_response()
            except Exception as exc:
                if attempts <= 0 or not _is_transient(exc):
                    self._outstanding.pop(sent, None)
                    raise
                attempts -= 1
                time.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max_backoff_s)
                self._reconnect_and_replay(0)
                need_send = False  # the replay resent it

    # -- pipelining (binary wire) ------------------------------------------

    @property
    def outstanding(self) -> int:
        """How many submitted requests have no response yet."""
        return len(self._outstanding)

    def submit(self, request: dict) -> int:
        """Send one request without waiting; returns its request id.

        Many submits may be outstanding at once -- the server processes
        them concurrently and the micro-batcher coalesces the burst.
        Collect results with :meth:`drain` (all of them) or
        :meth:`next_response` (one at a time, completion order).
        """
        if self.wire != "binary":
            raise ProtocolError("pipelining requires the binary wire "
                                "(ServiceClient(wire='binary'))")
        return self._send_request(request)

    def next_response(self) -> tuple[int, Any]:
        """Block for the next response: ``(request_id, result)``.

        Responses arrive in *completion* order, not submission order.
        Raises :class:`ServiceError` for an error response (the request
        id it settles is consumed either way).
        """
        if not self._outstanding:
            raise ProtocolError("no requests outstanding")
        request_id, response = self._recv_response()
        return request_id, self._unwrap(response)

    def drain(self) -> dict[int, Any]:
        """Collect every outstanding response, keyed by request id.

        Reads until the pipeline is empty.  If any response is an
        error, the first one is raised *after* all outstanding
        responses have been read, so the connection stays usable.

        A drain retries transient connection failures even when
        ``retries`` is 0: every outstanding request kept its encoded
        frame, so a reconnect can replay the in-flight window verbatim
        and the drain completes instead of stranding the pipeline.
        """
        results: dict[int, Any] = {}
        first_error: ServiceError | None = None
        attempts = max(self.retries, 1)
        backoff = self.retry_backoff_s
        while self._outstanding:
            try:
                request_id, response = self._recv_response()
            except Exception as exc:
                if attempts <= 0 or not _is_transient(exc):
                    raise
                attempts -= 1
                time.sleep(backoff)
                backoff = min(backoff * 2, self.retry_max_backoff_s)
                self._reconnect_and_replay(0)
                continue
            try:
                results[request_id] = self._unwrap(response)
            except ServiceError as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def query_pipelined(self, queries: Sequence[object], *,
                        window: int = DEFAULT_PIPELINE_WINDOW,
                        timeout_ms: float | None = None,
                        **options: Any) -> list[list[str]]:
        """Evaluate many queries with up to ``window`` in flight.

        Unlike :meth:`query_batch` (one giant frame, one giant
        response) this streams individual requests and lets the
        *server* choose the coalescing -- the shape that matches mixed
        traffic, and the fast path for a single busy client.  Results
        come back in input order.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        results: dict[int, list[str]] = {}
        order: list[int] = []
        for query in queries:
            while len(self._outstanding) >= window:
                request_id, result = self.next_response()
                results[request_id] = result
            request: dict[str, Any] = {"op": "query", "query": query}
            if options:
                request["options"] = options
            if timeout_ms is not None:
                request["timeout_ms"] = timeout_ms
            order.append(self.submit(request))
        results.update(self.drain())
        return [results[request_id] for request_id in order]

    # -- operations --------------------------------------------------------

    def ping(self) -> str:
        return self.call({"op": "ping"})

    def query(self, query: object, *, timeout_ms: float | None = None,
              **options: Any) -> list[str]:
        """Evaluate one containment query; returns matching record keys."""
        request: dict[str, Any] = {"op": "query", "query": query}
        if options:
            request["options"] = options
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def query_batch(self, queries: Sequence[object], *,
                    timeout_ms: float | None = None,
                    **options: Any) -> list[list[str]]:
        """Evaluate many queries in one round trip (one engine batch)."""
        request: dict[str, Any] = {"op": "query_batch",
                                   "queries": list(queries)}
        if options:
            request["options"] = options
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def insert(self, key: str, value: str, *,
               timeout_ms: float | None = None) -> int:
        """Insert one record; returns its ordinal in the index."""
        request: dict[str, Any] = {"op": "insert", "key": key,
                                   "value": value}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)["ordinal"]

    def delete(self, key: str, *,
               timeout_ms: float | None = None) -> bool:
        """Tombstone one record; True if the key existed."""
        request: dict[str, Any] = {"op": "delete", "key": key}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)["deleted"]

    def ingest(self, records: "Sequence[tuple[str, str]]", *,
               timeout_ms: float | None = None) -> dict:
        """Enqueue records for streaming ingest (returns before commit).

        The server batches accepted records into write-ahead-log commit
        groups off the query path; the response carries the ingestor's
        cumulative counters, not a completion acknowledgment.
        """
        request: dict[str, Any] = {
            "op": "ingest",
            "records": [[key, value] for key, value in records],
        }
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def stats(self) -> dict:
        """Server counters plus engine counters, one consistent snapshot."""
        return self.call({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to drain gracefully; returns its acknowledgment."""
        return self.call({"op": "shutdown"})

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
