"""Blocking client for the query service.

:class:`ServiceClient` speaks the length-prefixed protocol of
:mod:`repro.server.protocol` over one TCP connection.  Two wire formats
are supported:

* ``wire="binary"`` (the default) -- versioned binary frames carrying a
  request id.  Queries are parsed client-side and shipped as structural
  atom arrays, so the server never parses text; responses decode
  through the packed-id fast path.  Because every response is tagged,
  the connection can be **pipelined**: :meth:`submit` sends a request
  without waiting, :meth:`drain` collects every outstanding response,
  and :meth:`query_pipelined` keeps a bounded window of requests in
  flight -- this is what lets the server's micro-batcher coalesce a
  single client's burst into one engine call.
* ``wire="json"`` -- the PR 5 length-prefixed JSON frames, strictly one
  request per round trip.  Kept for compatibility (and as the benchmark
  comparison point).

Server-reported errors surface as :class:`ServiceError` with the
protocol error code (``overloaded``, ``timeout``, ...) preserved so
callers can branch on it -- e.g. retry on ``overloaded``, give up on
``bad_request``.
"""

from __future__ import annotations

import socket
from typing import Any, Sequence

from .protocol import (
    ProtocolError,
    decode_response_body,
    encode_frame,
    encode_request_binary,
    recv_frame_bytes,
)

__all__ = ["ServiceClient", "ServiceError"]

#: Default bound on outstanding pipelined requests per connection.
DEFAULT_PIPELINE_WINDOW = 32


class ServiceError(Exception):
    """A response with ``ok: false``; ``code`` is the protocol code."""

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
        self.message = message


class ServiceClient:
    """One blocking connection to a running query server.

    Usable as a context manager::

        with ServiceClient(port=handle.port) as client:
            hits = client.query("{a, {b, c}}")

    Pipelined (binary wire only)::

        ids = [client.submit({"op": "query", "query": q})
               for q in queries]
        results = client.drain()            # {request_id: result}
        answers = [results[i] for i in ids]
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 connect_timeout: float = 5.0,
                 io_timeout: float | None = 60.0,
                 wire: str = "binary") -> None:
        if wire not in ("binary", "json"):
            raise ValueError(f"wire must be 'binary' or 'json', "
                             f"got {wire!r}")
        self.wire = wire
        self._next_id = 1
        self._outstanding: dict[int, None] = {}
        #: Prepared-query cache: text -> encoded nested-set section,
        #: so repeated queries skip the parse + atom-table work.
        self._query_cache: dict[str, bytes] = {}
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(io_timeout)
        # One small frame per request: batching happens server-side, so
        # trade throughput-by-coalescing-on-the-wire for latency.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- plumbing ----------------------------------------------------------

    def _unwrap(self, response: Any) -> Any:
        if not isinstance(response, dict) or "ok" not in response:
            raise ProtocolError(f"malformed response: {response!r}")
        if not response["ok"]:
            raise ServiceError(response.get("error", "internal"),
                               response.get("message", ""))
        return response["result"]

    def _send_request(self, request: dict) -> int:
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode_request_binary(
            request, request_id, query_cache=self._query_cache))
        self._outstanding[request_id] = None
        return request_id

    def _recv_response(self) -> tuple[int, Any]:
        """Read one tagged response; returns ``(request_id, response)``."""
        body = recv_frame_bytes(self._sock)
        if body is None:
            raise ProtocolError("server closed the connection")
        request_id, response = decode_response_body(body)
        if request_id is None:
            raise ProtocolError("untagged response on the binary wire")
        if request_id not in self._outstanding:
            raise ProtocolError(
                f"response for unknown request id {request_id}")
        del self._outstanding[request_id]
        return request_id, response

    def call(self, request: dict) -> Any:
        """Send one request, return the ``result`` of an ok response."""
        if self.wire == "json":
            self._sock.sendall(encode_frame(request))
            body = recv_frame_bytes(self._sock)
            if body is None:
                raise ProtocolError("server closed the connection")
            _request_id, response = decode_response_body(body)
            return self._unwrap(response)
        if self._outstanding:
            raise ProtocolError(
                f"{len(self._outstanding)} pipelined request(s) "
                "outstanding; drain() before a synchronous call")
        try:
            frame = encode_request_binary(
                request, self._next_id,
                query_cache=self._query_cache)
        except (ProtocolError, ValueError, TypeError, KeyError):
            # Not expressible in binary (unknown op, unparseable
            # query): ship it as a JSON frame so the *server* renders
            # the verdict -- errors stay uniform across wires.
            self._sock.sendall(encode_frame(request))
            body = recv_frame_bytes(self._sock)
            if body is None:
                raise ProtocolError("server closed the connection")
            _request_id, response = decode_response_body(body)
            return self._unwrap(response)
        sent = self._next_id
        self._next_id += 1
        self._sock.sendall(frame)
        self._outstanding[sent] = None
        request_id, response = self._recv_response()
        if request_id != sent:  # cannot happen with nothing outstanding
            raise ProtocolError(f"response id {request_id} for "
                                f"request {sent}")
        return self._unwrap(response)

    # -- pipelining (binary wire) ------------------------------------------

    @property
    def outstanding(self) -> int:
        """How many submitted requests have no response yet."""
        return len(self._outstanding)

    def submit(self, request: dict) -> int:
        """Send one request without waiting; returns its request id.

        Many submits may be outstanding at once -- the server processes
        them concurrently and the micro-batcher coalesces the burst.
        Collect results with :meth:`drain` (all of them) or
        :meth:`next_response` (one at a time, completion order).
        """
        if self.wire != "binary":
            raise ProtocolError("pipelining requires the binary wire "
                                "(ServiceClient(wire='binary'))")
        return self._send_request(request)

    def next_response(self) -> tuple[int, Any]:
        """Block for the next response: ``(request_id, result)``.

        Responses arrive in *completion* order, not submission order.
        Raises :class:`ServiceError` for an error response (the request
        id it settles is consumed either way).
        """
        if not self._outstanding:
            raise ProtocolError("no requests outstanding")
        request_id, response = self._recv_response()
        return request_id, self._unwrap(response)

    def drain(self) -> dict[int, Any]:
        """Collect every outstanding response, keyed by request id.

        Reads until the pipeline is empty.  If any response is an
        error, the first one is raised *after* all outstanding
        responses have been read, so the connection stays usable.
        """
        results: dict[int, Any] = {}
        first_error: ServiceError | None = None
        while self._outstanding:
            request_id, response = self._recv_response()
            try:
                results[request_id] = self._unwrap(response)
            except ServiceError as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def query_pipelined(self, queries: Sequence[object], *,
                        window: int = DEFAULT_PIPELINE_WINDOW,
                        timeout_ms: float | None = None,
                        **options: Any) -> list[list[str]]:
        """Evaluate many queries with up to ``window`` in flight.

        Unlike :meth:`query_batch` (one giant frame, one giant
        response) this streams individual requests and lets the
        *server* choose the coalescing -- the shape that matches mixed
        traffic, and the fast path for a single busy client.  Results
        come back in input order.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        results: dict[int, list[str]] = {}
        order: list[int] = []
        for query in queries:
            while len(self._outstanding) >= window:
                request_id, result = self.next_response()
                results[request_id] = result
            request: dict[str, Any] = {"op": "query", "query": query}
            if options:
                request["options"] = options
            if timeout_ms is not None:
                request["timeout_ms"] = timeout_ms
            order.append(self.submit(request))
        results.update(self.drain())
        return [results[request_id] for request_id in order]

    # -- operations --------------------------------------------------------

    def ping(self) -> str:
        return self.call({"op": "ping"})

    def query(self, query: object, *, timeout_ms: float | None = None,
              **options: Any) -> list[str]:
        """Evaluate one containment query; returns matching record keys."""
        request: dict[str, Any] = {"op": "query", "query": query}
        if options:
            request["options"] = options
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def query_batch(self, queries: Sequence[object], *,
                    timeout_ms: float | None = None,
                    **options: Any) -> list[list[str]]:
        """Evaluate many queries in one round trip (one engine batch)."""
        request: dict[str, Any] = {"op": "query_batch",
                                   "queries": list(queries)}
        if options:
            request["options"] = options
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def insert(self, key: str, value: str, *,
               timeout_ms: float | None = None) -> int:
        """Insert one record; returns its ordinal in the index."""
        request: dict[str, Any] = {"op": "insert", "key": key,
                                   "value": value}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)["ordinal"]

    def delete(self, key: str, *,
               timeout_ms: float | None = None) -> bool:
        """Tombstone one record; True if the key existed."""
        request: dict[str, Any] = {"op": "delete", "key": key}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)["deleted"]

    def ingest(self, records: "Sequence[tuple[str, str]]", *,
               timeout_ms: float | None = None) -> dict:
        """Enqueue records for streaming ingest (returns before commit).

        The server batches accepted records into write-ahead-log commit
        groups off the query path; the response carries the ingestor's
        cumulative counters, not a completion acknowledgment.
        """
        request: dict[str, Any] = {
            "op": "ingest",
            "records": [[key, value] for key, value in records],
        }
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        return self.call(request)

    def stats(self) -> dict:
        """Server counters plus engine counters, one consistent snapshot."""
        return self.call({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to drain gracefully; returns its acknowledgment."""
        return self.call({"op": "shutdown"})

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
