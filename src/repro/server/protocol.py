"""Wire protocol of the query service: length-prefixed binary frames.

Every message -- request or response -- is one *frame*::

    [length u32 big-endian][payload, `length` bytes]

Two payload formats share that framing, distinguished by the first
payload byte:

* ``0x7B`` (``{``) -- the original UTF-8 JSON payload of PR 5.  Old
  clients keep working unchanged; responses to JSON requests are JSON
  and strictly in request order, one at a time per connection.
* ``0xB1`` (:data:`BINARY_MAGIC`) -- the versioned binary payload::

      [0xB1][version u8][opcode u8][request_id varint][body ...]

  reusing the varint / fixed-width idioms of
  :mod:`repro.storage.codec`.  Binary responses echo the request id, so
  many binary requests can be *outstanding on one connection at once*
  (pipelining) and responses may return in completion order.

Binary request bodies start with a flags byte (bit 0: a ``timeout_us``
varint follows; bit 1: a length-prefixed JSON ``options`` section
follows), then the op-specific section:

* ``query`` -- one nested-set section (below);
* ``query_batch`` -- a count followed by that many nested-set sections;
* ``insert`` / ``delete`` / ``ingest`` -- length-prefixed UTF-8 strings;
* ``ping`` / ``stats`` / ``shutdown`` -- empty.

A *nested-set section* encodes the query structurally instead of as
text: a sorted, deduplicated atom table (tagged UTF-8 strings or
zigzag-varint integers), then the tree with each node's atoms as a
**sorted delta-varint array of table indices**
(:func:`repro.storage.codec.encode_uint_list`) and its children
recursively.  The server hands the decoded :class:`NestedSet` straight
to the engine -- no text parse on the hot path.

Binary responses are ``[0xB1][version][RESP_* opcode][request_id]``
plus a tagged body: ``query`` results are length-prefixed key lists,
``query_batch`` results are one key table plus per-query **packed
fixed-width id arrays** (decodable in one ``numpy.frombuffer`` shot,
the PR 7 fast path), everything else is a JSON section.  Error
responses carry an :data:`ERROR_CODES` index plus a message.

Both ends enforce :data:`MAX_FRAME_BYTES` so a corrupt or hostile
length prefix cannot trigger an unbounded allocation, and the nested
set decoder bounds recursion at :data:`MAX_SET_DEPTH`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from array import array
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.model import NestedSet, _sort_key, as_nested_set
from ..storage.codec import (
    decode_uint_list,
    decode_varint,
    encode_uint_list,
    encode_varint,
)
from ..storage.errors import CorruptionError

try:  # numpy accelerates packed id-array decode; stdlib fallback below.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the stub test
    _np = None

__all__ = [
    "BINARY_MAGIC",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "MAX_SET_DEPTH",
    "OPCODES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY_OPTION_FIELDS",
    "Request",
    "decode_frame",
    "decode_nested_set",
    "decode_packed_ids",
    "decode_request_body",
    "decode_response_body",
    "encode_frame",
    "encode_nested_set",
    "encode_packed_ids",
    "encode_request_binary",
    "encode_response_for",
    "error_response",
    "ok_response",
    "peek_request_id",
    "read_frame",
    "read_frame_bytes",
    "recv_frame",
    "recv_frame_bytes",
    "send_frame",
    "validate_request",
    "write_frame",
]

#: Frame length prefix: unsigned 32-bit, network byte order.
_LENGTH = struct.Struct("!I")

#: Hard ceiling on one frame's payload (requests and responses alike).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: First payload byte of a binary frame (never the ``{`` JSON opens with).
BINARY_MAGIC = 0xB1

#: Version byte following the magic; bumped on incompatible layouts.
PROTOCOL_VERSION = 1

#: Recursion bound of the nested-set decoder (hostile depth -> error).
MAX_SET_DEPTH = 256

#: Request operations the server understands.  Append-only: binary
#: opcodes are positional, so reordering would break old clients.
OPS = ("ping", "query", "query_batch", "insert", "ingest", "delete",
       "stats", "shutdown",
       "repl_bootstrap", "repl_pages", "repl_done", "repl_fetch",
       "promote")

#: Binary opcode of each request op (index into :data:`OPS`).
OPCODES = {op: index for index, op in enumerate(OPS)}
_OP_OF_CODE = {index: op for op, index in OPCODES.items()}

#: Binary response opcodes.
RESP_OK = 0x80
RESP_ERR = 0x81

#: Tags of an ok-response body.
_TAG_JSON = 0        # varint length + JSON of ``result``
_TAG_KEYS = 1        # varint count + length-prefixed UTF-8 keys
_TAG_KEYSETS = 2     # key table + per-query packed id arrays

#: Request flags byte.
_FLAG_TIMEOUT = 0x01
_FLAG_OPTIONS = 0x02

#: Evaluation options a query/query_batch request may carry; mirrors the
#: keyword surface of ``NestedSetIndex.query``.
QUERY_OPTION_FIELDS = ("algorithm", "semantics", "join", "epsilon",
                       "mode", "use_bloom", "planner")

#: Error codes a response may carry (binary responses store the index).
ERROR_CODES = (
    "bad_request",     # malformed frame / unknown op / invalid fields
    "overloaded",      # admission control rejected the request
    "timeout",         # the per-request deadline expired
    "shutting_down",   # the server is draining
    "internal",        # evaluation raised (message carries the cause)
    "read_only",       # mutation sent to a replica (message names primary)
)
_CODE_INDEX = {code: index for index, code in enumerate(ERROR_CODES)}

#: Permitted fixed widths (bytes per id) of a packed id array.
_ID_WIDTHS = (1, 2, 4, 8)
_ID_TYPECODES = {1: "B", 2: "H", 4: "I", 8: "Q"}
_ID_LIMITS = {1: 1 << 8, 2: 1 << 16, 4: 1 << 32, 8: 1 << 64}
if _np is not None:
    _ID_DTYPES = {1: _np.dtype("<u1"), 2: _np.dtype("<u2"),
                  4: _np.dtype("<u4"), 8: _np.dtype("<u8")}


class ProtocolError(Exception):
    """Malformed frame or request (maps to a ``bad_request`` response)."""


@dataclass
class Request:
    """One decoded request: payload dict plus its wire coordinates.

    ``payload`` has the JSON request shape for either wire; a binary
    ``query``/``query_batch`` carries decoded :class:`NestedSet` values
    instead of text (the engine accepts both).  ``request_id`` is None
    on the JSON wire, where responses are matched by order instead.
    """

    payload: Any
    wire: str = "json"                      # "json" | "binary"
    request_id: int | None = None

    @property
    def op(self) -> str | None:
        if isinstance(self.payload, dict):
            return self.payload.get("op")
        return None


# -- frame codec (JSON payloads) --------------------------------------------


def encode_frame(payload: Any) -> bytes:
    """One JSON message as bytes: length prefix + compact JSON."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> Any:
    """Parse one JSON frame payload (the bytes after the length prefix)."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


def _frame_of(body: bytes) -> bytes:
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES}")


# -- varint/section helpers --------------------------------------------------


def _varint_at(buf: bytes, offset: int) -> tuple[int, int]:
    try:
        return decode_varint(buf, offset)
    except CorruptionError as exc:
        raise ProtocolError(str(exc)) from None


def _uint_list_at(buf: bytes, offset: int) -> tuple[list[int], int]:
    try:
        return decode_uint_list(buf, offset)
    except CorruptionError as exc:
        raise ProtocolError(str(exc)) from None


def _encode_bytes(raw: bytes) -> bytes:
    return encode_varint(len(raw)) + raw


def _bytes_at(buf: bytes, offset: int) -> tuple[bytes, int]:
    length, pos = _varint_at(buf, offset)
    end = pos + length
    if end > len(buf):
        raise ProtocolError("truncated length-prefixed section")
    return buf[pos:end], end


def _encode_str(text: str) -> bytes:
    return _encode_bytes(text.encode("utf-8"))


def _str_at(buf: bytes, offset: int) -> tuple[str, int]:
    raw, pos = _bytes_at(buf, offset)
    try:
        return raw.decode("utf-8"), pos
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable string section: {exc}") from None


def _count_at(buf: bytes, offset: int) -> tuple[int, int]:
    """A varint element count, sanity-bounded by the remaining bytes.

    Every counted element occupies at least one byte, so a count past
    ``len(buf) - pos`` proves corruption before any allocation happens.
    """
    count, pos = _varint_at(buf, offset)
    if count > len(buf) - pos:
        raise ProtocolError(f"element count {count} exceeds the "
                            "remaining frame bytes")
    return count, pos


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- nested-set section ------------------------------------------------------


def encode_nested_set(value: object) -> bytes:
    """Encode one query set structurally (text is parsed first).

    Layout: a sorted atom table (tag ``0`` = UTF-8 string, tag ``1`` =
    zigzag-varint integer), then the tree -- per node a sorted
    delta-varint array of atom-table indices and the child nodes.
    """
    ns = as_nested_set(value)
    atoms = sorted(ns.all_atoms(), key=_sort_key)
    index_of = {atom: index for index, atom in enumerate(atoms)}
    out = bytearray()
    out += encode_varint(len(atoms))
    for atom in atoms:
        if isinstance(atom, str):
            out.append(0)
            out += _encode_str(atom)
        else:
            out.append(1)
            out += encode_varint(_zigzag(atom))

    def _encode_node(node: NestedSet) -> bytes:
        chunk = bytearray(encode_uint_list(
            sorted(index_of[atom] for atom in node.atoms)))
        chunk += encode_varint(len(node.children))
        # Determinism (equal sets -> equal bytes) comes from sorting
        # the children's *encodings*, which exist anyway -- rendering
        # text just to sort would double the cost of deep sets.
        for encoded in sorted(_encode_node(child)
                              for child in node.children):
            chunk += encoded
        return bytes(chunk)

    out += _encode_node(ns)
    return bytes(out)


def decode_nested_set(buf: bytes, offset: int = 0) -> tuple[NestedSet, int]:
    """Decode one nested-set section; returns ``(set, next_offset)``."""
    n_atoms, pos = _count_at(buf, offset)
    table: list = []
    for _ in range(n_atoms):
        if pos >= len(buf):
            raise ProtocolError("truncated atom table")
        tag = buf[pos]
        pos += 1
        if tag == 0:
            atom, pos = _str_at(buf, pos)
        elif tag == 1:
            raw, pos = _varint_at(buf, pos)
            atom = _unzigzag(raw)
        else:
            raise ProtocolError(f"unknown atom tag {tag}")
        table.append(atom)

    def _decode_node(pos: int, depth: int) -> tuple[NestedSet, int]:
        if depth > MAX_SET_DEPTH:
            raise ProtocolError(
                f"nested set deeper than {MAX_SET_DEPTH}")
        indices, pos = _uint_list_at(buf, pos)
        try:
            atoms = [table[index] for index in indices]
        except IndexError:
            raise ProtocolError("atom index past the atom table") from None
        n_children, pos = _count_at(buf, pos)
        children = []
        for _ in range(n_children):
            child, pos = _decode_node(pos, depth + 1)
            children.append(child)
        # Atom types were enforced by the table tags above, so the
        # validating constructor would only re-check what the codec
        # already guarantees.
        return NestedSet._from_trusted(frozenset(atoms),
                                       frozenset(children)), pos

    return _decode_node(pos, 1)


# -- packed id arrays --------------------------------------------------------


def encode_packed_ids(ids: Sequence[int]) -> bytes:
    """Encode sorted non-negative ids as a fixed-width packed array.

    Layout: ``[width u8][count varint][count x width bytes LE]`` with
    the smallest of {1, 2, 4, 8} bytes that holds the maximum --
    the same promotion rule as the packed posting blocks.
    """
    maximum = max(ids, default=0)
    for width in _ID_WIDTHS:
        if maximum < _ID_LIMITS[width]:
            break
    arr = array(_ID_TYPECODES[width], ids)
    if struct.pack("=H", 1) != struct.pack("<H", 1):  # pragma: no cover
        arr.byteswap()
    return bytes((width,)) + encode_varint(len(ids)) + arr.tobytes()


def decode_packed_ids(buf: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a packed id array; numpy ``frombuffer`` when available."""
    if offset >= len(buf):
        raise ProtocolError("truncated packed id array")
    width = buf[offset]
    if width not in _ID_LIMITS:
        raise ProtocolError(f"bad packed id width {width}")
    count, pos = _varint_at(buf, offset + 1)
    end = pos + count * width
    if end > len(buf):
        raise ProtocolError("packed id array shorter than its count")
    if _np is not None:
        ids = _np.frombuffer(buf, _ID_DTYPES[width], count, pos).tolist()
        return ids, end
    arr = array(_ID_TYPECODES[width])
    arr.frombytes(buf[pos:end])
    if struct.pack("=H", 1) != struct.pack("<H", 1):  # pragma: no cover
        arr.byteswap()
    return list(arr), end


# -- binary requests ---------------------------------------------------------


def _binary_header(opcode: int, request_id: int) -> bytearray:
    out = bytearray((BINARY_MAGIC, PROTOCOL_VERSION, opcode))
    out += encode_varint(request_id)
    return out


def _query_section(query: object,
                   cache: dict[str, bytes] | None) -> bytes:
    """The encoded nested-set section of one query, optionally cached.

    Parsing text and building the atom table dominate request encoding
    (~100 us on benchmark-sized sets), so clients that repeat queries
    pass a cache keyed by the exact text -- a prepared-statement
    equivalent.  Non-text queries skip the cache: hashing a NestedSet
    is no cheaper than encoding it.
    """
    if cache is None or not isinstance(query, str):
        return encode_nested_set(query)
    section = cache.get(query)
    if section is None:
        section = encode_nested_set(query)
        if len(cache) >= _QUERY_CACHE_LIMIT:
            cache.clear()
        cache[query] = section
    return section


#: Bound on a client's prepared-query cache; cleared wholesale when
#: full (a workload with > 4096 distinct hot queries is repeating
#: little, so eviction sophistication would buy nothing).
_QUERY_CACHE_LIMIT = 4096


def encode_request_binary(request: dict, request_id: int, *,
                          query_cache: dict[str, bytes] | None = None
                          ) -> bytes:
    """Encode a JSON-shaped request dict as one binary frame.

    ``query`` fields may hold text or :class:`NestedSet`; text is
    parsed here (client side), so the server never parses text on the
    binary path.  ``query_cache`` memoizes encoded query sections by
    their text across calls.
    """
    op = request.get("op")
    if op not in OPCODES:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    out = _binary_header(OPCODES[op], request_id)
    flags = 0
    timeout_ms = request.get("timeout_ms")
    options = request.get("options")
    if timeout_ms is not None:
        if not isinstance(timeout_ms, (int, float)) \
                or isinstance(timeout_ms, bool) or timeout_ms <= 0:
            raise ProtocolError(
                "field 'timeout_ms' must be a positive number")
        flags |= _FLAG_TIMEOUT
    if options:
        flags |= _FLAG_OPTIONS
    out.append(flags)
    if flags & _FLAG_TIMEOUT:
        # Microsecond resolution keeps fractional-ms deadlines intact.
        out += encode_varint(max(1, round(float(timeout_ms) * 1000.0)))
    if flags & _FLAG_OPTIONS:
        out += _encode_bytes(json.dumps(
            options, separators=(",", ":")).encode("utf-8"))
    if op == "query":
        out += _query_section(request["query"], query_cache)
    elif op == "query_batch":
        queries = request["queries"]
        out += encode_varint(len(queries))
        for query in queries:
            out += _query_section(query, query_cache)
    elif op == "insert":
        out += _encode_str(request["key"])
        out += _encode_str(request["value"])
    elif op == "delete":
        out += _encode_str(request["key"])
    elif op == "ingest":
        records = request["records"]
        out += encode_varint(len(records))
        for key, value in records:
            out += _encode_str(key)
            out += _encode_str(value)
    elif op == "repl_bootstrap":
        out += _encode_str(request["replica_id"])
    elif op == "repl_pages":
        out += _encode_str(request["session"])
        out += encode_varint(int(request["start_page"]))
        out += encode_varint(int(request["count"]))
    elif op == "repl_done":
        out += _encode_str(request["session"])
    elif op == "repl_fetch":
        out += _encode_str(request["replica_id"])
        out += encode_varint(int(request["after_seq"]))
        out += encode_varint(int(request.get("max_groups", 256)))
        out += encode_varint(int(request.get("wait_ms", 0)))
    return _frame_of(bytes(out))


def _decode_binary_header(body: bytes) -> tuple[int, int, int]:
    """Parse ``(opcode, request_id, next_offset)`` of a binary payload."""
    if len(body) < 3:
        raise ProtocolError("truncated binary frame header")
    if body[0] != BINARY_MAGIC:
        raise ProtocolError(f"bad binary magic 0x{body[0]:02X}")
    if body[1] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {body[1]} "
            f"(this end speaks {PROTOCOL_VERSION})")
    request_id, pos = _varint_at(body, 3)
    return body[2], request_id, pos


def peek_request_id(body: bytes) -> int | None:
    """The request id of a binary payload, if its header parses.

    Lets the server tag a ``bad_request`` response for a frame whose
    header survived but whose body is corrupt, so a pipelined client
    can settle the matching in-flight request instead of stalling.
    """
    try:
        _opcode, request_id, _pos = _decode_binary_header(body)
        return request_id
    except ProtocolError:
        return None


def decode_request_body(body: bytes) -> Request:
    """Decode one request payload of either format into a :class:`Request`."""
    if not body or body[0] != BINARY_MAGIC:
        return Request(decode_frame(body), wire="json")
    opcode, request_id, pos = _decode_binary_header(body)
    if opcode not in _OP_OF_CODE:
        raise ProtocolError(f"unknown opcode 0x{opcode:02X}")
    op = _OP_OF_CODE[opcode]
    payload: dict[str, Any] = {"op": op}
    if pos >= len(body):
        raise ProtocolError("binary frame missing its flags byte")
    flags = body[pos]
    pos += 1
    if flags & ~(_FLAG_TIMEOUT | _FLAG_OPTIONS):
        raise ProtocolError(f"unknown request flags 0x{flags:02X}")
    if flags & _FLAG_TIMEOUT:
        timeout_us, pos = _varint_at(body, pos)
        if timeout_us <= 0:
            raise ProtocolError("field 'timeout_ms' must be positive")
        payload["timeout_ms"] = timeout_us / 1000.0
    if flags & _FLAG_OPTIONS:
        raw, pos = _bytes_at(body, pos)
        options = decode_frame(raw)
        if not isinstance(options, dict):
            raise ProtocolError("options section must be a JSON object")
        payload["options"] = options
    if op == "query":
        payload["query"], pos = decode_nested_set(body, pos)
    elif op == "query_batch":
        count, pos = _count_at(body, pos)
        queries = []
        for _ in range(count):
            query, pos = decode_nested_set(body, pos)
            queries.append(query)
        payload["queries"] = queries
    elif op == "insert":
        payload["key"], pos = _str_at(body, pos)
        payload["value"], pos = _str_at(body, pos)
    elif op == "delete":
        payload["key"], pos = _str_at(body, pos)
    elif op == "ingest":
        count, pos = _count_at(body, pos)
        records = []
        for _ in range(count):
            key, pos = _str_at(body, pos)
            value, pos = _str_at(body, pos)
            records.append([key, value])
        payload["records"] = records
    elif op == "repl_bootstrap":
        payload["replica_id"], pos = _str_at(body, pos)
    elif op == "repl_pages":
        payload["session"], pos = _str_at(body, pos)
        payload["start_page"], pos = _varint_at(body, pos)
        payload["count"], pos = _varint_at(body, pos)
    elif op == "repl_done":
        payload["session"], pos = _str_at(body, pos)
    elif op == "repl_fetch":
        payload["replica_id"], pos = _str_at(body, pos)
        payload["after_seq"], pos = _varint_at(body, pos)
        payload["max_groups"], pos = _varint_at(body, pos)
        payload["wait_ms"], pos = _varint_at(body, pos)
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after a {op} request")
    return Request(payload, wire="binary", request_id=request_id)


# -- binary responses --------------------------------------------------------


def _is_key_list(result: Any) -> bool:
    return isinstance(result, list) and \
        all(isinstance(key, str) for key in result)


def encode_response_for(request: Request, response: dict) -> bytes:
    """Encode one response frame in the format its request arrived in."""
    if request.wire != "binary":
        return encode_frame(response)
    request_id = request.request_id or 0
    if not response.get("ok"):
        out = _binary_header(RESP_ERR, request_id)
        code = response.get("error", "internal")
        out.append(_CODE_INDEX.get(code, _CODE_INDEX["internal"]))
        out += _encode_str(response.get("message", ""))
        return _frame_of(bytes(out))
    result = response.get("result")
    out = _binary_header(RESP_OK, request_id)
    if request.op == "query" and _is_key_list(result):
        out.append(_TAG_KEYS)
        out += encode_varint(len(result))
        for key in result:
            out += _encode_str(key)
    elif request.op == "query_batch" and isinstance(result, list) \
            and all(_is_key_list(keys) for keys in result):
        # One key table, one packed id array per query: repeated keys
        # across a coalesced batch are encoded (and decoded) once.
        table: dict[str, int] = {}
        for keys in result:
            for key in keys:
                if key not in table:
                    table[key] = len(table)
        out.append(_TAG_KEYSETS)
        out += encode_varint(len(table))
        for key in table:
            out += _encode_str(key)
        out += encode_varint(len(result))
        for keys in result:
            out += encode_packed_ids([table[key] for key in keys])
    else:
        out.append(_TAG_JSON)
        out += _encode_bytes(json.dumps(
            result, separators=(",", ":"), ensure_ascii=False)
            .encode("utf-8"))
    return _frame_of(bytes(out))


def decode_response_body(body: bytes) -> tuple[int | None, dict]:
    """Decode one response payload to ``(request_id, response_dict)``.

    JSON responses return ``(None, response)`` -- the JSON wire matches
    responses by order, not id.  Binary bodies reconstruct the JSON
    response shape, so callers branch on one structure.
    """
    if not body or body[0] != BINARY_MAGIC:
        return None, decode_frame(body)
    opcode, request_id, pos = _decode_binary_header(body)
    if opcode == RESP_ERR:
        if pos >= len(body):
            raise ProtocolError("truncated error response")
        code_index = body[pos]
        if code_index >= len(ERROR_CODES):
            raise ProtocolError(f"unknown error code index {code_index}")
        message, pos = _str_at(body, pos + 1)
        return request_id, {"ok": False, "error": ERROR_CODES[code_index],
                            "message": message}
    if opcode != RESP_OK:
        raise ProtocolError(f"unknown response opcode 0x{opcode:02X}")
    if pos >= len(body):
        raise ProtocolError("truncated response body")
    tag = body[pos]
    pos += 1
    if tag == _TAG_JSON:
        raw, pos = _bytes_at(body, pos)
        result = decode_frame(raw)
    elif tag == _TAG_KEYS:
        count, pos = _count_at(body, pos)
        result = []
        for _ in range(count):
            key, pos = _str_at(body, pos)
            result.append(key)
    elif tag == _TAG_KEYSETS:
        n_table, pos = _count_at(body, pos)
        table = []
        for _ in range(n_table):
            key, pos = _str_at(body, pos)
            table.append(key)
        n_lists, pos = _varint_at(body, pos)
        result = []
        for _ in range(n_lists):
            ids, pos = decode_packed_ids(body, pos)
            try:
                result.append([table[index] for index in ids])
            except IndexError:
                raise ProtocolError("key id past the key table") from None
    else:
        raise ProtocolError(f"unknown response tag {tag}")
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after a response")
    return request_id, {"ok": True, "result": result}


# -- asyncio endpoints -------------------------------------------------------


async def read_frame_bytes(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame's payload bytes; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc


async def read_frame(reader: asyncio.StreamReader) -> Any | None:
    """Read one JSON frame; ``None`` on clean EOF before a length prefix."""
    body = await read_frame_bytes(reader)
    if body is None:
        return None
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking endpoints (client side) ---------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    out = bytearray()
    while len(out) < n:
        chunk = sock.recv(n - len(out))
        if not chunk:
            return None
        out += chunk
    return bytes(out)


def recv_frame_bytes(sock: socket.socket) -> bytes | None:
    """Blocking read of one frame's payload; ``None`` on clean EOF."""
    prefix = _recv_exactly(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return body


def recv_frame(sock: socket.socket) -> Any | None:
    """Blocking read of one JSON frame; ``None`` on clean EOF."""
    body = recv_frame_bytes(sock)
    if body is None:
        return None
    return decode_frame(body)


def send_frame(sock: socket.socket, payload: Any) -> None:
    sock.sendall(encode_frame(payload))


# -- requests and responses --------------------------------------------------


def ok_response(result: Any) -> dict:
    return {"ok": True, "result": result}


def error_response(code: str, message: str = "") -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"ok": False, "error": code, "message": message}


def _require_str(request: dict, field_name: str) -> str:
    value = request.get(field_name)
    if not isinstance(value, str):
        raise ProtocolError(f"{request.get('op')}: field {field_name!r} "
                            "must be a string")
    return value


def _require_uint(request: dict, field_name: str,
                  default: int | None = None) -> int:
    value = request.get(field_name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProtocolError(f"{request.get('op')}: field {field_name!r} "
                            "must be a non-negative integer")
    return value


def _is_query(value: object) -> bool:
    """Queries arrive as text (JSON wire) or NestedSet (binary wire)."""
    return isinstance(value, (str, NestedSet))


def validate_request(request: Any) -> dict:
    """Check shape and field types; returns the request dict.

    Raises :class:`ProtocolError` (→ ``bad_request``) on anything the
    dispatcher should not have to defend against.
    """
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    if op == "query":
        if not _is_query(request.get("query")):
            raise ProtocolError("query: field 'query' must be a string "
                                "or an encoded set")
    elif op == "query_batch":
        queries = request.get("queries")
        if not isinstance(queries, list) or \
                not all(_is_query(q) for q in queries):
            raise ProtocolError("query_batch: field 'queries' must be "
                                "a list of strings or encoded sets")
    elif op == "insert":
        _require_str(request, "key")
        _require_str(request, "value")
    elif op == "ingest":
        records = request.get("records")
        if not isinstance(records, list) or not all(
                isinstance(pair, (list, tuple)) and len(pair) == 2
                and isinstance(pair[0], str) and isinstance(pair[1], str)
                for pair in records):
            raise ProtocolError("ingest: field 'records' must be a list "
                                "of [key, value] string pairs")
    elif op == "delete":
        _require_str(request, "key")
    elif op == "repl_bootstrap":
        _require_str(request, "replica_id")
    elif op == "repl_pages":
        _require_str(request, "session")
        _require_uint(request, "start_page")
        _require_uint(request, "count")
    elif op == "repl_done":
        _require_str(request, "session")
    elif op == "repl_fetch":
        _require_str(request, "replica_id")
        _require_uint(request, "after_seq")
        _require_uint(request, "max_groups", 256)
        _require_uint(request, "wait_ms", 0)
    options = request.get("options")
    if options is not None:
        if not isinstance(options, dict):
            raise ProtocolError("field 'options' must be an object")
        unknown = set(options) - set(QUERY_OPTION_FIELDS)
        if unknown:
            raise ProtocolError(
                f"unknown option(s) {sorted(unknown)}; "
                f"expected a subset of {QUERY_OPTION_FIELDS}")
    timeout_ms = request.get("timeout_ms")
    if timeout_ms is not None and (
            not isinstance(timeout_ms, (int, float))
            or isinstance(timeout_ms, bool) or timeout_ms <= 0):
        raise ProtocolError("field 'timeout_ms' must be a positive number")
    return request
