"""Wire protocol of the query service: length-prefixed JSON frames.

Every message -- request or response -- is one *frame*::

    [length u32 big-endian][payload: UTF-8 JSON, `length` bytes]

Requests are JSON objects carrying an ``op`` plus op-specific fields::

    {"op": "ping"}
    {"op": "query", "query": "{a, {b}}", "options": {...},
     "timeout_ms": 500}
    {"op": "query_batch", "queries": ["{a}", "{b}"], "options": {...}}
    {"op": "insert", "key": "r17", "value": "{a, {b, c}}"}
    {"op": "ingest", "records": [["r18", "{a}"], ["r19", "{b}"]]}
    {"op": "delete", "key": "r17"}
    {"op": "stats"}
    {"op": "shutdown"}

``options`` accepts the same evaluation options as
:meth:`repro.core.engine.NestedSetIndex.query` (``algorithm``,
``semantics``, ``join``, ``epsilon``, ``mode``, ``use_bloom``,
``planner``).  Responses are either::

    {"ok": true,  "result": ...}
    {"ok": false, "error": "<code>", "message": "..."}

with error codes in :data:`ERROR_CODES`.  The frame format is shared by
the asyncio server (:mod:`repro.server.server`) and the blocking client
(:mod:`repro.server.client`); both ends enforce
:data:`MAX_FRAME_BYTES` so a corrupt or hostile length prefix cannot
trigger an unbounded allocation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "OPS",
    "ProtocolError",
    "QUERY_OPTION_FIELDS",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "read_frame",
    "recv_frame",
    "send_frame",
    "validate_request",
    "write_frame",
]

#: Frame length prefix: unsigned 32-bit, network byte order.
_LENGTH = struct.Struct("!I")

#: Hard ceiling on one frame's payload (requests and responses alike).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Request operations the server understands.
OPS = ("ping", "query", "query_batch", "insert", "ingest", "delete",
       "stats", "shutdown")

#: Evaluation options a query/query_batch request may carry; mirrors the
#: keyword surface of ``NestedSetIndex.query``.
QUERY_OPTION_FIELDS = ("algorithm", "semantics", "join", "epsilon",
                       "mode", "use_bloom", "planner")

#: Error codes a response may carry.
ERROR_CODES = (
    "bad_request",     # malformed frame / unknown op / invalid fields
    "overloaded",      # admission control rejected the request
    "timeout",         # the per-request deadline expired
    "shutting_down",   # the server is draining
    "internal",        # evaluation raised (message carries the cause)
)


class ProtocolError(Exception):
    """Malformed frame or request (maps to a ``bad_request`` response)."""


# -- frame codec ------------------------------------------------------------


def encode_frame(payload: Any) -> bytes:
    """One message as bytes: length prefix + compact JSON."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> Any:
    """Parse one frame payload (the bytes after the length prefix)."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES}")


# -- asyncio endpoints -------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> Any | None:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking endpoints (client side) ---------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    out = bytearray()
    while len(out) < n:
        chunk = sock.recv(n - len(out))
        if not chunk:
            return None
        out += chunk
    return bytes(out)


def recv_frame(sock: socket.socket) -> Any | None:
    """Blocking read of one frame; ``None`` on clean EOF."""
    prefix = _recv_exactly(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_frame(body)


def send_frame(sock: socket.socket, payload: Any) -> None:
    sock.sendall(encode_frame(payload))


# -- requests and responses --------------------------------------------------


def ok_response(result: Any) -> dict:
    return {"ok": True, "result": result}


def error_response(code: str, message: str = "") -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"ok": False, "error": code, "message": message}


def _require_str(request: dict, field: str) -> str:
    value = request.get(field)
    if not isinstance(value, str):
        raise ProtocolError(f"{request.get('op')}: field {field!r} "
                            "must be a string")
    return value


def validate_request(request: Any) -> dict:
    """Check shape and field types; returns the request dict.

    Raises :class:`ProtocolError` (→ ``bad_request``) on anything the
    dispatcher should not have to defend against.
    """
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    if op == "query":
        _require_str(request, "query")
    elif op == "query_batch":
        queries = request.get("queries")
        if not isinstance(queries, list) or \
                not all(isinstance(q, str) for q in queries):
            raise ProtocolError("query_batch: field 'queries' must be "
                                "a list of strings")
    elif op == "insert":
        _require_str(request, "key")
        _require_str(request, "value")
    elif op == "ingest":
        records = request.get("records")
        if not isinstance(records, list) or not all(
                isinstance(pair, (list, tuple)) and len(pair) == 2
                and isinstance(pair[0], str) and isinstance(pair[1], str)
                for pair in records):
            raise ProtocolError("ingest: field 'records' must be a list "
                                "of [key, value] string pairs")
    elif op == "delete":
        _require_str(request, "key")
    options = request.get("options")
    if options is not None:
        if not isinstance(options, dict):
            raise ProtocolError("field 'options' must be an object")
        unknown = set(options) - set(QUERY_OPTION_FIELDS)
        if unknown:
            raise ProtocolError(
                f"unknown option(s) {sorted(unknown)}; "
                f"expected a subset of {QUERY_OPTION_FIELDS}")
    timeout_ms = request.get("timeout_ms")
    if timeout_ms is not None and (
            not isinstance(timeout_ms, (int, float))
            or isinstance(timeout_ms, bool) or timeout_ms <= 0):
        raise ProtocolError("field 'timeout_ms' must be a positive number")
    return request
