"""Live server counters: request mix, batching efficiency, latency tails.

:class:`ServerMetrics` is the one mutable scoreboard the query service
updates as it runs and surfaces through the ``stats`` request (and, via
the client, ``nestcontain info --server``).  Everything is guarded by a
single small lock -- counters are touched from the asyncio loop *and*
from worker threads, and the snapshot must be internally consistent.

Latency quantiles come from a bounded reservoir of the most recent
request latencies (a deque, not a histogram): the service is tuned for
thousands, not millions, of requests per scrape interval, so an exact
sort of ≤ ``reservoir_size`` floats at snapshot time is simpler and
strictly more accurate than bucketed approximation.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

__all__ = ["STAGES", "ServerMetrics"]

#: How many recent latencies inform the p50/p99 estimates.
DEFAULT_RESERVOIR = 4096

#: Wire-path stages broken out per request: frame parse, wait between
#: arrival and engine start, the engine call itself, response encode.
STAGES = ("decode", "queue", "execute", "encode")


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (empty → 0.0).

    Canonical nearest-rank: the ``ceil(q * n)``-th smallest sample,
    clamped into range so degenerate reservoirs are safe -- the p99 of a
    1-element reservoir is that element, not an IndexError (``ceil(0.99
    * 1) - 1 == 0``, but q = 1.0 or float fuzz can land on ``n``).
    """
    if not ordered:
        return 0.0
    rank = math.ceil(q * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


class ServerMetrics:
    """Counters and latency reservoir for one server lifetime."""

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.requests: dict[str, int] = {}
        self.errors: dict[str, int] = {}
        self.rejected_overload = 0
        self.rejected_shutdown = 0
        self.timeouts = 0
        #: Engine-level batch calls issued by the micro-batcher, and the
        #: single queries they absorbed; their ratio is the coalesce
        #: ratio (1.0 = no coalescing ever happened).
        self.batches = 0
        self.batched_queries = 0
        #: Streaming-ingest totals (fed by the server's ingestor): how
        #: many records landed and how many WAL commit groups they cost;
        #: their ratio is the ingest amortization factor.
        self.ingest_records = 0
        self.ingest_groups_committed = 0
        self.ingest_errors = 0
        self._latencies: deque[float] = deque(maxlen=reservoir_size)
        #: Per-stage latency reservoirs: where a request's time goes
        #: (decode / queue / execute / encode), so wire-path wins are
        #: observable rather than inferred from end-to-end deltas.
        self._stages: dict[str, deque[float]] = {
            stage: deque(maxlen=reservoir_size) for stage in STAGES}
        #: Replication role view, absorbed from the manager before each
        #: stats snapshot (``None`` on an unreplicated server).
        self.replication: dict[str, object] | None = None

    # -- recording ---------------------------------------------------------

    def record_request(self, op: str) -> None:
        with self._lock:
            self.requests[op] = self.requests.get(op, 0) + 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self.errors[code] = self.errors.get(code, 0) + 1
            if code == "overloaded":
                self.rejected_overload += 1
            elif code == "shutting_down":
                self.rejected_shutdown += 1
            elif code == "timeout":
                self.timeouts += 1

    def record_batch(self, n_queries: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_queries += n_queries

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one sample to a wire-path stage reservoir."""
        reservoir = self._stages.get(stage)
        if reservoir is None:
            raise ValueError(f"unknown stage {stage!r}; "
                             f"expected one of {STAGES}")
        with self._lock:
            reservoir.append(seconds)

    def set_ingest_counters(self, records: int, groups: int,
                            errors: int) -> None:
        """Absorb the streaming ingestor's cumulative counters."""
        with self._lock:
            self.ingest_records = records
            self.ingest_groups_committed = groups
            self.ingest_errors = errors

    def set_replication(self, role: str, term: int,
                        lag_groups: int | None = None,
                        lag_seconds: float | None = None) -> None:
        """Absorb the replication manager's role/term/lag view."""
        with self._lock:
            state: dict[str, object] = {"role": role, "term": term}
            if lag_groups is not None:
                state["lag_groups"] = lag_groups
            if lag_seconds is not None:
                state["lag_seconds"] = round(lag_seconds, 3)
            self.replication = state

    # -- reading -----------------------------------------------------------

    @property
    def coalesce_ratio(self) -> float:
        """Mean queries per engine batch call (≥ 1.0 once any ran)."""
        with self._lock:
            if not self.batches:
                return 0.0
            return self.batched_queries / self.batches

    def snapshot(self) -> dict[str, object]:
        """A consistent point-in-time view (shape of the ``stats`` op)."""
        with self._lock:
            ordered = sorted(self._latencies)
            total = sum(self.requests.values())
            return {
                "replication": (dict(self.replication)
                                if self.replication is not None else None),
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests_total": total,
                "requests_by_op": dict(self.requests),
                "errors_by_code": dict(self.errors),
                "rejected_overload": self.rejected_overload,
                "rejected_shutdown": self.rejected_shutdown,
                "timeouts": self.timeouts,
                "batches": self.batches,
                "batched_queries": self.batched_queries,
                "ingest_records": self.ingest_records,
                "ingest_groups_committed": self.ingest_groups_committed,
                "ingest_errors": self.ingest_errors,
                "coalesce_ratio": (round(self.batched_queries
                                         / self.batches, 3)
                                   if self.batches else 0.0),
                "latency_ms": {
                    "samples": len(ordered),
                    "p50": round(_quantile(ordered, 0.50) * 1000, 3),
                    "p99": round(_quantile(ordered, 0.99) * 1000, 3),
                    "max": round(ordered[-1] * 1000, 3) if ordered
                    else 0.0,
                },
                "stages_ms": {
                    stage: {
                        "samples": len(samples),
                        "p50": round(_quantile(samples, 0.50) * 1000, 4),
                        "p99": round(_quantile(samples, 0.99) * 1000, 4),
                    }
                    for stage, samples in (
                        (stage, sorted(reservoir))
                        for stage, reservoir in self._stages.items())
                },
            }
