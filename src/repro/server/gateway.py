"""Stdlib HTTP/JSON gateway in front of the query service.

:class:`HttpGateway` binds a second listener next to the TCP protocol
port and translates plain HTTP requests onto the server's dispatch
path, so anything that can speak ``curl`` can query the index without
linking the client library::

    curl -s -X POST http://127.0.0.1:8080/query \
         -d '{"query": "{a, {b}}"}'

No third-party web framework: the HTTP/1.1 subset we need (request
line, headers, ``Content-Length`` bodies, keep-alive) is ~80 lines of
asyncio reader handling, and pulling in a dependency for it would
violate the repo's stdlib-only rule.  The gateway is strictly a
*translator* -- admission control, micro-batching, timeouts, and
metrics all happen in :class:`~repro.server.server.QueryServer`'s
``_dispatch``, so HTTP traffic competes for the same in-flight slots
as protocol traffic and shows up in the same ``stats``.

Routes:

* ``GET /ping``, ``GET /stats`` -- convenience reads.
* ``POST /<op>`` -- the JSON body is the protocol request (the ``op``
  field is implied by the path and may be omitted).
* ``POST /`` -- the body carries ``op`` explicitly.

Protocol error codes map onto HTTP statuses (``bad_request`` → 400,
``overloaded``/``shutting_down`` → 503, ``timeout`` → 504, otherwise
500); the response body is always the protocol's JSON response object.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from .protocol import MAX_FRAME_BYTES, OPS, error_response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import QueryServer

__all__ = ["HttpGateway"]

#: Protocol error code → HTTP status.  Anything unlisted is a 500.
_STATUS_OF = {
    "bad_request": 400,
    "overloaded": 503,
    "shutting_down": 503,
    "timeout": 504,
    "internal": 500,
    "read_only": 403,
}

#: Bound on request head (request line + headers) to stop slowloris-ish
#: framing abuse; generous for any sane client.
_MAX_HEAD_BYTES = 16 * 1024


class _BadHttp(Exception):
    """Malformed HTTP framing: answer 400 and drop the connection."""


class HttpGateway:
    """One HTTP listener translating requests onto ``server._dispatch``."""

    def __init__(self, server: "QueryServer", host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = server
        self._host = host
        self._requested_port = port
        self._listener: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def start(self) -> None:
        self._listener = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port)
        self.port = self._listener.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    # -- HTTP plumbing -----------------------------------------------------

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader) -> list[str] | None:
        """Read request line + headers; None on clean EOF (keep-alive)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadHttp("truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _BadHttp("request head too large") from exc
        if len(head) > _MAX_HEAD_BYTES:
            raise _BadHttp("request head too large")
        try:
            return head.decode("ascii").split("\r\n")
        except UnicodeDecodeError as exc:
            raise _BadHttp("non-ascii request head") from exc

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        """One request: ``(method, path, body)``; None at end of stream."""
        lines = await self._read_head(reader)
        if lines is None:
            return None
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadHttp(f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadHttp(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadHttp("chunked request bodies are not supported")
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadHttp(f"bad Content-Length {length_text!r}") from None
        if length < 0 or length > MAX_FRAME_BYTES:
            raise _BadHttp(f"Content-Length {length} out of range "
                           f"(max {MAX_FRAME_BYTES})")
        body = await reader.readexactly(length) if length else b""
        return method, target.partition("?")[0], body

    @staticmethod
    def _render(status: int, payload: dict, *,
                keep_alive: bool = True) -> bytes:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "OK")
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        return head.encode("ascii") + body

    # -- request handling --------------------------------------------------

    async def _answer(self, method: str, path: str,
                      body: bytes) -> tuple[int, dict]:
        """Translate one HTTP request into a dispatched protocol call."""
        op = path.strip("/")
        if method == "GET":
            if op in ("ping", "stats"):
                payload: dict = {"op": op}
            else:
                return 404, error_response(
                    "bad_request", f"no GET route {path!r}; "
                    "GET serves /ping and /stats")
        elif method == "POST":
            if body:
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    return 400, error_response(
                        "bad_request", "request body is not valid JSON")
                if not isinstance(payload, dict):
                    return 400, error_response(
                        "bad_request", "request body must be a JSON "
                        "object")
            else:
                payload = {}
            if op:
                if op not in OPS:
                    return 404, error_response(
                        "bad_request",
                        f"unknown op {op!r}; expected one of {OPS}")
                declared = payload.setdefault("op", op)
                if declared != op:
                    return 400, error_response(
                        "bad_request",
                        f"body op {declared!r} contradicts path {path!r}")
        else:
            return 405, error_response(
                "bad_request", f"method {method} not allowed")
        response = await self._server._dispatch(payload)
        if response.get("ok"):
            if payload.get("op") in ("ping", "stats"):
                response = self._with_replication(response)
            return 200, response
        return _STATUS_OF.get(response.get("error", ""), 500), response

    def _with_replication(self, response: dict) -> dict:
        """Stamp role/term/lag onto health responses (monitors scrape
        ``GET /ping``, so the role must be visible without a stats
        round trip)."""
        replication = self._server.replication
        if replication is None:
            return response
        summary = replication.summary()
        return dict(response, role=summary["role"], term=summary["term"],
                    replica_lag=summary.get("replica_lag"))

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadHttp as exc:
                    writer.write(self._render(
                        400, error_response("bad_request", str(exc)),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, body = request
                status, payload = await self._answer(method, path, body)
                writer.write(self._render(status, payload))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
