"""Long-lived asyncio query service over a resident containment index.

One process holds one open index -- monolithic
(:class:`~repro.core.engine.NestedSetIndex`) or sharded
(:class:`~repro.core.shard.ShardedIndex`) -- and serves the
length-prefixed JSON protocol of :mod:`repro.server.protocol` over TCP.
The design has four load-bearing pieces:

* **Admission control** -- at most ``max_inflight`` admitted requests at
  any instant; the listener answers everything beyond that with an
  ``overloaded`` error *immediately* instead of queueing unboundedly, so
  a traffic spike degrades into fast rejections rather than collapse.
  Each admitted request also carries a deadline (its own ``timeout_ms``
  or the server default); expiry answers ``timeout`` while the worker
  thread finishes harmlessly in the background.

* **Micro-batching** -- single ``query`` requests that arrive within
  ``batch_window_ms`` of each other are coalesced, grouped by their
  evaluation options, and evaluated through **one**
  ``engine.query_batch`` call.  Batched evaluation shares the bottom-up
  subquery memo and (on sharded indexes) one fan-out per batch instead
  of one per query -- the same amortization the paper's batch
  experiments measure, now applied across concurrent clients.

* **Snapshot reads, lock-free mutations** -- engine calls run on a
  small thread pool, and the engine's read path is version-based: every
  query batch pins the store's committed version and runs against that
  snapshot, so ``insert``/``delete``/``ingest`` commit freely without
  an engine-level write lock and no reader ever observes a half-applied
  update.  The server adds no second locking layer: coordination lives
  in the engine so in-process callers get it too.  (On a store without
  MVCC the engine transparently falls back to its reader/writer lock.)

* **Streaming ingest** -- the ``ingest`` op enqueues records into a
  :class:`~repro.data.ingest.StreamIngestor` and returns immediately;
  a background thread batches them into amortized write-ahead-log
  commit groups (one version step, one fsync per group) off the query
  path.  ``stats`` surfaces ``snapshot_version``,
  ``oldest_pinned_version`` and ``ingest_groups_committed`` so the
  read/write interplay is observable.

* **Graceful drain** -- SIGTERM or a ``shutdown`` request stops the
  listener, lets admitted requests finish (bounded by
  ``drain_timeout_s``), flushes the ingestor's tail, then closes the
  index, which flushes deferred statistics and checkpoints the
  write-ahead log.  A drained server leaves an index that reopens with
  zero pending WAL groups.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..data.ingest import StreamIngestor
from .metrics import ServerMetrics
from .protocol import (
    ProtocolError,
    error_response,
    ok_response,
    read_frame,
    validate_request,
    write_frame,
)

__all__ = ["QueryServer", "ServerThread"]

#: Default per-request deadline when the client sends no ``timeout_ms``.
DEFAULT_TIMEOUT_S = 30.0
#: Default bound on concurrently admitted requests.
DEFAULT_MAX_INFLIGHT = 64
#: Default micro-batch window (milliseconds); 0 disables coalescing.
DEFAULT_BATCH_WINDOW_MS = 2.0
#: Flush a batch early once this many queries are waiting.
DEFAULT_BATCH_MAX = 128
#: How long a drain waits for in-flight requests before giving up.
DEFAULT_DRAIN_TIMEOUT_S = 30.0


def _option_key(options: dict) -> tuple:
    """Hashable grouping key: queries with equal options share a batch."""
    return tuple(sorted(options.items()))


@dataclass
class _PendingQuery:
    """One coalescable ``query`` request waiting for its batch."""

    text: str
    options: dict
    future: "asyncio.Future[list[str]]" = field(repr=False, kw_only=True)


class QueryServer:
    """Serve one resident index over TCP until drained."""

    def __init__(self, index: Any, *, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 4,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
                 batch_max: int = DEFAULT_BATCH_MAX,
                 default_timeout_s: float = DEFAULT_TIMEOUT_S,
                 drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
                 close_index_on_drain: bool = True,
                 ingest_batch_size: int = 64,
                 ingest_flush_interval: float = 0.25) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._index = index
        self.host = host
        self.port = port          # rewritten with the bound port on start
        self.max_inflight = max_inflight
        self.batch_window_s = max(0.0, batch_window_ms) / 1000.0
        self.batch_max = max(1, batch_max)
        self.default_timeout_s = default_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.metrics = ServerMetrics()
        self._close_index_on_drain = close_index_on_drain
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-serve")
        self._inflight = 0
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._pending: list[_PendingQuery] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self._ingest_batch_size = ingest_batch_size
        self._ingest_flush_interval = ingest_flush_interval
        self._ingestor: StreamIngestor | None = None
        self._ingestor_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the real port after."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_drained(self) -> None:
        """Run until a drain completes (``shutdown`` op or SIGTERM)."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        self._install_signal_handlers()
        await self._stopped.wait()

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, lambda: self._loop.create_task(self._drain()))
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or platform without signal support:
                # the shutdown op remains the drain path.
                return

    def request_drain(self) -> None:
        """Thread-safe drain trigger (used by :class:`ServerThread`)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self._drain()))
        except RuntimeError:
            # The loop closed between the check and the call: a
            # client-issued shutdown already drained the server.
            pass

    async def _drain(self) -> None:
        """Stop admitting, finish in-flight work, checkpoint, stop."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._flush_now()
        deadline = time.monotonic() + self.drain_timeout_s
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        loop = asyncio.get_running_loop()
        if self._ingestor is not None:
            # Commit the ingest tail before the index closes: a drained
            # server has accepted-and-durable ingest, not a dropped queue.
            await loop.run_in_executor(self._pool, self._ingestor.close)
        if self._close_index_on_drain:
            # close() flushes deferred statistics and checkpoints the
            # WAL -- the "clean index on disk" half of graceful drain.
            await loop.run_in_executor(self._pool, self._index.close)
        self._pool.shutdown(wait=True)
        assert self._stopped is not None
        self._stopped.set()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    self.metrics.record_error("bad_request")
                    await write_frame(
                        writer, error_response("bad_request", str(exc)))
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                await write_frame(writer, response)
                if isinstance(request, dict) and \
                        request.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: Any) -> dict:
        started = time.monotonic()
        try:
            request = validate_request(request)
        except ProtocolError as exc:
            self.metrics.record_error("bad_request")
            return error_response("bad_request", str(exc))
        op = request["op"]
        if op == "ping":                      # never counted against
            self.metrics.record_request(op)   # admission: health checks
            return ok_response("pong")        # must work under overload
        if op == "shutdown":
            self.metrics.record_request(op)
            asyncio.ensure_future(self._drain())
            return ok_response({"draining": True})
        if self._draining:
            self.metrics.record_error("shutting_down")
            return error_response("shutting_down",
                                  "server is draining")
        if op != "stats" and self._inflight >= self.max_inflight:
            self.metrics.record_error("overloaded")
            return error_response(
                "overloaded",
                f"{self._inflight} requests in flight "
                f"(limit {self.max_inflight})")
        self.metrics.record_request(op)
        self._inflight += 1
        try:
            response = await self._execute(op, request)
        finally:
            self._inflight -= 1
        self.metrics.record_latency(time.monotonic() - started)
        return response

    def _timeout_of(self, request: dict) -> float:
        timeout_ms = request.get("timeout_ms")
        if timeout_ms is None:
            return self.default_timeout_s
        return min(float(timeout_ms) / 1000.0, self.default_timeout_s)

    async def _execute(self, op: str, request: dict) -> dict:
        timeout_s = self._timeout_of(request)
        options = dict(request.get("options") or {})
        try:
            if op == "query":
                if self.batch_window_s <= 0:
                    # Per-request mode: straight to a worker thread,
                    # no coalescing (the benchmark baseline).
                    result = await asyncio.wait_for(
                        self._run_in_pool(self._run_single,
                                          request["query"], options),
                        timeout_s)
                else:
                    future = self._enqueue_query(request["query"],
                                                 options)
                    result = await asyncio.wait_for(future, timeout_s)
                return ok_response(result)
            if op == "query_batch":
                result = await asyncio.wait_for(
                    self._run_in_pool(self._run_batch,
                                      list(request["queries"]), options),
                    timeout_s)
                return ok_response(result)
            if op == "insert":
                ordinal = await asyncio.wait_for(
                    self._run_in_pool(self._index.insert, request["key"],
                                      request["value"]),
                    timeout_s)
                return ok_response({"ordinal": ordinal})
            if op == "delete":
                deleted = await asyncio.wait_for(
                    self._run_in_pool(self._index.delete, request["key"]),
                    timeout_s)
                return ok_response({"deleted": deleted})
            if op == "ingest":
                records = [(key, value)
                           for key, value in request["records"]]
                ingestor = self._ensure_ingestor()
                for key, value in records:
                    ingestor.submit(key, value)
                # Accepted, not yet durable: the background batcher
                # commits these as amortized WAL groups.
                return ok_response({"accepted": len(records),
                                    **ingestor.counters()})
            if op == "stats":
                return ok_response(self._stats_payload())
            raise AssertionError(f"unroutable op {op!r}")  # validated above
        except asyncio.TimeoutError:
            self.metrics.record_error("timeout")
            return error_response(
                "timeout", f"deadline of {timeout_s * 1000:.0f} ms expired")
        except Exception as exc:  # noqa: BLE001 -- boundary: report, don't die
            self.metrics.record_error("internal")
            return error_response("internal",
                                  f"{type(exc).__name__}: {exc}")

    def _run_in_pool(self, fn, *args) -> "asyncio.Future":
        assert self._loop is not None
        return self._loop.run_in_executor(self._pool, fn, *args)

    def _ensure_ingestor(self) -> StreamIngestor:
        with self._ingestor_lock:
            if self._ingestor is None:
                self._ingestor = StreamIngestor(
                    self._index,
                    batch_size=self._ingest_batch_size,
                    flush_interval=self._ingest_flush_interval).start()
            return self._ingestor

    def _stats_payload(self) -> dict:
        if self._ingestor is not None:
            counters = self._ingestor.counters()
            self.metrics.set_ingest_counters(
                counters["records_ingested"],
                counters["groups_committed"],
                counters["errors"])
        engine_stats = self._index.stats()
        mvcc = engine_stats.get("mvcc") or {}
        return {
            "server": dict(
                self.metrics.snapshot(),
                inflight=self._inflight,
                max_inflight=self.max_inflight,
                batch_window_ms=self.batch_window_s * 1000,
                draining=self._draining,
                snapshot_version=mvcc.get("snapshot_version"),
                oldest_pinned_version=mvcc.get("oldest_pinned_version"),
            ),
            "engine": engine_stats,
        }

    # -- micro-batching ----------------------------------------------------

    def _run_single(self, query: str, options: dict) -> list:
        """Worker-thread body of per-request (window = 0) dispatch."""
        self.metrics.record_batch(1)
        return self._index.query(query, **options)

    def _enqueue_query(self, text: str,
                       options: dict) -> "asyncio.Future[list[str]]":
        """Queue one query for the current batch window.

        The flush fires when the window timer expires *or* as soon as
        ``batch_max`` queries are waiting -- a full batch never sits out
        the rest of its window, so the window bounds worst-case added
        latency instead of taxing every request.
        """
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._pending.append(_PendingQuery(text, options, future=future))
        if len(self._pending) >= self.batch_max:
            self._flush_now()
        elif self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self.batch_window_s, self._flush_now)
        return future

    def _flush_now(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        groups: dict[tuple, list[_PendingQuery]] = {}
        for item in pending:
            groups.setdefault(_option_key(item.options), []).append(item)
        for group in groups.values():
            asyncio.ensure_future(self._run_group(group))

    async def _run_group(self, group: Sequence[_PendingQuery]) -> None:
        """Evaluate one option-homogeneous batch and settle its futures."""
        queries = [item.text for item in group]
        options = group[0].options
        self.metrics.record_batch(len(queries))
        try:
            results = await self._run_in_pool(
                self._run_batch, queries, options)
        except Exception as exc:  # noqa: BLE001 -- settle every waiter
            for item in group:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, result in zip(group, results):
            if not item.future.done():       # done = its deadline expired
                item.future.set_result(result)

    def _run_batch(self, queries: list[str],
                   options: dict) -> list[list[str]]:
        """Worker-thread body: one engine call for the whole group."""
        return self._index.query_batch(queries, **options)


class ServerThread:
    """Run a :class:`QueryServer` on a background thread (tests, CLI-free
    embedding, benchmarks).

    ::

        with ServerThread(index, batch_window_ms=2) as handle:
            client = ServiceClient(port=handle.port)
            ...

    Exiting the context drains the server (closing the index unless the
    server was built with ``close_index_on_drain=False``) and joins the
    thread.
    """

    def __init__(self, index: Any, **server_options: Any) -> None:
        self.server = QueryServer(index, **server_options)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-server", daemon=True)

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self.server.serve_until_drained()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server failed to start within 10s")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_drain()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread failed to drain in time")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
