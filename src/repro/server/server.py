"""Long-lived asyncio query service over a resident containment index.

One process holds one open index -- monolithic
(:class:`~repro.core.engine.NestedSetIndex`) or sharded
(:class:`~repro.core.shard.ShardedIndex`) -- and serves the
length-prefixed protocol of :mod:`repro.server.protocol` over TCP.
The design has five load-bearing pieces:

* **Admission control** -- at most ``max_inflight`` admitted requests at
  any instant; the listener answers everything beyond that with an
  ``overloaded`` error *immediately* instead of queueing unboundedly, so
  a traffic spike degrades into fast rejections rather than collapse.
  Each admitted request also carries a deadline (its own ``timeout_ms``
  or the server default); expiry answers ``timeout`` while the worker
  thread finishes harmlessly in the background.

* **Pipelined connections** -- binary-frame requests carry a request id
  and are dispatched as concurrent tasks; responses are written (under a
  per-connection lock) in *completion* order, each tagged with its id,
  so one connection can keep many requests outstanding.  JSON-frame
  requests keep the PR 5 contract: sequential, in order, untagged.

* **Micro-batching** -- single ``query`` requests that arrive within
  ``batch_window_ms`` of each other are coalesced, grouped by their
  evaluation options, and evaluated through **one**
  ``engine.query_batch`` call.  Two refinements kill the window tax at
  low concurrency: a request that is *alone* in flight dispatches
  immediately (there is nothing to coalesce with), and a pipelined
  burst flushes as soon as its connection's read buffer drains (the
  batch is as big as the burst -- waiting out the window buys nothing).

* **Snapshot reads, lock-free mutations** -- engine calls run on a
  small thread pool, and the engine's read path is version-based: every
  query batch pins the store's committed version and runs against that
  snapshot, so ``insert``/``delete``/``ingest`` commit freely without
  an engine-level write lock and no reader ever observes a half-applied
  update.  (On a store without MVCC the engine transparently falls back
  to its reader/writer lock.)

* **Streaming ingest and graceful drain** -- the ``ingest`` op enqueues
  records into a :class:`~repro.data.ingest.StreamIngestor` and returns
  immediately; SIGTERM or a ``shutdown`` request stops the listeners
  (TCP and, if mounted, the HTTP gateway), lets admitted requests
  finish, flushes the ingestor's tail, then closes the index, which
  checkpoints the write-ahead log.

``stats`` surfaces all of it: request mix, coalesce ratio, per-stage
latency breakdown (decode / queue / execute / encode), ingest counters,
and MVCC versions.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..data.ingest import StreamIngestor
from .metrics import ServerMetrics
from .protocol import (
    ProtocolError,
    Request,
    decode_request_body,
    encode_frame,
    encode_response_for,
    error_response,
    ok_response,
    peek_request_id,
    read_frame_bytes,
    validate_request,
)

__all__ = ["QueryServer", "ServerThread"]

#: Default per-request deadline when the client sends no ``timeout_ms``.
DEFAULT_TIMEOUT_S = 30.0
#: Default bound on concurrently admitted requests.
DEFAULT_MAX_INFLIGHT = 64
#: Default micro-batch window (milliseconds); 0 disables coalescing.
DEFAULT_BATCH_WINDOW_MS = 2.0
#: Flush a batch early once this many queries are waiting.
DEFAULT_BATCH_MAX = 128
#: How long a drain waits for in-flight requests before giving up.
DEFAULT_DRAIN_TIMEOUT_S = 30.0


#: Ops admitted even at the in-flight ceiling: observability must work
#: under overload, and a replica's long-poll tail fetch must never be
#: starved out by query traffic (there are at most a handful of
#: replicas, each with one fetch in flight).
_UNCOUNTED_OPS = frozenset(
    ("stats", "repl_bootstrap", "repl_pages", "repl_done", "repl_fetch",
     "promote"))

#: The granularity of the ``repl_fetch`` long-poll wakeup check.
_FETCH_POLL_S = 0.02


def _option_key(options: dict) -> tuple:
    """Hashable grouping key: queries with equal options share a batch."""
    return tuple(sorted(options.items()))


@dataclass
class _PendingQuery:
    """One coalescable ``query`` request waiting for its batch."""

    text: object                     # str (JSON wire) or NestedSet (binary)
    options: dict
    enqueued_at: float
    future: "asyncio.Future[list[str]]" = field(repr=False, kw_only=True)


class QueryServer:
    """Serve one resident index over TCP until drained."""

    def __init__(self, index: Any, *, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 4,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
                 batch_max: int = DEFAULT_BATCH_MAX,
                 default_timeout_s: float = DEFAULT_TIMEOUT_S,
                 drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
                 close_index_on_drain: bool = True,
                 ingest_batch_size: int = 64,
                 ingest_flush_interval: float = 0.25,
                 http_port: int | None = None,
                 replication: Any | None = None) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._index = index
        self.host = host
        self.port = port          # rewritten with the bound port on start
        self.max_inflight = max_inflight
        self.batch_window_s = max(0.0, batch_window_ms) / 1000.0
        self.batch_max = max(1, batch_max)
        self.default_timeout_s = default_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.metrics = ServerMetrics()
        self._close_index_on_drain = close_index_on_drain
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-serve")
        self._inflight = 0
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._pending: list[_PendingQuery] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self._ingest_batch_size = ingest_batch_size
        self._ingest_flush_interval = ingest_flush_interval
        self._ingestor: StreamIngestor | None = None
        self._ingestor_lock = threading.Lock()
        #: Optional stdlib HTTP/JSON gateway riding on the same loop.
        self._http_port = http_port
        self.http_port: int | None = None
        self._gateway = None
        #: Optional :class:`~repro.replication.ReplicationManager`: a
        #: primary answers the ``repl_*`` ops, a replica rejects
        #: mutations with ``read_only``; ``promote`` flips the role.
        self.replication = replication

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener(s); ``self.port`` holds the real port after."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self._http_port is not None:
            from .gateway import HttpGateway
            self._gateway = HttpGateway(self, host=self.host,
                                        port=self._http_port)
            await self._gateway.start()
            self.http_port = self._gateway.port

    async def serve_until_drained(self) -> None:
        """Run until a drain completes (``shutdown`` op or SIGTERM)."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        self._install_signal_handlers()
        await self._stopped.wait()

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, lambda: self._loop.create_task(self._drain()))
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or platform without signal support:
                # the shutdown op remains the drain path.
                return

    def request_drain(self) -> None:
        """Thread-safe drain trigger (used by :class:`ServerThread`)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self._drain()))
        except RuntimeError:
            # The loop closed between the check and the call: a
            # client-issued shutdown already drained the server.
            pass

    async def _drain(self) -> None:
        """Stop admitting, finish in-flight work, checkpoint, stop."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._gateway is not None:
            await self._gateway.stop()
        self._flush_now()
        deadline = time.monotonic() + self.drain_timeout_s
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        loop = asyncio.get_running_loop()
        if self.replication is not None:
            # Stop the tailer / release pinned bootstrap readers before
            # the index closes underneath them.
            await loop.run_in_executor(self._pool,
                                       self.replication.close)
        if self._ingestor is not None:
            # Commit the ingest tail before the index closes: a drained
            # server has accepted-and-durable ingest, not a dropped queue.
            await loop.run_in_executor(self._pool, self._ingestor.close)
        if self._close_index_on_drain:
            # close() flushes deferred statistics and checkpoints the
            # WAL -- the "clean index on disk" half of graceful drain.
            await loop.run_in_executor(self._pool, self._index.close)
        self._pool.shutdown(wait=True)
        assert self._stopped is not None
        self._stopped.set()

    # -- connection handling ----------------------------------------------

    @staticmethod
    def _reader_buffered(reader: asyncio.StreamReader) -> bool:
        """More frames already received on this connection?

        Peeks the stream's internal buffer (a CPython implementation
        detail with a graceful fallback): a pipelined burst shows up as
        buffered bytes, and an empty buffer means the client is waiting
        on us -- the moment to flush instead of sitting out the window.
        """
        return bool(getattr(reader, "_buffer", None))

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    body = await read_frame_bytes(reader)
                except ProtocolError as exc:
                    self.metrics.record_error("bad_request")
                    await self._send(writer, encode_frame(
                        error_response("bad_request", str(exc))))
                    break
                if body is None:
                    break
                started = time.monotonic()
                try:
                    request = decode_request_body(body)
                except ProtocolError as exc:
                    self.metrics.record_error("bad_request")
                    # Tag the error when the binary header survived so a
                    # pipelined client can settle the matching request;
                    # close either way -- framing may be out of sync.
                    request_id = peek_request_id(body)
                    salvage = Request({}, wire="binary",
                                      request_id=request_id) \
                        if request_id is not None else Request({})
                    await self._send(writer,
                                     encode_response_for(
                                         salvage, error_response(
                                             "bad_request", str(exc))))
                    break
                self.metrics.record_stage(
                    "decode", time.monotonic() - started)
                if request.wire == "binary":
                    # Pipelined: dispatch concurrently, respond tagged
                    # with the request id in completion order.
                    burst = self._reader_buffered(reader)
                    task = asyncio.ensure_future(
                        self._respond(request, writer, burst=burst))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                    # Let the dispatch run to its first suspension so a
                    # coalescable query is *enqueued* before the drain
                    # check below decides whether to flush.
                    await asyncio.sleep(0)
                    if self._pending and \
                            not self._reader_buffered(reader):
                        # The connection's pipeline is drained: the
                        # batch is as big as this burst will make it.
                        self._flush_now()
                    if request.op == "shutdown":
                        if tasks:
                            await asyncio.gather(*tasks,
                                                 return_exceptions=True)
                        break
                else:
                    # JSON wire: strictly one request per round trip,
                    # responses in request order (the PR 5 contract).
                    response = await self._dispatch(request.payload)
                    await self._send(writer,
                                     self._encode_response(request,
                                                           response))
                    if request.op == "shutdown":
                        break
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _respond(self, request: Request,
                       writer: asyncio.StreamWriter, *,
                       burst: bool = False) -> None:
        response = await self._dispatch(request.payload, burst=burst)
        await self._send(writer, self._encode_response(request, response))

    def _encode_response(self, request: Request, response: dict) -> bytes:
        started = time.monotonic()
        try:
            return encode_response_for(request, response)
        finally:
            self.metrics.record_stage("encode",
                                      time.monotonic() - started)

    async def _send(self, writer: asyncio.StreamWriter,
                    frame: bytes) -> None:
        # No write lock: each response is one synchronous ``write`` of a
        # complete frame, and asyncio transports never interleave the
        # bytes of distinct write calls.  ``drain`` only suspends once
        # the transport is over its high-water mark, so the common case
        # is lock-free and yield-free.
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            writer.write(frame)
            await writer.drain()

    async def _dispatch(self, request: Any, *,
                        burst: bool = False) -> dict:
        started = time.monotonic()
        try:
            request = validate_request(request)
        except ProtocolError as exc:
            self.metrics.record_error("bad_request")
            return error_response("bad_request", str(exc))
        op = request["op"]
        if op == "ping":                      # never counted against
            self.metrics.record_request(op)   # admission: health checks
            return ok_response("pong")        # must work under overload
        if op == "shutdown":
            self.metrics.record_request(op)
            asyncio.ensure_future(self._drain())
            return ok_response({"draining": True})
        if self._draining:
            self.metrics.record_error("shutting_down")
            return error_response("shutting_down",
                                  "server is draining")
        if op not in _UNCOUNTED_OPS and \
                self._inflight >= self.max_inflight:
            self.metrics.record_error("overloaded")
            return error_response(
                "overloaded",
                f"{self._inflight} requests in flight "
                f"(limit {self.max_inflight})")
        self.metrics.record_request(op)
        self._inflight += 1
        try:
            response = await self._execute(op, request, burst=burst)
        finally:
            self._inflight -= 1
        self.metrics.record_latency(time.monotonic() - started)
        return response

    def _timeout_of(self, request: dict) -> float:
        timeout_ms = request.get("timeout_ms")
        if timeout_ms is None:
            return self.default_timeout_s
        return min(float(timeout_ms) / 1000.0, self.default_timeout_s)

    async def _execute(self, op: str, request: dict, *,
                       burst: bool = False) -> dict:
        timeout_s = self._timeout_of(request)
        options = dict(request.get("options") or {})
        replication = self.replication
        if op in ("insert", "delete", "ingest") and \
                replication is not None and \
                replication.role == "replica":
            self.metrics.record_error("read_only")
            primary = replication.primary_address or "unknown"
            return error_response(
                "read_only",
                f"this node is a read-only replica; "
                f"send mutations to the primary at {primary}")
        try:
            if op.startswith("repl_") or op == "promote":
                return await self._execute_replication(op, request,
                                                       timeout_s)
            if op == "query":
                if self.batch_window_s <= 0:
                    # Per-request mode: straight to a worker thread,
                    # no coalescing (the benchmark baseline).
                    result = await asyncio.wait_for(
                        self._run_in_pool(self._run_single,
                                          request["query"], options,
                                          time.monotonic()),
                        timeout_s)
                else:
                    future = self._enqueue_query(request["query"],
                                                 options, burst=burst)
                    result = await asyncio.wait_for(future, timeout_s)
                return ok_response(result)
            if op == "query_batch":
                result = await asyncio.wait_for(
                    self._run_in_pool(self._run_batch,
                                      list(request["queries"]), options),
                    timeout_s)
                return ok_response(result)
            if op == "insert":
                ordinal = await asyncio.wait_for(
                    self._run_in_pool(self._index.insert, request["key"],
                                      request["value"]),
                    timeout_s)
                return ok_response({"ordinal": ordinal})
            if op == "delete":
                deleted = await asyncio.wait_for(
                    self._run_in_pool(self._index.delete, request["key"]),
                    timeout_s)
                return ok_response({"deleted": deleted})
            if op == "ingest":
                records = [(key, value)
                           for key, value in request["records"]]
                ingestor = self._ensure_ingestor()
                for key, value in records:
                    ingestor.submit(key, value)
                # Accepted, not yet durable: the background batcher
                # commits these as amortized WAL groups.
                return ok_response({"accepted": len(records),
                                    **ingestor.counters()})
            if op == "stats":
                return ok_response(self._stats_payload())
            raise AssertionError(f"unroutable op {op!r}")  # validated above
        except asyncio.TimeoutError:
            self.metrics.record_error("timeout")
            return error_response(
                "timeout", f"deadline of {timeout_s * 1000:.0f} ms expired")
        except Exception as exc:  # noqa: BLE001 -- boundary: report, don't die
            self.metrics.record_error("internal")
            return error_response("internal",
                                  f"{type(exc).__name__}: {exc}")

    async def _execute_replication(self, op: str, request: dict,
                                   timeout_s: float) -> dict:
        """The ``repl_*`` bootstrap/tail ops and ``promote``."""
        replication = self.replication
        if replication is None:
            return error_response(
                "bad_request", "replication is not enabled on this server")
        if op == "promote":
            result = await self._run_in_pool(replication.promote)
            self.metrics.set_replication(replication.role,
                                         replication.term)
            return ok_response(result)
        source = replication.source
        if source is None:
            return error_response(
                "bad_request",
                f"this node is a replica (primary: "
                f"{replication.primary_address}); "
                "repl_* ops are served by the primary")
        if op == "repl_bootstrap":
            result = await self._run_in_pool(source.bootstrap,
                                             request["replica_id"])
            return ok_response(result)
        if op == "repl_pages":
            try:
                result = await asyncio.wait_for(
                    self._run_in_pool(source.pages, request["session"],
                                      request["start_page"],
                                      request["count"]),
                    timeout_s)
            except (KeyError, IndexError) as exc:
                return error_response("bad_request", str(exc))
            return ok_response(result)
        if op == "repl_done":
            return ok_response(source.done(request["session"]))
        if op == "repl_fetch":
            return ok_response(await self._fetch_groups(source, request,
                                                        timeout_s))
        raise AssertionError(f"unroutable replication op {op!r}")

    async def _fetch_groups(self, source: Any, request: dict,
                            timeout_s: float) -> dict:
        """One tail fetch, long-polling up to ``wait_ms`` for new groups.

        The wait runs on the event loop (cheap sleeps), not a worker
        thread -- a fleet of idle replicas costs polling wakeups, never
        pool threads.
        """
        replica_id = request["replica_id"]
        after_seq = int(request["after_seq"])
        max_groups = int(request.get("max_groups") or 256)
        wait_s = min(int(request.get("wait_ms") or 0) / 1000.0,
                     max(0.0, timeout_s - 0.1))
        deadline = time.monotonic() + wait_s
        while True:
            reply = await self._run_in_pool(
                lambda: source.fetch(replica_id, after_seq,
                                     max_groups=max_groups))
            if reply.get("count") or reply.get("status") == "behind" \
                    or self._draining:
                return reply
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return reply
            await asyncio.sleep(min(_FETCH_POLL_S, remaining))

    def _run_in_pool(self, fn, *args) -> "asyncio.Future":
        assert self._loop is not None
        return self._loop.run_in_executor(self._pool, fn, *args)

    def _ensure_ingestor(self) -> StreamIngestor:
        with self._ingestor_lock:
            if self._ingestor is None:
                self._ingestor = StreamIngestor(
                    self._index,
                    batch_size=self._ingest_batch_size,
                    flush_interval=self._ingest_flush_interval).start()
            return self._ingestor

    def _stats_payload(self) -> dict:
        if self._ingestor is not None:
            counters = self._ingestor.counters()
            self.metrics.set_ingest_counters(
                counters["records_ingested"],
                counters["groups_committed"],
                counters["errors"])
        replication_extra: dict[str, Any] = {}
        if self.replication is not None:
            summary = self.replication.summary()
            lag = summary.get("replica_lag") or {}
            self.metrics.set_replication(
                summary["role"], summary["term"],
                lag.get("lag_groups"), lag.get("lag_seconds"))
            replication_extra = {
                "role": summary["role"],
                "term": summary["term"],
                "replica_lag": lag or None,
                "replication": summary,
            }
        engine_stats = self._index.stats()
        mvcc = engine_stats.get("mvcc") or {}
        return {
            "server": dict(
                self.metrics.snapshot(),
                inflight=self._inflight,
                max_inflight=self.max_inflight,
                batch_window_ms=self.batch_window_s * 1000,
                draining=self._draining,
                snapshot_version=mvcc.get("snapshot_version"),
                oldest_pinned_version=mvcc.get("oldest_pinned_version"),
                **replication_extra,
            ),
            "engine": engine_stats,
        }

    # -- micro-batching ----------------------------------------------------

    def _run_single(self, query: object, options: dict,
                    submitted_at: float) -> list:
        """Worker-thread body of per-request (window = 0) dispatch."""
        self.metrics.record_batch(1)
        started = time.monotonic()
        self.metrics.record_stage("queue", started - submitted_at)
        try:
            return self._index.query(query, **options)
        finally:
            self.metrics.record_stage("execute",
                                      time.monotonic() - started)

    def _enqueue_query(self, text: object, options: dict, *,
                       burst: bool = False) -> "asyncio.Future[list[str]]":
        """Queue one query for the current batch window.

        The flush fires when the window timer expires, as soon as
        ``batch_max`` queries are waiting, *or* -- the adaptive window
        floor -- when this request is alone in flight: with no
        concurrent request admitted there is nothing to coalesce with,
        so sleeping out the window would be pure added latency.  A
        ``burst`` request (its connection has more frames already
        buffered) skips the floor: its batch keeps growing until the
        connection's pipeline drains, which triggers the flush instead.
        """
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._pending.append(_PendingQuery(text, options,
                                           time.monotonic(),
                                           future=future))
        if len(self._pending) >= self.batch_max or \
                (self._inflight <= 1 and not burst):
            self._flush_now()
        elif self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self.batch_window_s, self._flush_now)
        return future

    def _flush_now(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        groups: dict[tuple, list[_PendingQuery]] = {}
        for item in pending:
            groups.setdefault(_option_key(item.options), []).append(item)
        for group in groups.values():
            asyncio.ensure_future(self._run_group(group))

    async def _run_group(self, group: Sequence[_PendingQuery]) -> None:
        """Evaluate one option-homogeneous batch and settle its futures."""
        queries = [item.text for item in group]
        options = group[0].options
        self.metrics.record_batch(len(queries))
        try:
            results = await self._run_in_pool(
                self._run_group_in_worker, group, queries, options)
        except Exception as exc:  # noqa: BLE001 -- settle every waiter
            for item in group:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, result in zip(group, results):
            if not item.future.done():       # done = its deadline expired
                item.future.set_result(result)

    def _run_group_in_worker(self, group: Sequence[_PendingQuery],
                             queries: list, options: dict) -> list:
        """Worker-thread body: one engine call for the whole group."""
        started = time.monotonic()
        for item in group:
            self.metrics.record_stage("queue", started - item.enqueued_at)
        try:
            return self._index.query_batch(queries, **options)
        finally:
            self.metrics.record_stage("execute",
                                      time.monotonic() - started)

    def _run_batch(self, queries: list, options: dict) -> list[list[str]]:
        """Worker-thread body of an explicit ``query_batch`` request."""
        started = time.monotonic()
        try:
            return self._index.query_batch(queries, **options)
        finally:
            self.metrics.record_stage("execute",
                                      time.monotonic() - started)


class ServerThread:
    """Run a :class:`QueryServer` on a background thread (tests, CLI-free
    embedding, benchmarks).

    ::

        with ServerThread(index, batch_window_ms=2) as handle:
            client = ServiceClient(port=handle.port)
            ...

    Exiting the context drains the server (closing the index unless the
    server was built with ``close_index_on_drain=False``) and joins the
    thread.
    """

    def __init__(self, index: Any, **server_options: Any) -> None:
        self.server = QueryServer(index, **server_options)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-server", daemon=True)

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self.server.serve_until_drained()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server failed to start within 10s")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def http_port(self) -> int | None:
        return self.server.http_port

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_drain()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread failed to drain in time")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
