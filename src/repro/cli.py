"""Command-line interface: generate, index, query, inspect, benchmark.

::

    nestcontain generate --dataset zipf-wide --size 10000 -o data.nsets
    nestcontain index data.nsets --storage diskhash -o data.idx
    nestcontain query data.idx "{USA, {UK, {A, motorbike}}}" --algorithm topdown
    nestcontain info data.idx
    nestcontain bench --dataset twitter --sizes 1000,2000 --repeats 5
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .bench.protocol import measure
from .bench.reporting import format_figure
from .bench.protocol import SeriesPoint
from .bench.workloads import (
    DATASETS,
    WorkloadCache,
    generate_dataset,
    make_query_runner,
)
from .core.engine import ALGORITHMS, NestedSetIndex
from .core.join import STRATEGIES as JOIN_STRATEGIES
from .core.matchspec import JOINS, MODES, SEMANTICS
from .core.shard import ShardedIndex
from .core.planner import STRATEGIES as PLANNER_STRATEGIES
from .data.io import load_collection_file, save_collection_file


def _cmd_generate(args: argparse.Namespace) -> int:
    records = generate_dataset(args.dataset, args.size, seed=args.seed,
                               theta=args.theta)
    count = save_collection_file(records, args.output)
    print(f"wrote {count} records of {args.dataset} to {args.output}")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from .data.ingest import (
        DBLP_RECORD_TAGS,
        load_jsonl_file,
        load_xml_file,
    )
    if args.format == "jsonl":
        records = load_jsonl_file(args.source,
                                  skip_invalid=args.skip_invalid)
    else:
        tags = set(args.tags.split(",")) if args.tags \
            else set(DBLP_RECORD_TAGS)
        records = load_xml_file(args.source, tags)
    count = save_collection_file(records, args.output)
    print(f"imported {count} records from {args.source} "
          f"({args.format}) to {args.output}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    records = load_collection_file(args.collection)
    start = time.perf_counter()
    with NestedSetIndex.build(records, storage=args.storage,
                              path=args.output, shards=args.shards,
                              workers=args.workers,
                              block_size=args.block_size) as index:
        elapsed = time.perf_counter() - start
        layout = (f"{args.shards} shards, " if args.shards > 1 else "")
        print(f"indexed {index.n_records} records / {index.n_nodes} nodes "
              f"in {elapsed:.2f}s ({layout}{args.storage} -> {args.output})")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from .data.ingest import StreamIngestor, iter_jsonl
    from .data.io import load_collection

    def records(handle):
        if args.format == "jsonl":
            yield from iter_jsonl(handle, skip_invalid=args.skip_invalid)
        else:
            yield from load_collection(handle)

    handle = sys.stdin if args.source == "-" \
        else open(args.source, "r", encoding="utf-8")
    started = time.perf_counter()
    last_report = started
    try:
        with _open_index(args) as index:
            with StreamIngestor(
                    index, batch_size=args.batch_size,
                    flush_interval=args.flush_interval) as ingestor:
                for key, value in records(handle):
                    ingestor.submit(key, value)
                    if args.follow:
                        now = time.perf_counter()
                        if now - last_report >= 5.0:
                            counts = ingestor.counters()
                            print(f"  {counts['records_ingested']} "
                                  f"records in "
                                  f"{counts['groups_committed']} commit "
                                  f"groups, {counts['errors']} errors, "
                                  f"{counts['pending']} pending",
                                  file=sys.stderr, flush=True)
                            last_report = now
                ingestor.flush()
                counts = ingestor.counters()
            elapsed = time.perf_counter() - started
        print(f"ingested {counts['records_ingested']} records in "
              f"{counts['groups_committed']} commit groups "
              f"({counts['errors']} errors) in {elapsed:.2f}s")
        return 0 if counts["errors"] == 0 else 1
    finally:
        if handle is not sys.stdin:
            handle.close()


def _open_index(args: argparse.Namespace):
    """Open the index at ``args.index``.

    A store carrying a shard manifest comes back as a
    :class:`~repro.core.shard.ShardedIndex` (with ``--workers`` sizing
    its fan-out pool); otherwise a monolithic ``NestedSetIndex``.
    """
    return NestedSetIndex.open(args.storage, args.index, cache=args.cache,
                               workers=getattr(args, "workers", 1))


def _each_inverted_file(index):
    """The inverted file(s) behind either index flavour."""
    if isinstance(index, ShardedIndex):
        return [engine.inverted_file for engine in index.shards]
    return [index.inverted_file]


def _read_queries_file(path: str) -> list[str]:
    """One nested-set query per non-blank line; ``-`` reads stdin."""
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    queries = [line.strip() for line in lines]
    return [query for query in queries if query
            and not query.startswith("#")]


def _cmd_query(args: argparse.Namespace) -> int:
    if (args.query is None) == (args.queries_file is None):
        print("error: provide exactly one of a query argument or "
              "--queries-file", file=sys.stderr)
        return 2
    with _open_index(args) as index:
        if args.queries_file is not None:
            queries = _read_queries_file(args.queries_file)
            start = time.perf_counter()
            results = index.query_batch(queries,
                                        algorithm=args.algorithm,
                                        semantics=args.semantics,
                                        join=args.join,
                                        epsilon=args.epsilon,
                                        mode=args.mode,
                                        planner=args.planner)
            elapsed = (time.perf_counter() - start) * 1000.0
            for keys in results:
                print("\t".join(keys))
            n_hits = sum(len(keys) for keys in results)
            print(f"-- {len(queries)} queries, {n_hits} records "
                  f"in {elapsed:.3f} ms (batched, "
                  f"{args.algorithm}/{args.semantics}/{args.join})",
                  file=sys.stderr)
            return 0
        if args.show_plan:
            plan = index.compile(args.query, algorithm=args.algorithm,
                                 semantics=args.semantics, join=args.join,
                                 epsilon=args.epsilon, mode=args.mode,
                                 planner=args.planner)
            print(plan.describe(), file=sys.stderr)
        start = time.perf_counter()
        result = index.query(args.query, algorithm=args.algorithm,
                             semantics=args.semantics, join=args.join,
                             epsilon=args.epsilon, mode=args.mode,
                             planner=args.planner)
        elapsed = (time.perf_counter() - start) * 1000.0
        for key in result:
            print(key)
        print(f"-- {len(result)} records in {elapsed:.3f} ms "
              f"({args.algorithm}/{args.semantics}/{args.join})",
              file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    with _open_index(args) as index:
        result = index.explain(args.query, algorithm=args.algorithm,
                               semantics=args.semantics, join=args.join,
                               epsilon=args.epsilon, mode=args.mode,
                               planner=args.planner)
        print(result.render())
    return 0


def _cmd_similar(args: argparse.Namespace) -> int:
    from .core.similarity import top_k_similar
    with _open_index(args) as index:
        hits: list[tuple[str, float]] = []
        for ifile in _each_inverted_file(index):
            hits.extend(top_k_similar(ifile, args.query, k=args.k,
                                      candidate_limit=args.candidates))
        hits.sort(key=lambda hit: (-hit[1], hit[0]))
        for key, score in hits[:args.k]:
            print(f"{score:.4f}  {key}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .core.checker import check_index
    with _open_index(args) as index:
        ifiles = _each_inverted_file(index)
        problems = []
        for shard_no, ifile in enumerate(ifiles):
            prefix = f"shard {shard_no}: " if len(ifiles) > 1 else ""
            problems.extend(prefix + problem for problem in
                            check_index(ifile, max_atoms=args.max_atoms))
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}")
            print(f"-- {len(problems)} problem(s) found", file=sys.stderr)
            return 1
        layout = (f" across {len(ifiles)} shards" if len(ifiles) > 1
                  else "")
        print(f"index healthy: {index.n_records} records, "
              f"{index.n_nodes} nodes{layout}")
    return 0


def _print_server_info(address: str) -> int:
    """The ``info --server`` path: live counters from a running server."""
    from .server import ServiceClient
    host, _, port = address.rpartition(":")
    with ServiceClient(host or "127.0.0.1", int(port)) as client:
        stats = client.stats()
    server = stats["server"]
    latency = server["latency_ms"]
    engine = stats["engine"]
    print(f"server uptime:  {server['uptime_s']:.1f}s "
          f"({'draining' if server['draining'] else 'serving'})")
    role = server.get("role")
    if role is not None:
        print(f"replication:    role {role}, term {server.get('term')}")
        lag = server.get("replica_lag")
        if lag:
            seconds = lag.get("lag_seconds")
            seconds_text = ("unknown" if seconds is None
                            or seconds == float("inf")
                            else f"{seconds:.2f}s")
            print(f"  lag:           {lag.get('lag_groups', '?')} "
                  f"group(s), {seconds_text} "
                  f"(applied seq {lag.get('applied_seq')}, "
                  f"primary end {lag.get('end_seq')}, "
                  f"status {lag.get('status')})")
        shipping = (server.get("replication") or {}).get("shipping")
        if shipping and shipping.get("followers"):
            for rid, follow in sorted(shipping["followers"].items()):
                print(f"  follower:      {rid} acked seq "
                      f"{follow['acked_seq']} "
                      f"(lag {follow['lag_groups']} group(s))")
    print(f"requests:       {server['requests_total']} total "
          f"({server['inflight']}/{server['max_inflight']} in flight)")
    for op, count in sorted(server["requests_by_op"].items()):
        print(f"  {op + ':':<14}{count}")
    print(f"batches:        {server['batches']} engine calls for "
          f"{server['batched_queries']} queries "
          f"(coalesce ratio {server['coalesce_ratio']:.2f}, "
          f"window {server['batch_window_ms']:.1f} ms)")
    if server.get("ingest_records") or server.get("ingest_errors"):
        print(f"ingest:         {server['ingest_records']} records in "
              f"{server['ingest_groups_committed']} commit groups "
              f"({server['ingest_errors']} errors)")
    snap_version = server.get("snapshot_version")
    if snap_version is not None:
        pinned = server.get("oldest_pinned_version")
        pinned_text = "none pinned" if pinned is None \
            else f"oldest pinned {pinned}"
        print(f"snapshots:      version {snap_version} ({pinned_text})")
    print(f"rejections:     {server['rejected_overload']} overloaded, "
          f"{server['rejected_shutdown']} shutting down, "
          f"{server['timeouts']} timeouts")
    if server["errors_by_code"]:
        errors = ", ".join(f"{code}={count}" for code, count
                           in sorted(server["errors_by_code"].items()))
        print(f"errors:         {errors}")
    print(f"latency:        p50 {latency['p50']:.3f} ms, "
          f"p99 {latency['p99']:.3f} ms, max {latency['max']:.3f} ms "
          f"({latency['samples']} samples)")
    stages = server.get("stages_ms", {})
    if any(stage["samples"] for stage in stages.values()):
        parts = " | ".join(
            f"{name} p50 {stage['p50']:.3f}/p99 {stage['p99']:.3f}"
            for name, stage in stages.items() if stage["samples"])
        print(f"stages (ms):    {parts}")
    print(f"index:          {engine['index']['records']} records, "
          f"{engine['index']['nodes']} nodes")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    if args.server:
        return _print_server_info(args.server)
    if args.index is None:
        print("error: provide an index path or --server HOST:PORT",
              file=sys.stderr)
        return 2
    with _open_index(args) as index:
        print(f"records:        {index.n_records}")
        print(f"internal nodes: {index.n_nodes}")
        if isinstance(index, ShardedIndex):
            print(f"shards:         {index.n_shards} "
                  f"({index.policy.name} policy)")
            frequencies = index.frequencies()
        else:
            frequencies = index.inverted_file.frequencies()
        print(f"distinct atoms: {len(frequencies)}")
        ifiles = _each_inverted_file(index)
        for shard_no, ifile in enumerate(ifiles):
            stats = ifile.block_stats()
            if not stats["blocked_lists"]:
                continue
            prefix = (f"shard {shard_no} " if len(ifiles) > 1 else "")
            print(f"{prefix}block storage:")
            print(f"  blocked lists:    {stats['blocked_lists']} "
                  f"of {stats['lists']} "
                  f"(block size {stats['block_size']})")
            print(f"  packed lists:     {stats['packed_lists']} "
                  f"(numpy bulk-decodable 0x03 format)")
            print(f"  blocks:           {stats['blocks']} "
                  f"(avg fill {stats['avg_block_fill']:.1f} postings)")
            print(f"  compressed bytes: {stats['compressed_bytes']} "
                  f"({stats['directory_bytes']} directory)")
            print(f"  decoded bytes:    ~{stats['decoded_bytes']} "
                  f"(estimated in-memory)")
        all_stats = index.stats()
        index_stats = all_stats["index"]
        print(f"decode path:    {index_stats['decode_path']} "
              f"({index_stats['intersects_vectorized']} vectorized / "
              f"{index_stats['intersects_scalar']} scalar intersections "
              "this open)")
        mvcc = all_stats.get("mvcc")
        if mvcc is not None and "mmap_enabled" in mvcc:
            state = "enabled" if mvcc["mmap_enabled"] else "disabled"
            print(f"mmap reads:     {state} "
                  f"({mvcc['mapped_pages']} pages mapped)")
        wal = all_stats.get("wal")
        if wal is not None:
            print("durability (write-ahead log):")
            print(f"  wal file:        {wal['path']} "
                  f"({wal['size_bytes']} bytes)")
            print(f"  pending groups:  {wal['pending_groups']}")
            print(f"  recovered:       {wal['recovered_on_open']} group(s) "
                  f"replayed, {wal['discarded_on_open']} torn group(s) "
                  f"discarded on open")
            print(f"  lifetime:        {wal['commits']} commits, "
                  f"{wal['records_logged']} page records, "
                  f"{wal['syncs']} fsyncs, "
                  f"{wal['checkpoints']} checkpoints")
        print("hottest atoms:")
        for atom, df in frequencies[:args.top]:
            print(f"  {atom!r}: {df}")
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    from .core.join import containment_join
    from .core.matchspec import QuerySpec
    with _open_index(args) as index:
        queries = load_collection_file(args.queries)
        spec = QuerySpec(semantics=args.semantics, join=args.join,
                         epsilon=args.epsilon, mode=args.mode)
        workers = args.workers if args.workers > 1 else None
        result = containment_join(index, queries,
                                  strategy=args.strategy,
                                  algorithm=args.algorithm,
                                  use_bloom=args.use_bloom,
                                  workers=workers, spec=spec)
        if args.explain:
            print(result.describe())
            return 0
        for qkey, skey in result.pairs:
            print(f"{qkey}\t{skey}")
        print(f"-- {result.n_pairs} pairs from {result.n_queries} "
              f"queries in {result.elapsed_seconds * 1000:.1f} ms "
              f"({result.strategy})", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import socket as socketlib

    from .replication import (
        ReplicaTailer,
        ReplicationLog,
        ReplicationManager,
        bootstrap_from_primary,
    )
    from .replication.shipper import base_store_of
    from .server import QueryServer, ServiceClient

    replica_id = args.replica_id or \
        f"{socketlib.gethostname()}-{os.getpid()}"
    primary_client: "ServiceClient | None" = None
    boot: dict | None = None
    if args.replicate_from:
        host, _, port = args.replicate_from.rpartition(":")
        primary_client = ServiceClient(host or "127.0.0.1", int(port),
                                       retries=3)
        boot = bootstrap_from_primary(primary_client.call, args.index,
                                      replica_id)
        print(f"bootstrapped {boot['n_pages']} pages "
              f"(version {boot['version']}, next seq {boot['next_seq']}, "
              f"term {boot['term']}) from {args.replicate_from}",
              flush=True)

    # Every served disk index opens over a ReplicationLog so it can act
    # as a shipping source without a restart; the stamps ride inside
    # group labels and a plain open still recovers the same file.
    index = NestedSetIndex.open(args.storage, args.index,
                                cache=args.cache, workers=args.workers,
                                wal_factory=ReplicationLog)
    with index:
        try:
            if boot is not None:
                base_store_of(index).pager.adopt_version(boot["version"])
                tailer = ReplicaTailer(
                    index, primary_client.call, replica_id=replica_id,
                    primary_address=args.replicate_from).start()
                manager = ReplicationManager.as_replica(index, tailer)
            else:
                manager = ReplicationManager.as_primary(index)
        except ValueError:
            manager = None     # e.g. a store without a usable pager/WAL
        server = QueryServer(index, host=args.host, port=args.port,
                             workers=args.workers,
                             max_inflight=args.max_inflight,
                             batch_window_ms=args.batch_window_ms,
                             http_port=args.http_port,
                             close_index_on_drain=False,
                             replication=manager)

        async def _run() -> None:
            await server.start()
            role = manager.role if manager is not None else "primary"
            print(f"serving {args.index} on "
                  f"{server.host}:{server.port} "
                  f"({args.workers} workers, "
                  f"max {args.max_inflight} in flight, "
                  f"batch window {args.batch_window_ms} ms, "
                  f"role {role})",
                  flush=True)
            if server.http_port is not None:
                print(f"http gateway on "
                      f"{server.host}:{server.http_port}", flush=True)
            await server.serve_until_drained()

        asyncio.run(_run())
        # The `with` block closes the index -> WAL checkpoint; the
        # server only drains, so a drained process always exits clean.
        print("drained; checkpointing index", file=sys.stderr)
    if primary_client is not None:
        primary_client.close()
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    from .server import ServiceClient
    host, _, port = args.server.rpartition(":")
    with ServiceClient(host or "127.0.0.1", int(port)) as client:
        result = client.call({"op": "promote"})
    already = "" if result.get("promoted") else " (was already primary)"
    print(f"{args.server}: role {result['role']}, "
          f"term {result['term']}{already}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.figures import render_results_dir, render_results_file
    if args.experiment:
        path = os.path.join(args.dir, f"{args.experiment}.json")
        print(render_results_file(path, log_y=args.log))
    else:
        print(render_results_dir(args.dir, log_y=args.log))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    sizes = [int(token) for token in args.sizes.split(",")]
    cache_workloads = WorkloadCache()
    points: list[SeriesPoint] = []
    try:
        for size in sizes:
            workload = cache_workloads.get(args.dataset, size,
                                           n_queries=args.queries,
                                           seed=args.seed,
                                           shards=args.shards,
                                           workers=args.workers)
            for algorithm in args.algorithms.split(","):
                for policy in (None, "frequency"):
                    workload.index.set_cache(policy)
                    runner = make_query_runner(workload.index,
                                               workload.queries, algorithm)
                    timing = measure(runner, repeats=args.repeats)
                    label = algorithm + ("+cache" if policy else "")
                    points.append(SeriesPoint(label, size, timing))
        print(format_figure(f"{args.dataset}: {args.queries} queries, "
                            f"repeats={args.repeats}", points))
    finally:
        cache_workloads.clear()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nestcontain",
        description="Containment queries on nested sets "
                    "(Ibrahim & Fletcher, EDBT 2013 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic collection")
    gen.add_argument("--dataset", choices=DATASETS, default="uniform-wide")
    gen.add_argument("--size", type=int, default=10000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--theta", type=float, default=0.7,
                     help="Zipf skew for the zipf-* datasets")
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    imp = sub.add_parser("import",
                         help="import a JSONL or XML dump as a collection")
    imp.add_argument("source")
    imp.add_argument("--format", choices=("jsonl", "xml"),
                     default="jsonl")
    imp.add_argument("--tags", default=None,
                     help="comma-separated XML record tags "
                          "(default: the DBLP record tags)")
    imp.add_argument("--skip-invalid", action="store_true")
    imp.add_argument("-o", "--output", required=True)
    imp.set_defaults(func=_cmd_import)

    idx = sub.add_parser("index", help="build a disk index from a collection")
    idx.add_argument("collection")
    idx.add_argument("--storage", choices=("diskhash", "btree"),
                     default="diskhash")
    idx.add_argument("--shards", type=int, default=1,
                     help="partition the records across N inverted-file "
                          "shards inside one store (default 1)")
    idx.add_argument("--workers", type=int, default=1,
                     help="query fan-out threads for a sharded index")
    idx.add_argument("--block-size", type=int, default=None,
                     help="postings per block of the block-compressed "
                          "list format (default 128; 0 writes the "
                          "legacy plain format)")
    idx.add_argument("-o", "--output", required=True)
    idx.set_defaults(func=_cmd_index)

    query = sub.add_parser("query", help="run one containment query")
    query.add_argument("index")
    query.add_argument("query", nargs="?", default=None,
                       help="nested set text, e.g. '{a, {b}}' "
                            "(omit when using --queries-file)")
    query.add_argument("--queries-file", default=None,
                       help="evaluate a batch: one nested set per line "
                            "('-' reads stdin); runs through "
                            "query_batch so subquery work is shared")
    query.add_argument("--storage", choices=("diskhash", "btree"),
                       default="diskhash")
    query.add_argument("--algorithm", choices=ALGORITHMS, default="bottomup")
    query.add_argument("--semantics", choices=SEMANTICS, default="hom")
    query.add_argument("--join", choices=JOINS, default="subset")
    query.add_argument("--epsilon", type=int, default=1)
    query.add_argument("--mode", choices=MODES, default="root")
    query.add_argument("--planner", choices=PLANNER_STRATEGIES,
                       default=None,
                       help="sibling-order strategy (topdown only)")
    query.add_argument("--show-plan", action="store_true",
                       help="print the compiled execution plan to stderr")
    query.add_argument("--cache", choices=("none", "frequency", "lru"),
                       default="none")
    query.add_argument("--workers", type=int, default=1,
                       help="shard fan-out threads (sharded indexes)")
    query.set_defaults(func=_cmd_query)

    exp = sub.add_parser("explain",
                         help="trace a query's evaluation "
                              "(any algorithm)")
    exp.add_argument("index")
    exp.add_argument("query")
    exp.add_argument("--storage", choices=("diskhash", "btree"),
                     default="diskhash")
    exp.add_argument("--algorithm", choices=ALGORITHMS, default="topdown")
    exp.add_argument("--semantics", choices=SEMANTICS, default="hom")
    exp.add_argument("--join", choices=JOINS, default="subset")
    exp.add_argument("--epsilon", type=int, default=1)
    exp.add_argument("--mode", choices=MODES, default="root")
    exp.add_argument("--planner", choices=PLANNER_STRATEGIES,
                     default=None,
                     help="sibling-order strategy (topdown only)")
    exp.add_argument("--cache", default="none")
    exp.add_argument("--workers", type=int, default=1,
                     help="shard fan-out threads (sharded indexes)")
    exp.set_defaults(func=_cmd_explain)

    sim = sub.add_parser("similar",
                         help="top-k nested-Jaccard similarity search")
    sim.add_argument("index")
    sim.add_argument("query")
    sim.add_argument("--storage", choices=("diskhash", "btree"),
                     default="diskhash")
    sim.add_argument("-k", type=int, default=10)
    sim.add_argument("--candidates", type=int, default=2000)
    sim.add_argument("--cache", default="none")
    sim.set_defaults(func=_cmd_similar)

    chk = sub.add_parser("check", help="audit an index's integrity")
    chk.add_argument("index")
    chk.add_argument("--storage", choices=("diskhash", "btree"),
                     default="diskhash")
    chk.add_argument("--max-atoms", type=int, default=None,
                     help="audit only the N hottest atoms' lists")
    chk.add_argument("--cache", default="none")
    chk.set_defaults(func=_cmd_check)

    ing = sub.add_parser(
        "ingest",
        help="stream records into a live index as batched WAL commit "
             "groups")
    ing.add_argument("index", help="path of the index to ingest into")
    ing.add_argument("source",
                     help="records file; '-' streams from stdin")
    ing.add_argument("--storage", choices=("diskhash", "btree"),
                     default="diskhash")
    ing.add_argument("--format", choices=("jsonl", "nsets"),
                     default="nsets",
                     help="jsonl: one JSON document per line; nsets: "
                          "key<TAB>nested-set lines (default)")
    ing.add_argument("--follow", action="store_true",
                     help="streaming mode: keep reading as lines "
                          "arrive (pipe / FIFO) and report progress; "
                          "queries against a server on the same store "
                          "keep running off pinned snapshots")
    ing.add_argument("--batch-size", type=int, default=64,
                     help="records per WAL commit group")
    ing.add_argument("--flush-interval", type=float, default=0.25,
                     help="seconds a partial batch may wait before "
                          "committing")
    ing.add_argument("--skip-invalid", action="store_true",
                     help="skip malformed jsonl lines instead of "
                          "failing")
    ing.add_argument("--cache", default="none")
    ing.set_defaults(func=_cmd_ingest)

    info = sub.add_parser("info",
                          help="inspect an index (or a running server)")
    info.add_argument("index", nargs="?", default=None)
    info.add_argument("--server", default=None, metavar="HOST:PORT",
                      help="show live counters of a running "
                           "'nestcontain serve' instead of an on-disk "
                           "index")
    info.add_argument("--storage", choices=("diskhash", "btree"),
                      default="diskhash")
    info.add_argument("--cache", default="none")
    info.add_argument("--top", type=int, default=10)
    info.set_defaults(func=_cmd_info)

    serve = sub.add_parser(
        "serve", help="serve an index over TCP (binary or JSON frames, "
                      "optional HTTP gateway)")
    serve.add_argument("index")
    serve.add_argument("--storage", choices=("diskhash", "btree"),
                       default="diskhash")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7317,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=4,
                       help="engine worker threads (also sized to the "
                            "shard fan-out pool of a sharded index)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="admission-control bound; requests beyond "
                            "it are rejected as 'overloaded'")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="micro-batch window for coalescing "
                            "concurrent queries (0 disables)")
    serve.add_argument("--http-port", type=int, default=None,
                       help="also serve a stdlib HTTP/JSON gateway on "
                            "this port (0 picks a free one)")
    serve.add_argument("--cache", choices=("none", "frequency", "lru"),
                       default="frequency")
    serve.add_argument("--replicate-from", default=None,
                       metavar="HOST:PORT",
                       help="serve as a read-only replica: bootstrap a "
                            "snapshot from this primary into INDEX, "
                            "then tail its log")
    serve.add_argument("--replica-id", default=None,
                       help="stable follower id on the primary "
                            "(default: host-pid)")
    serve.set_defaults(func=_cmd_serve)

    promote = sub.add_parser(
        "promote", help="promote a running replica to primary "
                        "(replays to its log end, bumps the fencing "
                        "term, starts accepting writes)")
    promote.add_argument("server", metavar="HOST:PORT",
                         help="address of the replica to promote")
    promote.set_defaults(func=_cmd_promote)

    join = sub.add_parser(
        "join", help="full containment join: queries file x index")
    join.add_argument("index")
    join.add_argument("queries", help="collection file of query sets")
    join.add_argument("--storage", choices=("diskhash", "btree"),
                      default="diskhash")
    join.add_argument("--strategy", choices=JOIN_STRATEGIES,
                      default="adaptive")
    join.add_argument("--algorithm", choices=ALGORITHMS,
                      default="bottomup",
                      help="per-query plan algorithm (per-query strategy)")
    join.add_argument("--use-bloom", action="store_true",
                      help="Bloom-prefilter record scans (naive only)")
    join.add_argument("--semantics", choices=SEMANTICS, default="hom")
    join.add_argument("--join", choices=JOINS, default="subset")
    join.add_argument("--epsilon", type=int, default=1)
    join.add_argument("--mode", choices=MODES, default="root")
    join.add_argument("--cache", default="frequency")
    join.add_argument("--workers", type=int, default=1,
                      help="fan-out pool size for a sharded index")
    join.add_argument("--explain", action="store_true",
                      help="print the join-level execution summary "
                           "(strategy, dispatch evidence, prefix "
                           "counters) instead of only the pair count")
    join.set_defaults(func=_cmd_join)

    rep = sub.add_parser("report",
                         help="render saved benchmark results as charts")
    rep.add_argument("--dir", default="bench_results")
    rep.add_argument("--experiment", default=None,
                     help="one experiment name (e.g. fig6e_twitter)")
    rep.add_argument("--log", action="store_true",
                     help="log-scale the y axis")
    rep.set_defaults(func=_cmd_report)

    bench = sub.add_parser("bench", help="run a figure-style experiment")
    bench.add_argument("--dataset", choices=DATASETS, default="uniform-wide")
    bench.add_argument("--sizes", default="1000,2000,4000")
    bench.add_argument("--queries", type=int, default=100)
    bench.add_argument("--repeats", type=int, default=5)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--algorithms", default="topdown,bottomup")
    bench.add_argument("--shards", type=int, default=1,
                       help="build the benchmark indexes with N shards")
    bench.add_argument("--workers", type=int, default=1,
                       help="shard fan-out threads during the timed runs")
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``nestcontain`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
