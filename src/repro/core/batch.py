"""Batch query evaluation with shared-subquery memoization.

The paper's future-work item (6) asks for "a deeper study of nested set
caching mechanisms ... e.g., caching with respect to an evolving query
workload".  The frequency/LRU list caches (Section 3.3) operate at the
*posting-list* level; this module caches one level higher: the **match
set of a whole subquery**.  Nested sets are hashable values, so when a
workload's queries share subtrees (common when queries are sampled from
the collection, or generated from templates), every shared subtree is
evaluated once per batch.

:func:`memoized_match_nodes` is the core: a bottom-up evaluation over
the *distinct* subtrees of a query, reusing any match set already in
the memo.  It is exact: results equal the plain algorithms' results
(tested property).  The execution layer taps into it whenever an
:class:`~repro.core.exec.context.ExecutionContext` carries a shared
memo dict (``NestedSetIndex.query_batch``, the batched join strategy);
:class:`BatchEvaluator` remains the standalone convenience wrapper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .structural import evaluate_node


def memoized_match_nodes(query: NestedSet, ifile: InvertedFile,
                         spec: QuerySpec,
                         memo: dict[NestedSet, frozenset[int]],
                         counters: object | None = None) -> frozenset[int]:
    """Node ids at which ``query`` embeds (memoized bottom-up).

    ``memo`` maps subquery values to match sets and may be shared across
    any number of queries evaluated against the same (unmutated) index.
    ``counters``, if given, must expose ``subqueries_evaluated`` and
    ``subqueries_reused`` int attributes (e.g.
    :class:`~repro.core.exec.context.ExecCounters`).
    """
    cached = memo.get(query)
    if cached is not None:
        if counters is not None:
            counters.subqueries_reused += 1
        return cached
    # Post-order over the distinct subtrees: children first.
    child_sets = [set(memoized_match_nodes(child, ifile, spec, memo,
                                           counters))
                  for child in sorted(query.children,
                                      key=lambda c: c.to_text())]
    result = frozenset(evaluate_node(query, child_sets, ifile, spec))
    memo[query] = result
    if counters is not None:
        counters.subqueries_evaluated += 1
    return result


class BatchEvaluator:
    """Evaluates a workload against one index, memoizing subquery results."""

    def __init__(self, ifile: InvertedFile,
                 spec: QuerySpec = QuerySpec()) -> None:
        self._ifile = ifile
        self.spec = spec
        self._memo: dict[NestedSet, frozenset[int]] = {}
        self.subqueries_evaluated = 0
        self.subqueries_reused = 0

    def match_nodes(self, query: NestedSet) -> frozenset[int]:
        """Node ids at which ``query`` embeds (memoized bottom-up)."""
        return memoized_match_nodes(query, self._ifile, self.spec,
                                    self._memo, counters=self)

    def query(self, query: NestedSet) -> list[str]:
        """Record keys matching one query (under the batch's spec)."""
        return self._ifile.heads_to_keys(self.match_nodes(query),
                                         mode=self.spec.mode)

    def query_all(self, queries: Iterable[NestedSet]) -> list[list[str]]:
        """Evaluate the whole workload, sharing subquery results."""
        return [self.query(query) for query in queries]

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    def clear(self) -> None:
        """Drop the memo (e.g. after index updates)."""
        self._memo.clear()


def batch_query(ifile: InvertedFile, queries: Sequence[NestedSet],
                spec: QuerySpec = QuerySpec()) -> list[list[str]]:
    """One-shot convenience wrapper around :class:`BatchEvaluator`."""
    return BatchEvaluator(ifile, spec).query_all(queries)
