"""Batch query evaluation with shared-subquery memoization.

The paper's future-work item (6) asks for "a deeper study of nested set
caching mechanisms ... e.g., caching with respect to an evolving query
workload".  The frequency/LRU list caches (Section 3.3) operate at the
*posting-list* level; this module caches one level higher: the **match
set of a whole subquery**.  Nested sets are hashable values, so when a
workload's queries share subtrees (common when queries are sampled from
the collection, or generated from templates), every shared subtree is
evaluated once per batch.

:class:`BatchEvaluator` is a bottom-up evaluation with a cross-query
memo table keyed by the subquery value.  It is exact: results equal the
plain algorithms' results (tested property).  It helps when the workload
has structural overlap and is a small constant overhead when it does not.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .candidates import node_candidates
from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .structural import filter_candidates


class BatchEvaluator:
    """Evaluates a workload against one index, memoizing subquery results."""

    def __init__(self, ifile: InvertedFile,
                 spec: QuerySpec = QuerySpec()) -> None:
        self._ifile = ifile
        self.spec = spec
        self._memo: dict[NestedSet, frozenset[int]] = {}
        self.subqueries_evaluated = 0
        self.subqueries_reused = 0

    def match_nodes(self, query: NestedSet) -> frozenset[int]:
        """Node ids at which ``query`` embeds (memoized bottom-up)."""
        cached = self._memo.get(query)
        if cached is not None:
            self.subqueries_reused += 1
            return cached
        # Post-order over the distinct subtrees: children first.
        child_sets = [set(self.match_nodes(child))
                      for child in sorted(query.children,
                                          key=lambda c: c.to_text())]
        if self.spec.join != "superset" and \
                any(not hits for hits in child_sets):
            result: frozenset[int] = frozenset()
        else:
            cand = node_candidates(query, self._ifile, self.spec)
            result = frozenset(
                filter_candidates(cand, child_sets, self._ifile,
                                  self.spec).heads())
        self._memo[query] = result
        self.subqueries_evaluated += 1
        return result

    def query(self, query: NestedSet) -> list[str]:
        """Record keys matching one query (under the batch's spec)."""
        return self._ifile.heads_to_keys(self.match_nodes(query),
                                         mode=self.spec.mode)

    def query_all(self, queries: Iterable[NestedSet]) -> list[list[str]]:
        """Evaluate the whole workload, sharing subquery results."""
        return [self.query(query) for query in queries]

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    def clear(self) -> None:
        """Drop the memo (e.g. after index updates)."""
        self._memo.clear()


def batch_query(ifile: InvertedFile, queries: Sequence[NestedSet],
                spec: QuerySpec = QuerySpec()) -> list[list[str]]:
    """One-shot convenience wrapper around :class:`BatchEvaluator`."""
    return BatchEvaluator(ifile, spec).query_all(queries)
