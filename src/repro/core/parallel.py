"""Concurrency primitives: shard fan-out executor and a reader/writer lock.

The sharded index (:mod:`repro.core.shard`) evaluates every compiled
plan against each shard independently; this module owns *how* that
fan-out runs.  :class:`ShardExecutor` wraps a
:class:`~concurrent.futures.ThreadPoolExecutor` with

* a sequential fallback at ``workers=1`` (no pool, no thread hops --
  the default, and the right choice on single-core hosts or under a
  busy GIL),
* lazy pool construction (an executor that never fans out never starts
  threads), and
* order-preserving :meth:`map` semantics with exception propagation,
  so callers can zip results back to shards positionally.

:class:`RWLock` is the reader/writer coordination used when the storage
backend cannot provide version snapshots: any number of concurrent
readers, or exactly one writer, with writer preference so a stream of
queries cannot starve an ``insert``/``delete``.  On the MVCC backends
(pager-backed b+tree / disk hash, and the in-memory store) the index
facades skip this lock entirely -- readers pin a version and writers
commit freely -- so RWLock survives as the fallback for plain
non-versioned stores and for its own fairness tests.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


class RWLock:
    """Many concurrent readers or one exclusive writer.

    Writer-preferring: once a writer is waiting, new readers queue
    behind it, so mutations cannot be starved by a steady query stream.
    Neither side is reentrant -- public engine entry points take the
    lock exactly once and internal helpers stay lock-free (the engines'
    documented locking discipline).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class ShardExecutor:
    """Runs one callable per shard, in parallel when ``workers > 1``."""

    def __init__(self, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def map(self, fn: Callable[[Item], Result],
            items: Iterable[Item]) -> list[Result]:
        """Apply ``fn`` to every item; results in item order.

        The first exception raised by any task propagates to the caller
        (remaining tasks still run to completion under the pool's
        semantics; per-shard work never partially mutates the index).
        """
        materialized: Sequence[Item] = list(items)
        if self.max_workers == 1 or len(materialized) <= 1:
            return [fn(item) for item in materialized]
        return list(self._ensure_pool().map(fn, materialized))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-shard")
        return self._pool

    def shutdown(self) -> None:
        """Stop the pool threads (idempotent; the executor stays usable
        sequentially afterwards only via a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
