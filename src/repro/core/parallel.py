"""Shard fan-out executor: threads when asked, plain loop otherwise.

The sharded index (:mod:`repro.core.shard`) evaluates every compiled
plan against each shard independently; this module owns *how* that
fan-out runs.  :class:`ShardExecutor` wraps a
:class:`~concurrent.futures.ThreadPoolExecutor` with

* a sequential fallback at ``workers=1`` (no pool, no thread hops --
  the default, and the right choice on single-core hosts or under a
  busy GIL),
* lazy pool construction (an executor that never fans out never starts
  threads), and
* order-preserving :meth:`map` semantics with exception propagation,
  so callers can zip results back to shards positionally.

Thread-safety contract: one in-flight task per shard.  A shard's engine
state (list cache, metadata cache, counters, result cache) is mutated
without locks, which is safe here because the fan-out assigns each
shard to exactly one task per operation and operations on the sharded
index are not themselves issued concurrently.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


class ShardExecutor:
    """Runs one callable per shard, in parallel when ``workers > 1``."""

    def __init__(self, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def map(self, fn: Callable[[Item], Result],
            items: Iterable[Item]) -> list[Result]:
        """Apply ``fn`` to every item; results in item order.

        The first exception raised by any task propagates to the caller
        (remaining tasks still run to completion under the pool's
        semantics; per-shard work never partially mutates the index).
        """
        materialized: Sequence[Item] = list(items)
        if self.max_workers == 1 or len(materialized) <= 1:
            return [fn(item) for item in materialized]
        return list(self._ensure_pool().map(fn, materialized))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-shard")
        return self._pool

    def shutdown(self) -> None:
        """Stop the pool threads (idempotent; the executor stays usable
        sequentially afterwards only via a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
