"""The top-down containment algorithm (Section 3.1, Algorithms 1-2).

Two variants are provided.

**Strict variant** (:func:`topdown_match_nodes`, the default everywhere).
Starts at the query root, generates candidates for each node, and -- the
top-down advantage -- restricts every child's candidate list to the
*frontier* reachable from the surviving parents before recurring.  After
each child returns, parents without an edge into the child's match set are
dropped, so later siblings see an ever-smaller frontier.  The survivors of
a node are exactly the data nodes at which its subtree embeds, which makes
the variant a sound and complete decision procedure for homomorphic
containment.

**Paper-literal variant** (:func:`topdown_paper_match_nodes`).  A faithful
transcription of Algorithms 1-2: navigation state is the set of paths
``(head, frontier)`` produced by the ``▷``-join, and the per-level result
is the intersection of surviving *root* candidates across sibling
subqueries.  Because the paths remember only the original head -- not which
intermediate node matched -- two sibling subqueries may be satisfied
through *different* children of the same head, so on branching queries the
literal algorithm computes a slightly weaker relation ("path-consistent
containment") and can return supersets of the homomorphic result.  On the
paper's benchmark workloads (queries sampled from the collection, negatives
distorted with an alien leaf) the two relations coincide; DESIGN.md
discusses the discrepancy.  The literal variant supports ``hom``/``homeo``
semantics with the ``subset``/``equality``/``overlap`` joins.

Both variants run in ``O(|q| · |S|)`` worst case (Section 3.1, Analysis).
Both accept an optional observer (:mod:`repro.core.observe`) that watches
every node's candidate generation and survivors -- this is how EXPLAIN
traces ride along the real evaluation instead of re-implementing it.
"""

from __future__ import annotations

from bisect import bisect_right

from .candidates import node_candidates
from .invfile import InvertedFile
from .matchspec import QuerySpec, validate_paper_variant
from .model import NestedSet
from .observe import NULL_OBSERVER, PlanObserver
from .postings import PathList, PostingList, nav_join
from .structural import filter_candidates, frontier_of, prefilter_survivors


# -- strict variant ----------------------------------------------------------


def topdown_match_nodes(query: NestedSet, ifile: InvertedFile,
                        spec: QuerySpec = QuerySpec(), *,
                        child_order=None,
                        observer: PlanObserver | None = None) -> set[int]:
    """Return the set of data node ids at which ``query`` embeds.

    ``child_order`` is an optional hook ``(children, spec) -> ordered
    list`` (see :mod:`repro.core.planner`): sibling subqueries are
    evaluated in the returned order, which controls how fast the
    surviving-parent frontier shrinks.
    """
    obs = observer if observer is not None else NULL_OBSERVER
    cand = node_candidates(query, ifile, spec)
    return _match(query, cand, ifile, spec, child_order, obs)


def topdown_query(query: NestedSet, ifile: InvertedFile,
                  spec: QuerySpec = QuerySpec()) -> list[str]:
    """Evaluate ``query ⋉ S`` and return the matching record keys."""
    heads = topdown_match_nodes(query, ifile, spec)
    return ifile.heads_to_keys(heads, mode=spec.mode)


def _match(qnode: NestedSet, cand: PostingList, ifile: InvertedFile,
           spec: QuerySpec, child_order, obs: PlanObserver,
           n_unrestricted: int | None = None) -> set[int]:
    """Survivors of ``cand`` whose subtrees cover ``qnode``'s children.

    ``n_unrestricted`` is the candidate count before the parent-frontier
    restriction (``None`` at the root, where there is no frontier).
    """
    obs.enter_node(qnode)
    if n_unrestricted is None:
        obs.record_candidates(len(cand))
    else:
        obs.record_candidates(n_unrestricted, restricted=len(cand))
    heads = _match_children(qnode, cand, ifile, spec, child_order, obs)
    obs.exit_node(len(heads))
    return heads


def _match_children(qnode: NestedSet, cand: PostingList,
                    ifile: InvertedFile, spec: QuerySpec, child_order,
                    obs: PlanObserver) -> set[int]:
    if not cand:
        return set()
    if child_order is not None:
        children = child_order(list(qnode.children), spec)
    else:
        children = sorted(qnode.children, key=lambda c: c.to_text())
    if not children:
        return filter_candidates(cand, [], ifile, spec).heads()
    if spec.join == "superset":
        # The superset condition quantifies over *data* children, so the
        # per-child sequential pruning below would be unsound; recur on
        # every query child first, then apply the coverage filter.
        frontier = frontier_of(cand, ifile, spec)
        child_sets = []
        for child in children:
            full = node_candidates(child, ifile, spec)
            child_cand = frontier.restrict(full)
            child_sets.append(_match(child, child_cand, ifile, spec,
                                     child_order, obs,
                                     n_unrestricted=len(full)))
        return filter_candidates(cand, child_sets, ifile, spec).heads()
    if spec.join == "equality":
        want = len(children)
        cand = PostingList([(p, c) for p, c in cand if len(c) == want])
    survivors = cand
    child_sets: list[set[int]] = []
    for child in children:
        if not survivors:
            return set()
        frontier = frontier_of(survivors, ifile, spec)
        full = node_candidates(child, ifile, spec)
        child_cand = frontier.restrict(full)
        ok = _match(child, child_cand, ifile, spec, child_order, obs,
                    n_unrestricted=len(full))
        child_sets.append(ok)
        survivors = prefilter_survivors(survivors, ok, ifile, spec)
    if spec.semantics == "iso" and survivors:
        # The sequential prefilter is only necessary for iso; finish with
        # the injective matching over all children at once.
        survivors = filter_candidates(survivors, child_sets, ifile, spec)
    return survivors.heads()


# -- paper-literal variant ------------------------------------------------------


def topdown_paper_match_nodes(query: NestedSet, ifile: InvertedFile,
                              spec: QuerySpec = QuerySpec(), *,
                              observer: PlanObserver | None = None
                              ) -> set[int]:
    """Algorithms 1-2 verbatim; see the module docstring for semantics."""
    validate_paper_variant(spec)
    obs = observer if observer is not None else NULL_OBSERVER
    obs.enter_node(query)
    cand = node_candidates(query, ifile, spec)
    obs.record_candidates(len(cand))
    siblings = sorted(query.children, key=lambda c: c.to_text())
    if spec.semantics == "homeo":
        paths = [(p, p, ifile.max_desc(p)) for p, _ in cand]
        result = _interior_desc(siblings, paths, ifile, spec, obs)
    else:
        result = _interior(siblings, PathList.from_postings(cand),
                           ifile, spec, obs)
    obs.exit_node(len(result))
    return result


def topdown_paper_query(query: NestedSet, ifile: InvertedFile,
                        spec: QuerySpec = QuerySpec()) -> list[str]:
    """Paper-literal evaluation returning record keys."""
    heads = topdown_paper_match_nodes(query, ifile, spec)
    return ifile.heads_to_keys(heads, mode=spec.mode)


def _interior(siblings: list[NestedSet], paths: PathList,
              ifile: InvertedFile, spec: QuerySpec,
              obs: PlanObserver) -> set[int]:
    """Top-down-interior (Algorithm 2), child axis."""
    if not siblings:                       # lines 1-2
        return paths.heads()
    if not paths:                          # lines 3-4
        return set()
    roots = paths.heads()                  # line 6
    for node in siblings:                  # lines 7-12
        obs.enter_node(node)
        cand = node_candidates(node, ifile, spec)          # line 8
        extended = nav_join(paths, cand)                   # line 9
        obs.record_candidates(len(cand), restricted=len(extended))
        deeper = _interior(sorted(node.children, key=lambda c: c.to_text()),
                           extended, ifile, spec, obs)      # line 10
        obs.exit_node(len(deeper))
        roots &= deeper                                    # line 11
    return roots                           # line 13


def _interior_desc(siblings: list[NestedSet],
                   paths: list[tuple[int, int, int]],
                   ifile: InvertedFile, spec: QuerySpec,
                   obs: PlanObserver) -> set[int]:
    """Algorithm 2 with the ancestor-descendant join of Section 4.2.

    Path entries are ``(head, matched node, matched node's max_desc)``; the
    ``▷``-join condition becomes the constant-time interval test.
    """
    if not siblings:
        return {head for head, _node, _end in paths}
    if not paths:
        return set()
    roots = {head for head, _node, _end in paths}
    for node in siblings:
        obs.enter_node(node)
        cand = node_candidates(node, ifile, spec)
        cand_entries = cand.entries
        cand_ids = [p for p, _ in cand_entries]
        extended: list[tuple[int, int, int]] = []
        seen: set[tuple[int, int]] = set()
        for head, _matched, end in paths:
            lo = bisect_right(cand_ids, _matched)
            hi = bisect_right(cand_ids, end, lo)
            for index in range(lo, hi):
                key = (head, cand_ids[index])
                if key not in seen:
                    seen.add(key)
                    extended.append((head, cand_ids[index],
                                     ifile.max_desc(cand_ids[index])))
        obs.record_candidates(len(cand), restricted=len(extended))
        deeper = _interior_desc(
            sorted(node.children, key=lambda c: c.to_text()),
            extended, ifile, spec, obs)
        obs.exit_node(len(deeper))
        roots &= deeper
    return roots
