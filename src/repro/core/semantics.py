"""Reference containment checkers on nested set trees (Section 2, Figure 2).

These functions decide containment directly on a pair of
:class:`~repro.core.model.NestedSet` trees, with no index.  They serve two
roles in the reproduction:

1. the **naive baseline** of Section 3 remark (1) -- applying an
   off-the-shelf subtree embedding test to every pair ``(q, s)``, and
2. the **test oracles** against which the inverted-file algorithms are
   cross-validated.

Three embedding semantics from the paper are implemented.  In all of them
the query root maps to the data root, and a leaf child labeled ``a`` of a
query node must map to a leaf child labeled ``a`` of the matched data node:

* ``hom``   -- homomorphic: internal child edges map to child edges; two
  query siblings may map to the same data node.
* ``iso``   -- isomorphic: as ``hom`` but the mapping of internal nodes is
  injective.
* ``homeo`` -- homeomorphic: internal child edges may map to
  ancestor-descendant paths (leaf edges stay parent-child; footnote 4).

The join-type predicates of Section 4.1 (equality, superset, ε-overlap) are
provided here as well.
"""

from __future__ import annotations

from .model import NestedSet


def hom_contains(data: NestedSet, query: NestedSet) -> bool:
    """True when ``query ⊆_hom data`` (root-to-root homomorphic embedding)."""
    memo: dict[tuple[int, int], bool] = {}

    def match(qnode: NestedSet, dnode: NestedSet) -> bool:
        key = (id(qnode), id(dnode))
        cached = memo.get(key)
        if cached is not None:
            return cached
        ok = qnode.atoms <= dnode.atoms and all(
            any(match(qchild, dchild) for dchild in dnode.children)
            for qchild in qnode.children)
        memo[key] = ok
        return ok

    return match(query, data)


def iso_contains(data: NestedSet, query: NestedSet) -> bool:
    """True when ``query ⊆_iso data`` (injective homomorphic embedding)."""
    memo: dict[tuple[int, int], bool] = {}

    def match(qnode: NestedSet, dnode: NestedSet) -> bool:
        key = (id(qnode), id(dnode))
        cached = memo.get(key)
        if cached is not None:
            return cached
        if not qnode.atoms <= dnode.atoms:
            memo[key] = False
            return False
        ok = _injective_assignment(
            list(qnode.children), list(dnode.children), match)
        memo[key] = ok
        return ok

    return match(query, data)


def homeo_contains(data: NestedSet, query: NestedSet) -> bool:
    """True when ``query ⊆_homeo data`` (descendant-relaxed embedding)."""
    memo: dict[tuple[int, int], bool] = {}

    def descendants(dnode: NestedSet):
        stack = list(dnode.children)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def match(qnode: NestedSet, dnode: NestedSet) -> bool:
        key = (id(qnode), id(dnode))
        cached = memo.get(key)
        if cached is not None:
            return cached
        ok = qnode.atoms <= dnode.atoms and all(
            any(match(qchild, dnode_desc) for dnode_desc in descendants(dnode))
            for qchild in qnode.children)
        memo[key] = ok
        return ok

    return match(query, data)


def _injective_assignment(left: list[NestedSet], right: list[NestedSet],
                          edge) -> bool:
    """Maximum bipartite matching: can every ``left`` node get its own
    ``right`` partner under the ``edge`` predicate?  Classic augmenting-path
    search; sizes here are set cardinalities, so this stays small."""
    match_right: dict[int, NestedSet] = {}

    def try_assign(unode: NestedSet, visited: set[int]) -> bool:
        for vnode in right:
            vkey = id(vnode)
            if vkey in visited or not edge(unode, vnode):
                continue
            visited.add(vkey)
            holder = match_right.get(vkey)
            if holder is None or try_assign(holder, visited):
                match_right[vkey] = unode
                return True
        return False

    for unode in left:
        if not try_assign(unode, set()):
            return False
    return True


# -- join-type predicates (Section 4.1) -------------------------------------


def equality_matches(data: NestedSet, query: NestedSet) -> bool:
    """Set equality join predicate: nested sets are extensional, so equality
    is exactly structural equality of the trees."""
    return data == query


def superset_matches(data: NestedSet, query: NestedSet) -> bool:
    """Superset join predicate ``query ⊇ data``: the data set must embed
    into the query, i.e. ``data ⊆_hom query``."""
    return hom_contains(query, data)


def overlap_matches(data: NestedSet, query: NestedSet, epsilon: int = 1) -> bool:
    """ε-overlap join predicate: an embedding of the query's internal
    structure exists in which every matched pair of nodes shares at least
    ``epsilon`` leaf values."""
    if epsilon < 1:
        raise ValueError("epsilon must be >= 1")
    memo: dict[tuple[int, int], bool] = {}

    def match(qnode: NestedSet, dnode: NestedSet) -> bool:
        key = (id(qnode), id(dnode))
        cached = memo.get(key)
        if cached is not None:
            return cached
        ok = len(qnode.atoms & dnode.atoms) >= epsilon and all(
            any(match(qchild, dchild) for dchild in dnode.children)
            for qchild in qnode.children)
        memo[key] = ok
        return ok

    return match(query, data)


def contains(data: NestedSet, query: NestedSet, semantics: str = "hom") -> bool:
    """Dispatch on semantics name; used by the public API and tests."""
    if semantics == "hom":
        return hom_contains(data, query)
    if semantics == "iso":
        return iso_contains(data, query)
    if semantics == "homeo":
        return homeo_contains(data, query)
    raise ValueError(f"unknown semantics {semantics!r}; "
                     "expected 'hom', 'iso' or 'homeo'")


def contains_anywhere(data: NestedSet, query: NestedSet,
                      semantics: str = "hom") -> bool:
    """True when the query embeds at *some* internal node of ``data``
    (the descendant-or-self match mode exposed by the index algorithms)."""
    return any(contains(node, query, semantics) for node in data.iter_sets())
