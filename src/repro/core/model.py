"""The nested set data model (Section 2 of the paper).

A *nested set* is a finite set whose elements are atomic values (strings or
integers) or, recursively, nested sets.  Equivalently it is an unordered
node-labeled rooted tree in which internal nodes denote sets and leaves
denote atoms (Figure 1 of the paper).  No restriction is placed on
cardinality or nesting depth, and there is no ordering among elements.

:class:`NestedSet` is an immutable, hashable value type, so nested sets can
themselves be members of Python sets and dict keys, and structural equality
is exactly set equality of the modeled sets.

A small text syntax is provided::

    {London, UK, {UK, {A, B, C, car, motorbike}}, {UK, {A, motorbike}}}

Atoms are bare tokens (letters, digits, ``_``, ``-``, ``.``, ``:``, ``=``,
``/``, ``@``, ``#``), quoted strings (``"has, comma"``), or integers (bare
digit tokens parse as ``int``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

#: Atomic values: strings or integers (the paper's "universe of atomic
#: objects (e.g., strings or integers)").
Atom = Union[str, int]

_BARE_EXTRA = set("_-.:=/@#+")


class NestedSetError(ValueError):
    """Raised for malformed nested set construction or parse input."""


def _is_atom(obj: object) -> bool:
    return isinstance(obj, (str, int)) and not isinstance(obj, bool)


class NestedSet:
    """An immutable nested set.

    ``atoms`` holds the atomic members, ``children`` the set-valued members.
    Duplicates collapse by construction, matching set semantics.
    """

    __slots__ = ("_atoms", "_children", "_hash")

    def __init__(self, atoms: Iterable[Atom] = (),
                 children: Iterable["NestedSet"] = ()) -> None:
        atom_set = frozenset(atoms)
        for atom in atom_set:
            if not _is_atom(atom):
                raise NestedSetError(
                    f"atoms must be str or int, got {type(atom).__name__}")
        child_set = frozenset(children)
        for child in child_set:
            if not isinstance(child, NestedSet):
                raise NestedSetError(
                    f"children must be NestedSet, got {type(child).__name__}")
        self._atoms = atom_set
        self._children = child_set
        self._hash = hash((self._atoms, self._children))

    @classmethod
    def _from_trusted(cls, atom_set: frozenset,
                      child_set: frozenset) -> "NestedSet":
        """Construction fast path skipping membership validation.

        Only for decoders whose inputs are already frozensets of
        checked types (the binary wire codec tags every atom) -- the
        per-member isinstance sweep in ``__init__`` is measurable on
        the server's request hot path.
        """
        self = object.__new__(cls)
        self._atoms = atom_set
        self._children = child_set
        self._hash = hash((atom_set, child_set))
        return self

    # -- accessors -----------------------------------------------------------

    @property
    def atoms(self) -> frozenset:
        """The atomic members (leaf children in tree form)."""
        return self._atoms

    @property
    def children(self) -> frozenset:
        """The set-valued members (internal children in tree form)."""
        return self._children

    @property
    def is_empty(self) -> bool:
        """True for the empty set ``{}``."""
        return not self._atoms and not self._children

    @property
    def cardinality(self) -> int:
        """Number of direct members (atoms plus sets)."""
        return len(self._atoms) + len(self._children)

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for a flat set, 1 + max child depth otherwise."""
        if not self._children:
            return 1
        return 1 + max(child.depth for child in self._children)

    @property
    def internal_count(self) -> int:
        """Number of internal nodes (sets) in the tree encoding."""
        return 1 + sum(child.internal_count for child in self._children)

    @property
    def leaf_count(self) -> int:
        """Total number of leaves (atom occurrences) in the tree encoding."""
        return len(self._atoms) + sum(c.leaf_count for c in self._children)

    @property
    def size(self) -> int:
        """Total node count |q| = internal nodes + leaves (analysis of §3)."""
        return self.internal_count + self.leaf_count

    def iter_sets(self) -> Iterator["NestedSet"]:
        """Preorder iteration over this set and every nested set inside it."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node._children)

    def all_atoms(self) -> frozenset:
        """Every atom occurring at any nesting level."""
        out: set = set()
        for node in self.iter_sets():
            out |= node._atoms
        return frozenset(out)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_obj(cls, obj: object) -> "NestedSet":
        """Build from nested Python containers.

        ``set``/``frozenset``/``list``/``tuple`` become nested sets; strings
        and ints become atoms.  Lists and tuples are treated as sets (order
        and duplicates are discarded), matching the paper's data model.
        """
        if isinstance(obj, NestedSet):
            return obj
        if not isinstance(obj, (set, frozenset, list, tuple)):
            raise NestedSetError(
                f"cannot build a nested set from {type(obj).__name__}")
        atoms: list[Atom] = []
        children: list[NestedSet] = []
        for member in obj:
            if _is_atom(member):
                atoms.append(member)
            else:
                children.append(cls.from_obj(member))
        return cls(atoms, children)

    def to_obj(self) -> frozenset:
        """Inverse of :meth:`from_obj`: nested frozensets and atoms."""
        return frozenset(self._atoms) | frozenset(
            child.to_obj() for child in self._children)

    # -- updates (return new sets; the type is immutable) -------------------------

    def with_atom(self, atom: Atom) -> "NestedSet":
        """Return a copy with ``atom`` added as a direct member."""
        return NestedSet(self._atoms | {atom}, self._children)

    def with_child(self, child: "NestedSet") -> "NestedSet":
        """Return a copy with ``child`` added as a set-valued member."""
        return NestedSet(self._atoms, self._children | {child})

    def without_atom(self, atom: Atom) -> "NestedSet":
        """Return a copy with ``atom`` removed (no error when absent)."""
        return NestedSet(self._atoms - {atom}, self._children)

    # -- text syntax ------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "NestedSet":
        """Parse the ``{a, b, {c}}`` text syntax."""
        parser = _Parser(text)
        result = parser.parse_set()
        parser.skip_ws()
        if not parser.at_end():
            raise NestedSetError(
                f"trailing input at position {parser.pos}: "
                f"{text[parser.pos:parser.pos + 20]!r}")
        return result

    def to_text(self) -> str:
        """Canonical text form (members sorted, deterministic)."""
        parts = [_atom_text(atom) for atom in sorted(self._atoms, key=_sort_key)]
        parts.extend(sorted(child.to_text() for child in self._children))
        return "{" + ", ".join(parts) + "}"

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedSet):
            return NotImplemented
        return self._atoms == other._atoms and self._children == other._children

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:
        text = self.to_text()
        if len(text) > 60:
            text = text[:57] + "..."
        return f"NestedSet({text})"


def as_nested_set(query: object) -> NestedSet:
    """Coerce a query given as text, Python nest, or NestedSet."""
    if isinstance(query, NestedSet):
        return query
    if isinstance(query, str):
        return NestedSet.parse(query)
    return NestedSet.from_obj(query)


def _sort_key(atom: Atom) -> tuple[int, str]:
    return (0, f"{atom:020d}") if isinstance(atom, int) else (1, atom)


def _atom_text(atom: Atom) -> str:
    if isinstance(atom, int):
        return str(atom)
    looks_numeric = _parses_as_int(atom)
    if atom and not looks_numeric and all(
            ch.isalnum() or ch in _BARE_EXTRA for ch in atom):
        return atom
    escaped = atom.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _parses_as_int(token: str) -> bool:
    """True when a bare token would be read back as an integer atom."""
    stripped = token.lstrip("+-")
    return bool(stripped) and stripped.isdigit() \
        and token[:1] != "+" and "-" not in token[1:]


class _Parser:
    """Recursive-descent parser for the nested set text syntax.

    ``builder(atoms, children)`` turns the member lists into the final
    value; :class:`NestedSet` uses its own constructor (collapsing
    duplicates), the bag model of :mod:`repro.core.bags` keeps them.
    """

    #: Container delimiters; the sequence model subclasses with brackets.
    OPEN = "{"
    CLOSE = "}"

    def __init__(self, text: str, builder=None) -> None:
        self.text = text
        self.pos = 0
        self.builder = builder if builder is not None else NestedSet

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while not self.at_end() and self.text[self.pos].isspace():
            self.pos += 1

    def _expect(self, char: str) -> None:
        if self.at_end() or self.text[self.pos] != char:
            found = "end of input" if self.at_end() else repr(self.text[self.pos])
            raise NestedSetError(
                f"expected {char!r} at position {self.pos}, found {found}")
        self.pos += 1

    def parse_set(self):
        self.skip_ws()
        self._expect(self.OPEN)
        members: list = []  # atoms and sub-containers, in source order
        self.skip_ws()
        if not self.at_end() and self.text[self.pos] == self.CLOSE:
            self.pos += 1
            return self._finish(members)
        while True:
            self.skip_ws()
            if not self.at_end() and self.text[self.pos] == self.OPEN:
                members.append(self.parse_set())
            else:
                members.append(self._parse_atom())
            self.skip_ws()
            if self.at_end():
                raise NestedSetError(
                    f"unterminated container (missing {self.CLOSE!r})")
            if self.text[self.pos] == ",":
                self.pos += 1
                continue
            self._expect(self.CLOSE)
            return self._finish(members)

    def _finish(self, members: list):
        """Build the container value; set/bag builders split by kind
        (dropping order), the sequence parser overrides to keep it."""
        atoms = [m for m in members if _is_atom(m)]
        children = [m for m in members if not _is_atom(m)]
        return self.builder(atoms, children)

    def _parse_atom(self) -> Atom:
        self.skip_ws()
        if self.at_end():
            raise NestedSetError("expected an atom, found end of input")
        if self.text[self.pos] == '"':
            return self._parse_quoted()
        start = self.pos
        while not self.at_end():
            ch = self.text[self.pos]
            if ch.isalnum() or ch in _BARE_EXTRA:
                self.pos += 1
            else:
                break
        token = self.text[start:self.pos]
        if not token:
            raise NestedSetError(
                f"expected an atom at position {start}, found "
                f"{self.text[start:start + 10]!r}")
        if _parses_as_int(token):
            return int(token)
        return token

    def _parse_quoted(self) -> str:
        self._expect('"')
        out: list[str] = []
        while True:
            if self.at_end():
                raise NestedSetError("unterminated quoted atom")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == "\\":
                if self.at_end():
                    raise NestedSetError("dangling escape in quoted atom")
                out.append(self.text[self.pos])
                self.pos += 1
            elif ch == '"':
                return "".join(out)
            else:
                out.append(ch)


#: The paper's running example (Table 1) in text syntax, used by tests and
#: the ``driving_licenses`` example.
EXAMPLE_SUE = ("{London, UK, {UK, {A, B, C, car, motorbike}}, "
               "{UK, {A, motorbike}}}")
EXAMPLE_TIM = ("{Boston, USA, {USA, VA, {A, B, car}}, {UK, {A, motorbike}}}")
EXAMPLE_QUERY = "{USA, {UK, {A, motorbike}}}"
