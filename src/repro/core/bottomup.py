"""The bottom-up containment algorithm (Section 3.2, Algorithms 3-4).

Processing descends the query depth-first, pushing a marker onto an
explicit stack per internal node; on the way back up, each node pops the
match sets of its children (the ``Lists`` of Algorithm 4), evaluates its
own candidates, and pushes the set of candidate heads that cover every
child -- the ``H(·)`` operator.  The final pop yields the data nodes at
which the whole query embeds.

Unlike the top-down algorithm, candidates are computed for *every* query
node regardless of parent context (there is no downward pruning), which is
exactly the trade-off the paper's experiments probe.  Worst-case running
time is ``O(|q| · |S|)`` (Section 3.2, Analysis).

The implementation is iterative, mirroring the paper's explicit stack and
making the algorithm safe for arbitrarily deep queries.
"""

from __future__ import annotations

from .candidates import node_candidates
from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .structural import filter_candidates

#: Stack marker ('$' in the paper's Figure 5).
_MARK = object()


def bottomup_match_nodes(query: NestedSet, ifile: InvertedFile,
                         spec: QuerySpec = QuerySpec()) -> set[int]:
    """Return the set of data node ids at which ``query`` embeds."""
    stack: list[object] = []
    work: list[tuple[NestedSet, bool]] = [(query, False)]
    while work:
        node, expanded = work.pop()
        if not expanded:
            # Descend: push the marker, schedule this node's own
            # evaluation after its children (Algorithm 4 lines 1-4).
            stack.append(_MARK)
            work.append((node, True))
            for child in node.children:
                work.append((child, False))
            continue
        # Collect the children's results down to the marker
        # (Algorithm 4 lines 5-9).
        child_sets: list[set[int]] = []
        while stack[-1] is not _MARK:
            child_sets.append(stack.pop())  # type: ignore[arg-type]
        stack.pop()
        if spec.join != "superset" and any(not hits for hits in child_sets):
            # Some subquery is unsatisfiable anywhere; signal the parent
            # without touching the index (Algorithm 4 lines 14-15).  The
            # superset join is exempt: there a query child that matches
            # nothing is harmless -- data children only need to be covered
            # by *some* query child.
            stack.append(frozenset())
            continue
        cand = node_candidates(node, ifile, spec)  # line 11
        matched = filter_candidates(cand, child_sets, ifile, spec)  # line 12
        stack.append(matched.heads())  # line 13
    result = stack.pop()
    assert not stack, "bottom-up stack must be empty at the end"
    return set(result)  # type: ignore[arg-type]


def bottomup_query(query: NestedSet, ifile: InvertedFile,
                   spec: QuerySpec = QuerySpec()) -> list[str]:
    """Evaluate ``query ⋉ S`` and return the matching record keys."""
    heads = bottomup_match_nodes(query, ifile, spec)
    return ifile.heads_to_keys(heads, mode=spec.mode)
