"""The bottom-up containment algorithm (Section 3.2, Algorithms 3-4).

Processing descends the query depth-first, pushing a marker onto an
explicit stack per internal node; on the way back up, each node pops the
match sets of its children (the ``Lists`` of Algorithm 4), evaluates its
own candidates, and pushes the set of candidate heads that cover every
child -- the ``H(·)`` operator.  The final pop yields the data nodes at
which the whole query embeds.

Unlike the top-down algorithm, candidates are computed for *every* query
node regardless of parent context (there is no downward pruning), which is
exactly the trade-off the paper's experiments probe.  Worst-case running
time is ``O(|q| · |S|)`` (Section 3.2, Analysis).

The implementation is iterative, mirroring the paper's explicit stack and
making the algorithm safe for arbitrarily deep queries.  The per-node
candidate/filter step is the shared pipeline stage
:func:`repro.core.structural.evaluate_node`; an optional observer (see
:mod:`repro.core.observe`) watches each node for EXPLAIN traces.
"""

from __future__ import annotations

from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .observe import NULL_OBSERVER, PlanObserver
from .structural import evaluate_node

#: Stack marker ('$' in the paper's Figure 5).
_MARK = object()


def bottomup_match_nodes(query: NestedSet, ifile: InvertedFile,
                         spec: QuerySpec = QuerySpec(), *,
                         observer: PlanObserver | None = None) -> set[int]:
    """Return the set of data node ids at which ``query`` embeds."""
    obs = observer if observer is not None else NULL_OBSERVER
    stack: list[object] = []
    work: list[tuple[NestedSet, bool]] = [(query, False)]
    while work:
        node, expanded = work.pop()
        if not expanded:
            # Descend: push the marker, schedule this node's own
            # evaluation after its children (Algorithm 4 lines 1-4).
            obs.enter_node(node)
            stack.append(_MARK)
            work.append((node, True))
            # LIFO work stack: push reversed so children (and hence any
            # attached trace) are visited in iteration order.
            for child in reversed(tuple(node.children)):
                work.append((child, False))
            continue
        # Collect the children's results down to the marker
        # (Algorithm 4 lines 5-9), then evaluate this node's candidates
        # against them (lines 11-15, the shared pipeline stage).
        child_sets: list[set[int]] = []
        while stack[-1] is not _MARK:
            child_sets.append(stack.pop())  # type: ignore[arg-type]
        stack.pop()
        matched = evaluate_node(node, child_sets, ifile, spec, obs)
        obs.exit_node(len(matched))
        stack.append(matched)
    result = stack.pop()
    assert not stack, "bottom-up stack must be empty at the end"
    return set(result)  # type: ignore[arg-type]


def bottomup_query(query: NestedSet, ifile: InvertedFile,
                   spec: QuerySpec = QuerySpec()) -> list[str]:
    """Evaluate ``query ⋉ S`` and return the matching record keys."""
    heads = bottomup_match_nodes(query, ifile, spec)
    return ifile.heads_to_keys(heads, mode=spec.mode)
