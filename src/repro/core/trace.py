"""Query explanation: an instrumented top-down evaluation trace.

``explain()`` runs the strict top-down algorithm while recording, per
query node, the inverted lists touched, the candidate count before and
after structural filtering, and elapsed time -- the information needed to
see *why* a query is slow (hot atoms, unselective inner sets) and how the
pruning cascade behaves.  Rendered, a trace looks like::

    node {USA, ...}  atoms=[USA]  candidates=812 -> survivors=17  1.24ms
      node {UK, ...}  atoms=[UK]  candidates=64 (frontier 41) -> ...

This is diagnostics machinery on top of the paper's algorithm, in the
spirit of EXPLAIN in relational engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .candidates import node_candidates
from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .structural import filter_candidates, frontier_of, prefilter_survivors


@dataclass
class NodeTrace:
    """Evaluation record of one query node."""

    label: str                 # abbreviated node text
    atoms: list[str]
    list_lengths: dict[str, int]
    candidates: int            # after leaf filtering / candidate generation
    restricted: int | None     # after frontier restriction (None at root)
    survivors: int             # after the structural child conditions
    elapsed_ms: float
    children: list["NodeTrace"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        parts = [f"{pad}node {self.label}  atoms={self.atoms}"]
        if self.restricted is not None:
            parts.append(f"candidates={self.candidates} "
                         f"(frontier {self.restricted})")
        else:
            parts.append(f"candidates={self.candidates}")
        parts.append(f"-> survivors={self.survivors}")
        parts.append(f"{self.elapsed_ms:.3f}ms")
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class ExplainResult:
    """Top-level trace plus the query outcome."""

    root: NodeTrace
    matches: list[str]
    total_ms: float
    lists_fetched: int

    def render(self) -> str:
        header = (f"matches={len(self.matches)}  total={self.total_ms:.3f}ms"
                  f"  lists={self.lists_fetched}")
        return f"{header}\n{self.root.render()}"


def _label(node: NestedSet, limit: int = 40) -> str:
    text = node.to_text()
    return text if len(text) <= limit else text[:limit - 3] + "..."


def explain(query: object, ifile: InvertedFile,
            spec: QuerySpec = QuerySpec()) -> ExplainResult:
    """Evaluate with full instrumentation; returns trace + matches."""
    from .engine import as_nested_set
    tree = as_nested_set(query)
    start = time.perf_counter()
    fetched = [0]

    def run(node: NestedSet, cand, restricted: int | None) -> tuple:
        node_start = time.perf_counter()
        atoms = sorted(str(atom) for atom in node.atoms)
        lengths = {}
        for atom in node.atoms:
            lengths[str(atom)] = len(ifile.postings(atom))
            fetched[0] += 1
        children = sorted(node.children, key=lambda c: c.to_text())
        trace = NodeTrace(label=_label(node), atoms=atoms,
                          list_lengths=lengths, candidates=len(cand),
                          restricted=restricted, survivors=0,
                          elapsed_ms=0.0)
        if not cand:
            trace.elapsed_ms = (time.perf_counter() - node_start) * 1000
            return set(), trace
        if spec.join == "superset":
            # Mirror the strict top-down exactly: no per-child pruning of
            # survivors (a query child matching nothing is harmless here);
            # the coverage condition applies once at the end.
            child_sets = []
            for child in children:
                frontier = frontier_of(cand, ifile, spec)
                restricted_cand = frontier.restrict(
                    node_candidates(child, ifile, spec))
                ok, child_trace = run(child, restricted_cand,
                                      len(restricted_cand))
                trace.children.append(child_trace)
                child_sets.append(ok)
            heads = filter_candidates(cand, child_sets, ifile,
                                      spec).heads()
            trace.survivors = len(heads)
            trace.elapsed_ms = (time.perf_counter() - node_start) * 1000
            return heads, trace
        if spec.join == "equality":
            from .postings import PostingList
            want = len(children)
            cand = PostingList([(p, c) for p, c in cand
                                if len(c) == want])
        survivors = cand
        child_sets = []
        for child in children:
            if not survivors:
                break
            frontier = frontier_of(survivors, ifile, spec)
            full = node_candidates(child, ifile, spec)
            restricted_cand = frontier.restrict(full)
            ok, child_trace = run(child, restricted_cand,
                                  len(restricted_cand))
            trace.children.append(child_trace)
            child_sets.append(ok)
            survivors = prefilter_survivors(survivors, ok, ifile, spec)
        if spec.semantics == "iso" and survivors:
            survivors = filter_candidates(survivors, child_sets, ifile, spec)
        heads = survivors.heads()
        trace.survivors = len(heads)
        trace.elapsed_ms = (time.perf_counter() - node_start) * 1000
        return heads, trace

    cand = node_candidates(tree, ifile, spec)
    heads, root_trace = run(tree, cand, None)
    matches = ifile.heads_to_keys(heads, mode=spec.mode)
    total_ms = (time.perf_counter() - start) * 1000
    return ExplainResult(root=root_trace, matches=matches,
                         total_ms=total_ms, lists_fetched=fetched[0])
