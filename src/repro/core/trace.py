"""Query explanation: an instrumented evaluation trace (any algorithm).

``explain()`` compiles the query through the shared execution pipeline
(:mod:`repro.core.exec`) and runs it with a trace sink attached to the
execution context, recording per query node the inverted lists touched,
the candidate count before and after restriction, and elapsed time --
the information needed to see *why* a query is slow (hot atoms,
unselective inner sets) and how the pruning cascade behaves.  Because
the trace observes the real algorithm rather than re-implementing it,
it exists for all four algorithms and cannot diverge from the
uninstrumented result.  Rendered, a trace looks like::

    node {USA, ...}  atoms=[USA]  candidates=812 -> survivors=17  1.24ms
      node {UK, ...}  atoms=[UK]  candidates=64 (frontier 41) -> ...

This is diagnostics machinery on top of the paper's algorithms, in the
spirit of EXPLAIN in relational engines.  :class:`NodeTrace` and
:class:`ExplainResult` are re-exported from
:mod:`repro.core.exec.observer`, where the sink lives.
"""

from __future__ import annotations

from .exec.compiler import compile_query
from .exec.context import ExecutionContext
from .exec.observer import ExplainResult, NodeTrace, run_explained
from .invfile import InvertedFile
from .matchspec import QuerySpec

__all__ = ["ExplainResult", "NodeTrace", "explain"]


def explain(query: object, ifile: InvertedFile,
            spec: QuerySpec = QuerySpec(), *,
            algorithm: str = "topdown",
            planner: str | None = None,
            bloom_index: object | None = None,
            use_bloom: bool = False) -> ExplainResult:
    """Evaluate with full instrumentation; returns trace + matches.

    Works for every algorithm; ``topdown`` is the historical default of
    this module-level helper.  ``NestedSetIndex.explain`` wraps this
    with the engine's own inverted file, Bloom filters, and statistics.
    """
    plan = compile_query(query, spec, algorithm=algorithm, planner=planner,
                         use_bloom=use_bloom, cacheable=False)
    ctx = ExecutionContext(ifile=ifile, bloom_index=bloom_index)
    return run_explained(plan, ctx)
