"""Nested multisets (bags): the data-model variation of future work (2).

The paper's closing remarks ask about "variations to the data model
(e.g., multi-set and list types)".  :class:`NestedBag` is the multiset
variant: members carry multiplicities, so ``{a, a, {b}}`` is distinct
from ``{a, {b}}``.

Containment changes character under bags.  Sub-bag containment
``q ⊑ s`` requires every member *copy* of ``q`` to be matched by a
**distinct** member copy of ``s`` (atoms by multiplicity comparison,
bag-valued members by recursive sub-bag containment under a capacitated
matching).  Multiplicities therefore force injectivity -- bag containment
generalizes the paper's ⊆_iso, not ⊆_hom.

Relationship to the set model (both directions are tested):

* ``q ⊑ s``  ⇒  ``q.to_set() ⊆_hom s.to_set()`` -- so the set index is a
  *sound prefilter* for bag queries: run the deduplicated query through
  any index algorithm, then verify candidates with :func:`bag_contains`
  (:func:`bag_filter_verify`).
* The converse fails exactly when multiplicities matter
  (``{a} ⊆ {a}`` but ``{a, a} ⋢ {a}``).

JSON arrays naturally carry duplicates; :func:`json_to_nested_bag`
preserves them where the set adapter collapses them.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from .model import Atom, NestedSetError, _Parser, _atom_text, _is_atom, _sort_key
from .model import NestedSet


class NestedBag:
    """An immutable nested multiset.

    ``atoms`` maps atom -> multiplicity; ``children`` is a tuple of
    ``(NestedBag, multiplicity)`` pairs over *distinct* child values.
    """

    __slots__ = ("_atoms", "_children", "_hash")

    def __init__(self, atoms: Iterable[Atom] = (),
                 children: Iterable["NestedBag"] = ()) -> None:
        atom_counts = Counter()
        for atom in atoms:
            if not _is_atom(atom):
                raise NestedSetError(
                    f"atoms must be str or int, got {type(atom).__name__}")
            atom_counts[atom] += 1
        child_counts: Counter = Counter()
        for child in children:
            if not isinstance(child, NestedBag):
                raise NestedSetError(
                    f"children must be NestedBag, got "
                    f"{type(child).__name__}")
            child_counts[child] += 1
        self._atoms = dict(atom_counts)
        self._children = tuple(sorted(
            child_counts.items(), key=lambda item: item[0].to_text()))
        self._hash = hash((frozenset(self._atoms.items()), self._children))

    # -- accessors -----------------------------------------------------------

    @property
    def atoms(self) -> dict:
        """Atom -> multiplicity (a fresh view each call is not needed;
        treat as read-only)."""
        return self._atoms

    @property
    def children(self) -> tuple:
        """Sorted tuple of ``(child bag, multiplicity)`` pairs."""
        return self._children

    def multiplicity(self, atom: Atom) -> int:
        """How many copies of ``atom`` this bag holds directly."""
        return self._atoms.get(atom, 0)

    @property
    def cardinality(self) -> int:
        """Total member copies (atoms plus bags, with multiplicity)."""
        return sum(self._atoms.values()) + \
            sum(count for _child, count in self._children)

    @property
    def is_empty(self) -> bool:
        return not self._atoms and not self._children

    def iter_bags(self) -> Iterator["NestedBag"]:
        """Preorder iteration over distinct nested bags."""
        stack = [self]
        while stack:
            bag = stack.pop()
            yield bag
            stack.extend(child for child, _count in bag._children)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_obj(cls, obj: object) -> "NestedBag":
        """Build from nested Python containers, *keeping* duplicates.

        Lists and tuples contribute every occurrence; sets cannot carry
        duplicates to begin with.
        """
        if isinstance(obj, NestedBag):
            return obj
        if isinstance(obj, NestedSet):
            return cls(obj.atoms, [cls.from_obj(c) for c in obj.children])
        if not isinstance(obj, (set, frozenset, list, tuple)):
            raise NestedSetError(
                f"cannot build a nested bag from {type(obj).__name__}")
        atoms: list[Atom] = []
        children: list[NestedBag] = []
        for member in obj:
            if _is_atom(member):
                atoms.append(member)
            else:
                children.append(cls.from_obj(member))
        return cls(atoms, children)

    @classmethod
    def parse(cls, text: str) -> "NestedBag":
        """Parse the shared text syntax; duplicates are preserved."""
        parser = _Parser(text, builder=cls)
        result = parser.parse_set()
        parser.skip_ws()
        if not parser.at_end():
            raise NestedSetError(
                f"trailing input at position {parser.pos}")
        return result

    def to_set(self) -> NestedSet:
        """Forget multiplicities: the paper's set abstraction."""
        return NestedSet(self._atoms.keys(),
                         [child.to_set() for child, _count in self._children])

    def to_text(self) -> str:
        """Canonical text form; copies are written out."""
        parts = []
        for atom in sorted(self._atoms, key=_sort_key):
            parts.extend([_atom_text(atom)] * self._atoms[atom])
        for child, count in self._children:
            parts.extend([child.to_text()] * count)
        return "{" + ", ".join(parts) + "}"

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedBag):
            return NotImplemented
        return self._atoms == other._atoms and \
            self._children == other._children

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        text = self.to_text()
        if len(text) > 60:
            text = text[:57] + "..."
        return f"NestedBag({text})"


def bag_contains(data: NestedBag, query: NestedBag) -> bool:
    """Sub-bag containment ``query ⊑ data`` (injective per copy)."""
    memo: dict[tuple[int, int], bool] = {}

    def covered(qbag: NestedBag, dbag: NestedBag) -> bool:
        key = (id(qbag), id(dbag))
        cached = memo.get(key)
        if cached is not None:
            return cached
        ok = all(dbag.multiplicity(atom) >= count
                 for atom, count in qbag.atoms.items()) and \
            _children_matchable(qbag, dbag, covered)
        memo[key] = ok
        return ok

    return covered(query, data)


def _children_matchable(qbag: NestedBag, dbag: NestedBag, covered) -> bool:
    """Capacitated bipartite matching over child copies.

    Copies are expanded explicitly (bag cardinalities are set-like in
    practice); an augmenting-path matching assigns every query child copy
    its own data child copy whose bag contains it.
    """
    left: list[NestedBag] = []
    for child, count in qbag.children:
        left.extend([child] * count)
    if not left:
        return True
    right: list[NestedBag] = []
    for child, count in dbag.children:
        right.extend([child] * count)
    if len(left) > len(right):
        return False
    match_right: dict[int, int] = {}

    def assign(lindex: int, visited: set[int]) -> bool:
        for rindex, rchild in enumerate(right):
            if rindex in visited or not covered(left[lindex], rchild):
                continue
            visited.add(rindex)
            holder = match_right.get(rindex)
            if holder is None or assign(holder, visited):
                match_right[rindex] = lindex
                return True
        return False

    for lindex in range(len(left)):
        if not assign(lindex, set()):
            return False
    return True


def bag_equal(left: NestedBag, right: NestedBag) -> bool:
    """Bag equality (structural; multiplicities included)."""
    return left == right


def bag_reference_query(records: Iterable[tuple[str, NestedBag]],
                        query: NestedBag) -> list[str]:
    """Naive scan: keys of records with ``query ⊑ record``."""
    return sorted(key for key, bag in records if bag_contains(bag, query))


def bag_filter_verify(index, bag_records: dict, query: NestedBag,
                      **query_options) -> list[str]:
    """Filter-verify bag search over a set index.

    ``index`` is a :class:`~repro.core.engine.NestedSetIndex` built from
    the *deduplicated* records; ``bag_records`` maps key -> NestedBag
    (ground truth).  The set-homomorphic query is a sound prefilter
    (see the module docstring); candidates are then verified exactly.
    """
    candidates = index.query(query.to_set(), **query_options)
    return [key for key in candidates
            if bag_contains(bag_records[key], query)]


def json_to_nested_bag(value: object) -> NestedBag:
    """JSON -> nested bag, preserving array duplicates.

    Same field mapping as :func:`repro.data.json_adapter.json_to_nested`
    (``k=v`` atoms, ``@k`` markers), but repeated array members keep
    their multiplicity.
    """
    from ..data.json_adapter import scalar_atom
    if isinstance(value, dict):
        atoms: list[Atom] = []
        children: list[NestedBag] = []
        for key, member in value.items():
            if isinstance(member, (dict, list)):
                child = json_to_nested_bag(member)
                children.append(NestedBag(
                    list(_expand_atoms(child)) + [f"@{key}"],
                    list(_expand_children(child))))
            else:
                atoms.append(f"{key}={scalar_atom(member)}")
        return NestedBag(atoms, children)
    if isinstance(value, list):
        atoms = []
        children = []
        for member in value:
            if isinstance(member, (dict, list)):
                children.append(json_to_nested_bag(member))
            else:
                atoms.append(scalar_atom(member))
        return NestedBag(atoms, children)
    return NestedBag([scalar_atom(value)])  # type: ignore[list-item]


def _expand_atoms(bag: NestedBag) -> Iterator[Atom]:
    for atom, count in bag.atoms.items():
        for _ in range(count):
            yield atom


def _expand_children(bag: NestedBag) -> Iterator[NestedBag]:
    for child, count in bag.children:
        for _ in range(count):
            yield child
