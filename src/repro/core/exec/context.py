"""Execution state threaded through every stage of a compiled plan.

:class:`ExecutionContext` bundles what a plan needs at run time -- the
inverted file, the optional Bloom prefilters, the whole-query result
cache, collection statistics (for the planner), an optional cross-query
subquery memo, a trace observer, and per-context counters.  One context
per index serves single queries; batches and joins share one context so
the memo and counters accumulate across the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..observe import PlanObserver

if TYPE_CHECKING:  # typing only: keep the runtime import graph acyclic
    from ..bloom import BloomIndex
    from ..invfile import InvertedFile
    from ..model import NestedSet
    from ..resultcache import ResultCache
    from ..stats import CollectionStats


@dataclass
class ExecCounters:
    """Per-context execution counters (reset by creating a new context)."""

    queries: int = 0
    result_cache_hits: int = 0
    subqueries_evaluated: int = 0
    subqueries_reused: int = 0
    records_tested: int = 0
    records_skipped: int = 0
    #: Prefix-tree join instrumentation (repro.core.prefixjoin): trie
    #: nodes built, posting lists actually streamed/intersected, and
    #: candidate requests served from an already-evaluated node.
    prefix_nodes: int = 0
    prefix_streams: int = 0
    prefix_reused: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "result_cache_hits": self.result_cache_hits,
            "subqueries_evaluated": self.subqueries_evaluated,
            "subqueries_reused": self.subqueries_reused,
            "records_tested": self.records_tested,
            "records_skipped": self.records_skipped,
            "prefix_nodes": self.prefix_nodes,
            "prefix_streams": self.prefix_streams,
            "prefix_reused": self.prefix_reused,
        }

    def merge(self, other: "ExecCounters") -> None:
        """Accumulate another context's counters into this one.

        The sharded executor runs one context per shard and merges them
        afterwards, so workload-level statistics look the same whether an
        index is monolithic or sharded.
        """
        self.queries += other.queries
        self.result_cache_hits += other.result_cache_hits
        self.subqueries_evaluated += other.subqueries_evaluated
        self.subqueries_reused += other.subqueries_reused
        self.records_tested += other.records_tested
        self.records_skipped += other.records_skipped
        self.prefix_nodes += other.prefix_nodes
        self.prefix_streams += other.prefix_streams
        self.prefix_reused += other.prefix_reused

    @classmethod
    def merged(cls, counters: "list[ExecCounters] | tuple[ExecCounters, ...]"
               ) -> "ExecCounters":
        """Sum of several per-shard counter sets (order-independent)."""
        total = cls()
        for part in counters:
            total.merge(part)
        return total


@dataclass
class ExecutionContext:
    """Everything a compiled plan touches while running."""

    ifile: "InvertedFile"
    bloom_index: "BloomIndex | None" = None
    result_cache: "ResultCache | None" = None
    #: Lazily invoked provider of collection statistics (the engine passes
    #: its memoized accessor); ``None`` means compute from the inverted
    #: file on first use.
    stats_provider: "Callable[[], CollectionStats] | None" = None
    #: Cross-query subquery memo: a shared dict enables the batch
    #: evaluator's shared-subquery reuse; ``None`` disables it.
    memo: "dict[NestedSet, frozenset[int]] | None" = None
    observer: PlanObserver | None = None
    counters: ExecCounters = field(default_factory=ExecCounters)
    _stats: "CollectionStats | None" = field(default=None, repr=False)

    def collection_stats(self) -> "CollectionStats":
        """Statistics for planner-driven stages (memoized per context)."""
        if self._stats is None:
            if self.stats_provider is not None:
                self._stats = self.stats_provider()
            else:
                from ..stats import CollectionStats
                self._stats = CollectionStats.from_inverted_file(self.ifile)
        return self._stats
