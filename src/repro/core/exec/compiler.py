"""Query compilation: options in, validated execution plan out.

:func:`compile_query` is the single place where query options are
validated and turned into an explicit :class:`ExecutionPlan`.  Every
entry point -- ``NestedSetIndex.query``, ``query_batch``,
``containment_join``, the CLI, and ``explain`` -- compiles here, so the
option interaction rules (Bloom is naive-only, planning is strict
top-down-only, the paper-literal variant's spec limits, result-cache
keying) live in one place with uniform error messages.
"""

from __future__ import annotations

from ..matchspec import QuerySpec, validate_paper_variant
from ..model import as_nested_set
from ..planner import STRATEGIES
from ..resultcache import make_key
from .plan import (
    CandidateStage,
    ExecutionPlan,
    MatchStage,
    MaterializeStage,
    PlanError,
    PrefilterStage,
)

#: Algorithm names accepted by the compiler (and the engine facade).
ALGORITHMS = ("bottomup", "topdown", "topdown-paper", "naive")


def compile_query(query: object, spec: QuerySpec = QuerySpec(), *,
                  algorithm: str = "bottomup",
                  planner: str | None = None,
                  use_bloom: bool = False,
                  cacheable: bool = True) -> ExecutionPlan:
    """Validate options and build the execution plan for one query.

    ``cacheable=False`` omits the result-cache key, forcing a full
    evaluation even when the context carries a cache (EXPLAIN uses this
    so traces always reflect real execution).
    """
    tree = as_nested_set(query)
    if algorithm not in ALGORITHMS:
        raise PlanError(f"unknown algorithm {algorithm!r}; "
                        f"expected one of {ALGORITHMS}")
    if use_bloom and algorithm != "naive":
        raise PlanError("Bloom prefiltering applies to the naive "
                        "algorithm only")
    if planner is not None:
        if algorithm != "topdown":
            raise PlanError("evaluation-order planning applies to "
                            "the strict top-down algorithm only")
        if planner not in STRATEGIES:
            raise PlanError(f"unknown strategy {planner!r}; "
                            f"expected one of {STRATEGIES}")
    if algorithm == "topdown-paper":
        validate_paper_variant(spec)
    cache_key = None
    if cacheable:
        cache_key = make_key(tree, algorithm, spec.semantics, spec.join,
                             spec.epsilon, spec.mode, planner=planner,
                             use_bloom=use_bloom)
    return ExecutionPlan(
        query=tree,
        spec=spec,
        prefilter=PrefilterStage(cache_key=cache_key, bloom=use_bloom),
        candidates=CandidateStage(
            source="record-scan" if algorithm == "naive"
            else "inverted-file",
            join=spec.join),
        match=MatchStage(strategy=algorithm, planner=planner,
                         memoizable=(algorithm == "bottomup")),
        materialize=MaterializeStage(mode=spec.mode),
    )
