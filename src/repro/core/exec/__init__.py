"""Query-compilation layer: explicit plans shared by all algorithms.

``compile_query(tree, spec, options) -> ExecutionPlan`` validates every
option combination in one place and builds a dataclass pipeline
(prefilter -> candidates -> match -> materialize);
``ExecutionPlan.run(ExecutionContext)`` executes it.  The context
threads the inverted file, caches, per-query counters, and an optional
trace observer through every stage, so batching, joins, and EXPLAIN are
all the same machinery with different contexts attached.
"""

from .compiler import ALGORITHMS, compile_query
from .context import ExecCounters, ExecutionContext
from .observer import ExplainResult, NodeTrace, TraceSink, run_explained
from .plan import (
    CandidateStage,
    ExecutionPlan,
    MatchStage,
    MaterializeStage,
    PlanError,
    PrefilterStage,
)

__all__ = [
    "ALGORITHMS",
    "CandidateStage",
    "ExecCounters",
    "ExecutionContext",
    "ExecutionPlan",
    "ExplainResult",
    "MatchStage",
    "MaterializeStage",
    "NodeTrace",
    "PlanError",
    "PrefilterStage",
    "TraceSink",
    "compile_query",
    "run_explained",
]
