"""The EXPLAIN trace sink: a context-attached observer.

Earlier revisions implemented ``explain()`` as a parallel transcription
of the top-down algorithm; instrumentation now rides along the real
execution instead.  :class:`TraceSink` subscribes to the observer hooks
of :mod:`repro.core.observe` and assembles a :class:`NodeTrace` tree
while *the algorithm itself* runs, so a trace exists for every
algorithm and can never diverge from the uninstrumented result.

Rendered, a trace looks like::

    node {USA, ...}  atoms=[USA]  candidates=812 -> survivors=17  1.24ms
      node {UK, ...}  atoms=[UK]  candidates=64 (frontier 41) -> ...
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..invfile import decode_path_of
from ..observe import PlanObserver

if TYPE_CHECKING:
    from ..invfile import InvertedFile
    from ..model import NestedSet
    from .context import ExecutionContext
    from .plan import ExecutionPlan


@dataclass
class NodeTrace:
    """Evaluation record of one query node."""

    label: str                 # abbreviated node text
    atoms: list[str]
    list_lengths: dict[str, int]
    candidates: int            # after leaf filtering / candidate generation
    restricted: int | None     # after frontier restriction (None at root)
    survivors: int             # after the structural child conditions
    elapsed_ms: float
    children: list["NodeTrace"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        parts = [f"{pad}node {self.label}  atoms={self.atoms}"]
        if self.restricted is not None:
            parts.append(f"candidates={self.candidates} "
                         f"(frontier {self.restricted})")
        else:
            parts.append(f"candidates={self.candidates}")
        parts.append(f"-> survivors={self.survivors}")
        parts.append(f"{self.elapsed_ms:.3f}ms")
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class ExplainResult:
    """Top-level trace plus the query outcome.

    ``blocks_read`` / ``blocks_skipped`` / ``bytes_decoded`` account for
    the block-compressed posting format: blocks whose payload was
    actually decoded during this query versus blocks the galloping
    intersection jumped over via skip headers (zero on legacy-format
    indexes).  ``decode_path`` names the intersection kernel that served
    the query: ``vectorized`` (the numpy array-native path), ``scalar``
    (cursor/hash-set fallback), or ``mixed``.
    """

    root: NodeTrace
    matches: list[str]
    total_ms: float
    lists_fetched: int
    algorithm: str = "topdown"
    blocks_read: int = 0
    blocks_skipped: int = 0
    bytes_decoded: int = 0
    intersects_vectorized: int = 0
    intersects_scalar: int = 0

    @property
    def decode_path(self) -> str:
        return decode_path_of(self.intersects_vectorized,
                              self.intersects_scalar)

    def render(self) -> str:
        header = (f"matches={len(self.matches)}  total={self.total_ms:.3f}ms"
                  f"  lists={self.lists_fetched}  [{self.algorithm}]")
        if self.blocks_read or self.blocks_skipped:
            header += (f"\nblocks_read={self.blocks_read}  "
                       f"blocks_skipped={self.blocks_skipped}  "
                       f"bytes_decoded={self.bytes_decoded}")
        header += f"\ndecode_path={self.decode_path}"
        return f"{header}\n{self.root.render()}"


@dataclass
class MergedExplainResult:
    """Per-shard traces plus the merged outcome of a sharded EXPLAIN.

    ``matches`` is the cross-shard union (shards partition the records,
    so concatenation plus one sort is exact); ``total_ms`` is the wall
    clock of the whole fan-out, while each per-shard
    :class:`ExplainResult` keeps its own timing.
    """

    shards: list[ExplainResult]
    matches: list[str]
    total_ms: float
    algorithm: str

    @property
    def lists_fetched(self) -> int:
        return sum(result.lists_fetched for result in self.shards)

    @property
    def blocks_read(self) -> int:
        return sum(result.blocks_read for result in self.shards)

    @property
    def blocks_skipped(self) -> int:
        return sum(result.blocks_skipped for result in self.shards)

    @property
    def bytes_decoded(self) -> int:
        return sum(result.bytes_decoded for result in self.shards)

    @property
    def decode_path(self) -> str:
        return decode_path_of(
            sum(result.intersects_vectorized for result in self.shards),
            sum(result.intersects_scalar for result in self.shards))

    def render(self) -> str:
        header = (f"matches={len(self.matches)}  total={self.total_ms:.3f}ms"
                  f"  lists={self.lists_fetched}  [{self.algorithm}"
                  f" x {len(self.shards)} shards]")
        if self.blocks_read or self.blocks_skipped:
            header += (f"\nblocks_read={self.blocks_read}  "
                       f"blocks_skipped={self.blocks_skipped}  "
                       f"bytes_decoded={self.bytes_decoded}")
        header += f"\ndecode_path={self.decode_path}"
        sections = [header]
        for shard_no, result in enumerate(self.shards):
            sections.append(f"-- shard {shard_no} --")
            sections.append(result.render())
        return "\n".join(sections)


def merge_explains(results: "list[ExplainResult]",
                   total_ms: float) -> MergedExplainResult:
    """Combine one EXPLAIN per shard into the sharded-index view."""
    if not results:
        raise ValueError("merge_explains() needs at least one shard result")
    matches = sorted(key for result in results for key in result.matches)
    return MergedExplainResult(shards=list(results), matches=matches,
                               total_ms=total_ms,
                               algorithm=results[0].algorithm)


def _label(node: "NestedSet", limit: int = 40) -> str:
    text = node.to_text()
    return text if len(text) <= limit else text[:limit - 3] + "..."


class TraceSink(PlanObserver):
    """Builds the NodeTrace tree from the algorithm's observer calls."""

    __slots__ = ("_ifile", "_stack", "root", "lists_fetched")

    def __init__(self, ifile: "InvertedFile") -> None:
        self._ifile = ifile
        self._stack: list[tuple[NodeTrace, float]] = []
        self.root: NodeTrace | None = None
        self.lists_fetched = 0

    def enter_node(self, qnode: "NestedSet") -> None:
        lengths = {}
        for atom in qnode.atoms:
            lengths[str(atom)] = len(self._ifile.postings(atom))
            self.lists_fetched += 1
        trace = NodeTrace(label=_label(qnode),
                          atoms=sorted(str(atom) for atom in qnode.atoms),
                          list_lengths=lengths, candidates=0,
                          restricted=None, survivors=0, elapsed_ms=0.0)
        if self._stack:
            self._stack[-1][0].children.append(trace)
        else:
            self.root = trace
        self._stack.append((trace, time.perf_counter()))

    def record_candidates(self, candidates: int,
                          restricted: int | None = None) -> None:
        trace = self._stack[-1][0]
        trace.candidates = candidates
        trace.restricted = restricted

    def exit_node(self, survivors: int) -> None:
        trace, started = self._stack.pop()
        trace.survivors = survivors
        trace.elapsed_ms = (time.perf_counter() - started) * 1000


def run_explained(plan: "ExecutionPlan",
                  ctx: "ExecutionContext") -> ExplainResult:
    """Run ``plan`` with a trace sink attached; return trace + matches.

    The plan should be compiled with ``cacheable=False`` so a cached
    result cannot short-circuit the instrumented evaluation.
    """
    sink = TraceSink(ctx.ifile)
    ctx.observer = sink
    stats = ctx.ifile.stats
    blocks_read0 = stats.blocks_read
    blocks_skipped0 = stats.blocks_skipped
    bytes_decoded0 = stats.bytes_decoded
    vectorized0 = stats.intersects_vectorized
    scalar0 = stats.intersects_scalar
    start = time.perf_counter()
    matches = plan.run(ctx)
    total_ms = (time.perf_counter() - start) * 1000
    assert sink.root is not None, "no node was traced"
    return ExplainResult(root=sink.root, matches=matches, total_ms=total_ms,
                         lists_fetched=sink.lists_fetched,
                         algorithm=plan.algorithm,
                         blocks_read=stats.blocks_read - blocks_read0,
                         blocks_skipped=(stats.blocks_skipped
                                         - blocks_skipped0),
                         bytes_decoded=stats.bytes_decoded - bytes_decoded0,
                         intersects_vectorized=(stats.intersects_vectorized
                                                - vectorized0),
                         intersects_scalar=(stats.intersects_scalar
                                            - scalar0))
