"""The execution plan: explicit stages shared by every algorithm.

A compiled query is a small dataclass pipeline::

    prefilter stage  -> candidate stage -> match strategy -> materialize

* **prefilter** -- whole-query shortcuts that run before any index work:
  the result-cache probe and (naive only) the Bloom record prefilter;
* **candidates** -- how per-node candidate lists are produced (inverted
  file vs. full record scan), per join type;
* **match** -- which structural matching strategy consumes the
  candidates (bottom-up, strict/paper-literal top-down, naive check),
  plus its options (sibling-order planner, shared-subquery memo);
* **materialize** -- node ids to sorted record keys, per match mode.

:meth:`ExecutionPlan.run` executes the stages against an
:class:`~repro.core.exec.context.ExecutionContext`; every algorithm, the
engine facade, batches, joins, and EXPLAIN all go through this one path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..batch import memoized_match_nodes
from ..bottomup import bottomup_match_nodes
from ..matchspec import QuerySpec
from ..model import NestedSet
from ..naive import NaiveScanner
from ..planner import make_planner
from ..topdown import topdown_match_nodes, topdown_paper_match_nodes

if TYPE_CHECKING:
    from ..resultcache import CacheKey
    from .context import ExecutionContext


class PlanError(ValueError):
    """Raised for invalid query option combinations at compile time."""


@dataclass(frozen=True)
class PrefilterStage:
    """Whole-query shortcuts applied before the index is touched."""

    #: Result-cache key covering every option that selects this plan, or
    #: ``None`` when the plan was compiled non-cacheable (e.g. EXPLAIN).
    cache_key: "CacheKey | None"
    #: Consult the Bloom record prefilters before scanning (naive only).
    bloom: bool = False


@dataclass(frozen=True)
class CandidateStage:
    """How per-node candidate lists are generated."""

    source: str                # "inverted-file" | "record-scan"
    join: str


@dataclass(frozen=True)
class MatchStage:
    """Which structural match strategy consumes the candidates."""

    strategy: str              # bottomup | topdown | topdown-paper | naive
    planner: str | None = None
    #: The strategy may be served from a context-shared subquery memo.
    memoizable: bool = False


@dataclass(frozen=True)
class MaterializeStage:
    """Node-level matches to sorted record keys."""

    mode: str                  # "root" | "anywhere"


@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled query: the four stages plus the inputs they close over."""

    query: NestedSet
    spec: QuerySpec
    prefilter: PrefilterStage
    candidates: CandidateStage
    match: MatchStage
    materialize: MaterializeStage

    @property
    def algorithm(self) -> str:
        return self.match.strategy

    # -- execution ---------------------------------------------------------

    def run(self, ctx: "ExecutionContext") -> list[str]:
        """Execute all stages; returns sorted matching record keys."""
        ctx.counters.queries += 1
        key = self.prefilter.cache_key
        if ctx.result_cache is not None and key is not None:
            cached = ctx.result_cache.get(key)
            if cached is not None:
                ctx.counters.result_cache_hits += 1
                return cached
        if self.match.strategy == "naive":
            result = self._run_scan(ctx)
        else:
            heads = self.match_nodes(ctx)
            result = ctx.ifile.heads_to_keys(heads,
                                             mode=self.materialize.mode)
        if ctx.result_cache is not None and key is not None:
            ctx.result_cache.put(key, result)
        return result

    def match_nodes(self, ctx: "ExecutionContext") -> set[int]:
        """Candidate + match stages only: node ids where the query embeds."""
        if self.match.strategy == "naive":
            raise PlanError("the naive algorithm checks whole records and "
                            "has no node-level match set")
        if self.match.memoizable and ctx.memo is not None:
            return set(memoized_match_nodes(
                self.query, ctx.ifile, self.spec, ctx.memo,
                counters=ctx.counters))
        if self.match.strategy == "topdown":
            child_order = None
            if self.match.planner is not None:
                planner = make_planner(self.match.planner,
                                       ctx.collection_stats())
                child_order = planner.as_child_order()
            return topdown_match_nodes(self.query, ctx.ifile, self.spec,
                                       child_order=child_order,
                                       observer=ctx.observer)
        if self.match.strategy == "topdown-paper":
            return topdown_paper_match_nodes(self.query, ctx.ifile,
                                             self.spec,
                                             observer=ctx.observer)
        return bottomup_match_nodes(self.query, ctx.ifile, self.spec,
                                    observer=ctx.observer)

    def _run_scan(self, ctx: "ExecutionContext") -> list[str]:
        bloom = ctx.bloom_index if self.prefilter.bloom else None
        scanner = NaiveScanner(ctx.ifile, bloom_index=bloom)
        result = scanner.query(self.query, self.spec,
                               observer=ctx.observer)
        ctx.counters.records_tested += scanner.records_tested
        ctx.counters.records_skipped += scanner.records_skipped
        return result

    # -- introspection -----------------------------------------------------

    def describe(self) -> str:
        """Human-readable stage listing (the plan half of EXPLAIN)."""
        spec = self.spec
        cache = "result-cache" if self.prefilter.cache_key is not None \
            else "none"
        if self.prefilter.bloom:
            cache += "+bloom"
        match = self.match.strategy
        if self.match.planner is not None:
            match += f" planner={self.match.planner}"
        if self.match.memoizable:
            match += " [memo-ready]"
        return "\n".join([
            f"plan {spec.semantics}/{spec.join}/{spec.mode} "
            f"query={self.query!r}",
            f"  prefilter:   {cache}",
            f"  candidates:  {self.candidates.join} via "
            f"{self.candidates.source}",
            f"  match:       {match}",
            f"  materialize: keys at mode={self.materialize.mode}",
        ])
