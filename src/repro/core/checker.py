"""Index integrity checking: verify every structural invariant.

A disk-resident index accumulates state through builds, inserts, deletes
and compactions; ``check_index`` audits all of it against the record
table (the ground truth) and returns a list of human-readable problems --
empty means healthy.  Invariants audited:

1.  configuration counters match the record/metadata tables;
2.  node ids are preorder ranks: every record owns a contiguous id
    interval; ``max_desc`` intervals are properly nested (laminar);
3.  node metadata (leaf counts, record ordinals, root flags) agrees with
    a re-walk of the stored record trees;
4.  every posting list is sorted, references valid nodes, and contains
    exactly the (atom, node) pairs of the record trees;
5.  segmented values: headers consistent with their segments;
6.  the ALL / ZERO lists cover exactly the internal / leaf-less nodes;
7.  the key map is a bijection onto live records;
8.  the frequency table dominates true document frequencies (equality
    required when no tombstones exist -- deletes legitimately leave the
    table stale until compaction).

Used by ``nestcontain check`` and the crash-consistency tests.
"""

from __future__ import annotations

from .invfile import InvertedFile
from .model import NestedSet


def check_index(ifile: InvertedFile, *, max_atoms: int | None = None
                ) -> list[str]:
    """Audit the index; returns a list of problems (empty = healthy).

    ``max_atoms`` bounds the posting-list audit to the hottest atoms
    (None = all) for quick checks on large indexes.
    """
    problems: list[str] = []
    report = problems.append

    # -- ground truth: re-walk every stored record -------------------------
    expected_meta: dict[int, tuple[int, int, int, bool]] = {}
    expected_postings: dict[object, set[int]] = {}
    expected_children: dict[int, tuple[int, ...]] = {}
    live_keys: dict[str, int] = {}
    n_nodes_seen = 0

    for ordinal in range(ifile.n_records):
        try:
            key, root_id, tree = ifile.record(ordinal)
        except Exception as exc:  # noqa: BLE001 -- auditing, report & go on
            report(f"record {ordinal}: unreadable ({exc})")
            continue
        if ordinal not in ifile.deleted:
            if key in live_keys:
                report(f"duplicate live key {key!r} "
                       f"(ordinals {live_keys[key]} and {ordinal})")
            live_keys[key] = ordinal
        next_id = root_id

        def walk(node: NestedSet, is_root: bool) -> int:
            nonlocal next_id
            node_id = next_id
            next_id += 1
            child_ids = tuple(
                walk(child, False)
                for child in sorted(node.children,
                                    key=lambda c: c.to_text()))
            expected_meta[node_id] = (ordinal, len(node.atoms),
                                      next_id - 1, is_root)
            expected_children[node_id] = child_ids
            for atom in node.atoms:
                expected_postings.setdefault(atom, set()).add(node_id)
            return node_id

        walk(tree, True)
        n_nodes_seen += tree.internal_count

    # -- 1. configuration ------------------------------------------------------
    if n_nodes_seen != ifile.n_nodes:
        report(f"config says {ifile.n_nodes} nodes, record trees have "
               f"{n_nodes_seen}")
    for ordinal in ifile.deleted:
        if not 0 <= ordinal < ifile.n_records:
            report(f"deleted set references unknown ordinal {ordinal}")

    # -- 2/3. node metadata --------------------------------------------------------
    for node_id, (record, leaf_count, max_desc,
                  is_root) in expected_meta.items():
        try:
            meta = ifile.meta(node_id)
        except Exception as exc:  # noqa: BLE001
            report(f"node {node_id}: metadata unreadable ({exc})")
            continue
        if (meta.record, meta.leaf_count, meta.max_desc, meta.is_root) != \
                (record, leaf_count, max_desc, is_root):
            report(f"node {node_id}: metadata {tuple(meta)} != expected "
                   f"{(record, leaf_count, max_desc, is_root)}")

    # -- 4/5. posting lists -----------------------------------------------------------
    frequencies = dict(ifile.frequencies())
    audit_atoms = list(expected_postings)
    if max_atoms is not None:
        audit_atoms = sorted(
            audit_atoms, key=lambda a: -len(expected_postings[a]))[:max_atoms]
    for atom in audit_atoms:
        plist = ifile.postings(atom)
        heads = [p for p, _c in plist]
        if heads != sorted(heads):
            report(f"atom {atom!r}: posting list not sorted")
        if len(set(heads)) != len(heads):
            report(f"atom {atom!r}: duplicate heads in posting list")
        actual = set(heads)
        expected_live = {node_id for node_id in expected_postings[atom]}
        if not actual >= expected_live:
            missing = sorted(expected_live - actual)[:5]
            report(f"atom {atom!r}: posting list misses nodes {missing}")
        extra = actual - expected_live
        if extra:
            report(f"atom {atom!r}: posting list has alien nodes "
                   f"{sorted(extra)[:5]}")
        for p, children in plist:
            if expected_children.get(p) != children:
                report(f"atom {atom!r}: node {p} children {children} != "
                       f"expected {expected_children.get(p)}")
                break
        df = frequencies.get(atom, 0)
        if df < len(expected_postings[atom]):
            report(f"atom {atom!r}: frequency {df} below true df "
                   f"{len(expected_postings[atom])}")
        if not ifile.deleted and df != len(expected_postings[atom]):
            report(f"atom {atom!r}: frequency {df} != df "
                   f"{len(expected_postings[atom])} with no tombstones")

    # -- 6. ALL / ZERO lists -------------------------------------------------------------
    all_heads = [p for p, _c in ifile.all_nodes()]
    if all_heads != sorted(set(all_heads)):
        report("ALL list is not sorted-unique")
    if set(all_heads) != set(expected_meta):
        report(f"ALL list covers {len(all_heads)} nodes, expected "
               f"{len(expected_meta)}")
    zero_heads = {p for p, _c in ifile.zero_leaf_nodes()}
    expected_zero = {node_id for node_id, (_r, leaf_count, _m, _f)
                     in expected_meta.items() if leaf_count == 0}
    if zero_heads != expected_zero:
        report(f"ZERO list has {len(zero_heads)} nodes, expected "
               f"{len(expected_zero)}")

    # -- 7. key map ------------------------------------------------------------------------
    for key, ordinal in live_keys.items():
        mapped = ifile.ordinal_of_key(key)
        if mapped != ordinal:
            report(f"key map: {key!r} -> {mapped}, expected {ordinal}")

    return problems


def assert_healthy(ifile: InvertedFile, **options: object) -> None:
    """Raise AssertionError listing every invariant violation found."""
    problems = check_index(ifile, **options)  # type: ignore[arg-type]
    if problems:
        summary = "\n  ".join(problems[:20])
        raise AssertionError(
            f"index integrity check found {len(problems)} problem(s):\n"
            f"  {summary}")
