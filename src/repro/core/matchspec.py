"""Query specification: embedding semantics × join type × match mode.

The two index algorithms (Sections 3.1-3.2) are parameterized by the same
small strategy surface, so the extension machinery of Section 4 lives here:

* **semantics** (Section 4.2): ``hom`` (default), ``iso``, ``homeo``;
* **join** (Section 4.1): ``subset`` (default, Equation 2), ``equality``,
  ``superset``, ``overlap`` (with its ``epsilon``);
* **mode**: ``root`` (Equation 2 -- the query must embed at the record
  root) or ``anywhere`` (the query may embed at any internal node of the
  record -- the raw relation the algorithms naturally compute).
"""

from __future__ import annotations

from dataclasses import dataclass

SEMANTICS = ("hom", "iso", "homeo")
JOINS = ("subset", "equality", "superset", "overlap")
MODES = ("root", "anywhere")


class QuerySpecError(ValueError):
    """Raised for inconsistent query specification combinations."""


@dataclass(frozen=True)
class QuerySpec:
    """Validated bundle of query-evaluation options."""

    semantics: str = "hom"
    join: str = "subset"
    epsilon: int = 1
    mode: str = "root"

    def __post_init__(self) -> None:
        if self.semantics not in SEMANTICS:
            raise QuerySpecError(
                f"unknown semantics {self.semantics!r}; expected {SEMANTICS}")
        if self.join not in JOINS:
            raise QuerySpecError(
                f"unknown join {self.join!r}; expected {JOINS}")
        if self.mode not in MODES:
            raise QuerySpecError(
                f"unknown mode {self.mode!r}; expected {MODES}")
        if self.epsilon < 1:
            raise QuerySpecError("epsilon must be >= 1")
        if self.epsilon != 1 and self.join != "overlap":
            raise QuerySpecError(
                "epsilon is only meaningful for the overlap join")
        if self.join != "subset" and self.semantics != "hom":
            raise QuerySpecError(
                f"the {self.join} join is defined for homomorphic semantics "
                f"only (got semantics={self.semantics!r})")

    @property
    def is_default(self) -> bool:
        """True for the plain containment join of Equation 2."""
        return (self.semantics, self.join, self.mode) == \
            ("hom", "subset", "root")


def validate_paper_variant(spec: QuerySpec) -> None:
    """Reject specs the paper-literal top-down variant cannot evaluate.

    Shared by the algorithm itself (for direct callers) and the query
    compiler (so the limitation is reported before execution starts).
    """
    if spec.semantics == "iso":
        raise QuerySpecError(
            "the paper-literal top-down variant does not implement the "
            "isomorphic backtracking extension; use the strict variant")
    if spec.join == "superset":
        raise QuerySpecError(
            "the paper-literal top-down variant does not support the "
            "superset join; use the strict variant")
