"""Nested sequences (lists): the ordered variation of future work (2).

Where :class:`~repro.core.model.NestedSet` forgets order and duplicates
and :class:`~repro.core.bags.NestedBag` keeps duplicates, a
:class:`NestedSeq` keeps *both*: a record is an ordered list of atoms and
sub-lists.  Text syntax uses brackets: ``[a, [b, c], a]``.

Containment becomes subsequence embedding: ``q ⊑ s`` when ``q``'s
members appear in ``s`` *in order* (not necessarily contiguously), atoms
matching equal atoms and sub-sequences matching sub-sequences that
recursively contain them.  Leftmost-greedy matching decides this exactly
(standard exchange argument: positions are totally ordered, so any valid
embedding can be pushed left match by match).

Relationship to the coarser models (tested):

* ``q ⊑seq s`` ⇒ ``q.to_bag() ⊑bag s.to_bag()`` ⇒
  ``q.to_set() ⊆_hom s.to_set()`` -- each abstraction forgets structure,
  so containment only gets easier; the set index therefore prefilters
  sequence queries soundly (:func:`seq_filter_verify`).
"""

from __future__ import annotations

from typing import Iterator, Union

from .bags import NestedBag
from .model import Atom, NestedSetError, _Parser, _atom_text, _is_atom
from .model import NestedSet

SeqMember = Union[Atom, "NestedSeq"]


class NestedSeq:
    """An immutable nested sequence (ordered, duplicates kept)."""

    __slots__ = ("_members", "_hash")

    def __init__(self, members: "tuple[SeqMember, ...] | list" = ()) -> None:
        checked = []
        for member in members:
            if _is_atom(member) or isinstance(member, NestedSeq):
                checked.append(member)
            else:
                raise NestedSetError(
                    f"sequence members must be atoms or NestedSeq, got "
                    f"{type(member).__name__}")
        self._members = tuple(checked)
        self._hash = hash(self._members)

    # -- accessors -----------------------------------------------------------

    @property
    def members(self) -> tuple:
        """The ordered members (atoms and sub-sequences)."""
        return self._members

    @property
    def atoms(self) -> tuple:
        """Atom members only, in order."""
        return tuple(m for m in self._members if _is_atom(m))

    @property
    def children(self) -> tuple:
        """Sub-sequence members only, in order."""
        return tuple(m for m in self._members
                     if isinstance(m, NestedSeq))

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[SeqMember]:
        return iter(self._members)

    @property
    def is_empty(self) -> bool:
        return not self._members

    def iter_seqs(self) -> Iterator["NestedSeq"]:
        """Preorder iteration over this sequence and nested ones."""
        stack = [self]
        while stack:
            seq = stack.pop()
            yield seq
            stack.extend(member for member in seq._members
                         if isinstance(member, NestedSeq))

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_obj(cls, obj: object) -> "NestedSeq":
        """Build from nested lists/tuples, keeping order and duplicates."""
        if isinstance(obj, NestedSeq):
            return obj
        if not isinstance(obj, (list, tuple)):
            raise NestedSetError(
                f"cannot build a nested sequence from "
                f"{type(obj).__name__} (order requires list/tuple)")
        members: list[SeqMember] = []
        for member in obj:
            if _is_atom(member):
                members.append(member)
            else:
                members.append(cls.from_obj(member))
        return cls(members)

    @classmethod
    def parse(cls, text: str) -> "NestedSeq":
        """Parse the bracketed text syntax ``[a, [b], a]``."""
        parser = _SeqParser(text)
        result = parser.parse_set()
        parser.skip_ws()
        if not parser.at_end():
            raise NestedSetError(
                f"trailing input at position {parser.pos}")
        return result

    def to_text(self) -> str:
        parts = [member.to_text() if isinstance(member, NestedSeq)
                 else _atom_text(member) for member in self._members]
        return "[" + ", ".join(parts) + "]"

    def to_bag(self) -> NestedBag:
        """Forget order, keep multiplicities."""
        return NestedBag(self.atoms,
                         [child.to_bag() for child in self.children])

    def to_set(self) -> NestedSet:
        """Forget order and multiplicities: the paper's abstraction."""
        return NestedSet(self.atoms,
                         [child.to_set() for child in self.children])

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedSeq):
            return NotImplemented
        return self._members == other._members

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        text = self.to_text()
        if len(text) > 60:
            text = text[:57] + "..."
        return f"NestedSeq({text})"


class _SeqParser(_Parser):
    """The shared parser with bracket delimiters and ordered members."""

    OPEN = "["
    CLOSE = "]"

    def __init__(self, text: str) -> None:
        super().__init__(text, builder=None)

    def _finish(self, members: list) -> NestedSeq:
        return NestedSeq(members)


def seq_contains(data: NestedSeq, query: NestedSeq) -> bool:
    """Subsequence containment ``query ⊑ data`` (leftmost-greedy)."""
    memo: dict[tuple[int, int], bool] = {}

    def covered(qseq: NestedSeq, dseq: NestedSeq) -> bool:
        key = (id(qseq), id(dseq))
        cached = memo.get(key)
        if cached is not None:
            return cached
        position = 0
        data_members = dseq.members
        ok = True
        for member in qseq.members:
            while position < len(data_members):
                candidate = data_members[position]
                position += 1
                if _is_atom(member):
                    if candidate == member:
                        break
                elif isinstance(candidate, NestedSeq) and \
                        covered(member, candidate):
                    break
            else:
                ok = False
                break
        memo[key] = ok
        return ok

    return covered(query, data)


def seq_reference_query(records, query: NestedSeq) -> list[str]:
    """Naive scan: keys of records with ``query ⊑ record``."""
    return sorted(key for key, seq in records if seq_contains(seq, query))


def seq_filter_verify(index, seq_records: dict, query: NestedSeq,
                      **query_options) -> list[str]:
    """Filter-verify sequence search over a set index.

    ``index`` is built from the ``to_set()`` projections; the set query
    is a sound prefilter (module docstring), candidates are verified with
    :func:`seq_contains`.
    """
    candidates = index.query(query.to_set(), **query_options)
    return [key for key in candidates
            if seq_contains(seq_records[key], query)]


def json_to_nested_seq(value: object) -> NestedSeq:
    """JSON -> nested sequence; array order and duplicates preserved.

    Objects map their fields in key order (sorted, for determinism) with
    the same ``k=v`` / ``@k`` scheme as the set adapter.
    """
    from ..data.json_adapter import scalar_atom
    if isinstance(value, dict):
        members: list = []
        for key in sorted(value):
            member = value[key]
            if isinstance(member, (dict, list)):
                child = json_to_nested_seq(member)
                members.append(NestedSeq((f"@{key}",) + child.members))
            else:
                members.append(f"{key}={scalar_atom(member)}")
        return NestedSeq(members)
    if isinstance(value, list):
        members = []
        for member in value:
            if isinstance(member, (dict, list)):
                members.append(json_to_nested_seq(member))
            else:
                members.append(scalar_atom(member))
        return NestedSeq(members)
    return NestedSeq([scalar_atom(value)])  # type: ignore[list-item]
