"""Set-similarity search over nested sets (future work item 4).

The paper closes by asking for "extensions to handle query relaxations
such as set similarity joins".  This module supplies the natural
relaxation of containment: a **nested Jaccard** similarity that blends
leaf overlap with a greedy best-matching of child sets, plus an
inverted-file-driven top-k search that generates candidates from the
query's atom posting lists (records sharing no atom at any level score 0
and are never fetched).

``nested_jaccard`` properties (tested):

* ``1.0`` exactly for equal sets, ``0.0`` for atom-disjoint ones,
* symmetric,
* containment-friendly: ``q ⊆_hom s`` implies a positive score whenever
  every level of ``q`` has at least one atom (an atom-free subtree shares
  nothing measurable, so it rightly scores 0).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from .invfile import InvertedFile
from .model import NestedSet


def nested_jaccard(left: NestedSet, right: NestedSet) -> float:
    """Recursive Jaccard similarity of two nested sets, in ``[0, 1]``.

    At each level the score is
    ``(|A∩B| + Σ matched-child scores) / (|A∪B| + max(#children))``
    where children are paired greedily by descending pairwise score --
    a symmetric assignment that rewards structurally aligned subtrees.
    """
    atoms_inter = len(left.atoms & right.atoms)
    atoms_union = len(left.atoms | right.atoms)
    left_children = list(left.children)
    right_children = list(right.children)
    denominator = atoms_union + max(len(left_children), len(right_children))
    if denominator == 0:
        return 1.0  # both empty: equal sets
    child_score = 0.0
    if left_children and right_children:
        pairs = sorted(
            ((nested_jaccard(lc, rc), li, ri)
             for li, lc in enumerate(left_children)
             for ri, rc in enumerate(right_children)),
            key=lambda item: -item[0])
        used_left: set[int] = set()
        used_right: set[int] = set()
        for score, li, ri in pairs:
            if li in used_left or ri in used_right or score <= 0.0:
                continue
            used_left.add(li)
            used_right.add(ri)
            child_score += score
    return (atoms_inter + child_score) / denominator


class SimilaritySearch:
    """Top-k nested-set similarity over an inverted file."""

    def __init__(self, ifile: InvertedFile,
                 candidate_limit: int = 2000) -> None:
        self._ifile = ifile
        self.candidate_limit = candidate_limit
        self.candidates_scored = 0

    def _candidate_ordinals(self, query: NestedSet) -> Iterator[int]:
        """Records sharing atoms with the query, hottest-overlap first.

        Candidate weight = number of (atom, node) postings of the query's
        atoms falling in the record; records sharing nothing never appear
        (their nested Jaccard is 0).
        """
        weights: Counter[int] = Counter()
        for atom in query.all_atoms():
            for node_id, _children in self._ifile.postings(atom):
                meta = self._ifile.meta(node_id)
                if meta.record not in self._ifile.deleted:
                    weights[meta.record] += 1
        for ordinal, _weight in weights.most_common(self.candidate_limit):
            yield ordinal

    def top_k(self, query: object, k: int = 10
              ) -> list[tuple[str, float]]:
        """The ``k`` most similar records as ``(key, score)`` pairs.

        Ties break on record key for determinism.  Exact with respect to
        the candidate set; records beyond ``candidate_limit`` overlap
        ranks are not scored (raise the limit for exhaustive search).
        """
        from .engine import as_nested_set
        tree = as_nested_set(query)
        if k < 1:
            raise ValueError("k must be >= 1")
        scored: list[tuple[float, str]] = []
        self.candidates_scored = 0
        for ordinal in self._candidate_ordinals(tree):
            key, _root, candidate = self._ifile.record(ordinal)
            scored.append((nested_jaccard(tree, candidate), key))
            self.candidates_scored += 1
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [(key, score) for score, key in scored[:k]]


def top_k_similar(ifile: InvertedFile, query: object, k: int = 10,
                  candidate_limit: int = 2000) -> list[tuple[str, float]]:
    """One-shot convenience wrapper around :class:`SimilaritySearch`."""
    return SimilaritySearch(ifile, candidate_limit).top_k(query, k)
