"""Collection statistics and query cost estimation.

The paper's future-work list opens with skew: "our empirical study showed
that skewed data is challenging for our algorithms.  Incorporation ... of
recent results on efficiently dealing with list intersections and data
skew should be investigated."  The statistics here are the substrate for
that: per-atom document frequencies (already maintained by the index for
the frequency cache), derived selectivities, and a simple cost model that
the planner (:mod:`repro.core.planner`) uses to order the evaluation of
query nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import Atom, NestedSet


@dataclass(frozen=True)
class AtomStats:
    """Distributional summary of the collection's atom frequencies."""

    distinct_atoms: int
    total_postings: int
    max_df: int
    mean_df: float
    skew_ratio: float  # share of postings owned by the hottest 1% of atoms


class CollectionStats:
    """Frequency-derived statistics over one indexed collection."""

    def __init__(self, frequencies: list[tuple[Atom, int]],
                 n_nodes: int, n_records: int,
                 block_size: int = 0) -> None:
        self._df = dict(frequencies)
        self.n_nodes = n_nodes
        self.n_records = n_records
        #: Postings per block of the index's blocked list format (0 when
        #: the index uses a legacy format); feeds the block cost model.
        self.block_size = block_size
        self._total_postings = sum(self._df.values())
        self._ranked = sorted(self._df.values(), reverse=True)

    @classmethod
    def from_inverted_file(cls, ifile: InvertedFile) -> "CollectionStats":
        """Statistics over the *live* collection.

        Uses the tombstone-adjusted frequencies so selectivity estimates
        (and the planner's ordering decisions) don't drift as deletes
        accumulate between compactions.
        """
        return cls(ifile.live_frequencies(), ifile.n_nodes,
                   ifile.n_live_records, block_size=ifile.block_size)

    # -- per-atom ------------------------------------------------------------

    def document_frequency(self, atom: Atom) -> int:
        """Number of internal nodes owning a leaf ``atom`` (list length)."""
        return self._df.get(atom, 0)

    def selectivity(self, atom: Atom) -> float:
        """Fraction of internal nodes containing the atom (0 = absent)."""
        if self.n_nodes == 0:
            return 0.0
        return self.document_frequency(atom) / self.n_nodes

    # -- per-query-node ---------------------------------------------------------

    def estimate_candidates(self, qnode: NestedSet,
                            spec: QuerySpec = QuerySpec()) -> float:
        """Expected candidate count for one query node under the join.

        ``subset``/``equality``: the intersection is at most the rarest
        atom's list (the standard upper bound; independence would sharpen
        it, but the bound is what ordering decisions need).
        ``superset``/``overlap``: the multiset union, at most the sum.
        """
        dfs = [self.document_frequency(atom) for atom in qnode.atoms]
        if spec.join in ("subset", "equality"):
            if not dfs:
                return float(self.n_nodes)
            return float(min(dfs))
        if not dfs:
            return 0.0 if spec.join == "overlap" else float(self.n_nodes)
        return float(sum(dfs))

    def estimate_node_cost(self, qnode: NestedSet,
                           spec: QuerySpec = QuerySpec()) -> float:
        """Work to *evaluate* a node: decode + intersect its atoms' lists."""
        return float(sum(self.document_frequency(atom)
                         for atom in qnode.atoms))

    def estimate_blocks(self, qnode: NestedSet,
                        spec: QuerySpec = QuerySpec()) -> float:
        """Expected block decodes to intersect a node's atom lists.

        Models the galloping kernel: the rarest list decodes fully
        (``ceil(df_min / block_size)`` blocks) and every other list
        decodes at most one block per probe and at most all its blocks
        -- ``min(df_min, ceil(df / block_size))``.  Zero on indexes
        without the blocked format; the planner uses this as a
        cost tie-break, so result invariance is untouched.
        """
        if not self.block_size:
            return 0.0
        dfs = sorted(self.document_frequency(atom) for atom in qnode.atoms)
        if not dfs:
            return 0.0
        rare = dfs[0]
        blocks = math.ceil(rare / self.block_size)
        for df in dfs[1:]:
            blocks += min(rare, math.ceil(df / self.block_size))
        return float(blocks)

    def estimate_query_cost(self, query: NestedSet,
                            spec: QuerySpec = QuerySpec()) -> float:
        """Additive cost over all query nodes (the O(|q|·|S|) shape)."""
        return sum(self.estimate_node_cost(node, spec)
                   for node in query.iter_sets())

    # -- collection-level ------------------------------------------------------------

    def atom_stats(self) -> AtomStats:
        """Summary used by EXPERIMENTS.md and the skew diagnostics."""
        if not self._ranked:
            return AtomStats(0, 0, 0, 0.0, 0.0)
        hot = max(1, len(self._ranked) // 100)
        hot_share = sum(self._ranked[:hot]) / self._total_postings \
            if self._total_postings else 0.0
        return AtomStats(
            distinct_atoms=len(self._ranked),
            total_postings=self._total_postings,
            max_df=self._ranked[0],
            mean_df=self._total_postings / len(self._ranked),
            skew_ratio=hot_share,
        )

    def hottest(self, count: int = 10) -> list[tuple[Atom, int]]:
        """The ``count`` most frequent atoms with their frequencies."""
        ranked = sorted(self._df.items(),
                        key=lambda item: (-item[1], str(item[0])))
        return ranked[:count]
