"""Candidate generation for a query node, per join type (Section 4.1).

Both algorithms evaluate, for every internal query node ``n``, a set of
candidate data nodes.  The paper's join-type extensions differ exactly in
how this set is produced from the inverted lists of ``n``'s leaf atoms:

* ``subset``   -- intersection over the atoms' lists (Algorithm 2 line 8 /
  Algorithm 4 line 11): candidates contain *all* of ``n``'s leaves;
* ``equality`` -- as subset, then drop candidates whose leaf count differs
  from ``|ℓ(n)|``;
* ``superset`` -- multiset union over the atoms' lists, keeping candidates
  whose multiplicity equals their leaf count (all of the candidate's leaves
  lie inside ``ℓ(n)``), plus every node with no leaves at all;
* ``overlap``  -- multiset union keeping candidates with multiplicity at
  least ``ε``.

Query nodes with no leaf atoms fall back to the ``ALL`` / ``ZERO`` lists
maintained by the index (the empty-set extension the paper sketches at the
end of Section 3).
"""

from __future__ import annotations

from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .postings import PostingList, multiset_union


def node_candidates(qnode: NestedSet, ifile: InvertedFile,
                    spec: QuerySpec) -> PostingList:
    """Candidate data nodes at which ``qnode`` may embed, per ``spec.join``."""
    atoms = list(qnode.atoms)
    if spec.join == "subset":
        if not atoms:
            return ifile.all_nodes()
        return ifile.intersect_atoms(atoms)
    if spec.join == "equality":
        if not atoms:
            return ifile.zero_leaf_nodes()
        base = ifile.intersect_atoms(atoms)
        want = len(atoms)
        return PostingList([(p, children) for p, children in base
                            if ifile.leaf_count(p) == want])
    if spec.join == "superset":
        entries: list[tuple[int, tuple[int, ...]]] = []
        if atoms:
            union = multiset_union([ifile.postings(atom) for atom in atoms])
            entries = [(p, children) for p, children, count in union
                       if count == ifile.leaf_count(p)]
        # Nodes without leaf children never occur in any atom list but
        # trivially satisfy ℓ(p) ⊆ ℓ(n); merge them in (id-disjoint sets).
        merged = sorted(entries + list(ifile.zero_leaf_nodes().entries))
        return PostingList(merged)
    if spec.join == "overlap":
        if not atoms:
            return PostingList()
        union = multiset_union([ifile.postings(atom) for atom in atoms])
        return PostingList([(p, children) for p, children, count in union
                            if count >= spec.epsilon])
    raise ValueError(f"unknown join {spec.join!r}")
