"""Whole-query result caching with update invalidation.

The paper's Section 3.3 cache operates on posting lists; the future-work
list (6) suggests caching "with respect to an evolving query workload".
:class:`ResultCache` is the coarsest point on that spectrum: an LRU map
from ``(query, evaluation options)`` to the final key list.  It pays off
when a workload repeats whole queries (dashboards, polling agents) and
is trivially correct because nested sets are immutable values -- the only
invalidation events are index mutations.

Under MVCC snapshot reads the engine scopes every entry to the snapshot
version it was computed at (:meth:`ResultCache.at_version`): a commit
starts answering under a fresh version key, so nothing is invalidated
for in-flight readers, stale entries age out of the LRU, and -- the race
the old invalidate-on-write protocol had -- a slow reader finishing
*after* a delete can only re-populate its own (old) version's entry,
never the answer served to new readers.  :meth:`invalidate_all` remains
for stores without version support.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from .model import NestedSet


@dataclass
class ResultCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


#: Cache key: the query value plus every option that affects the answer.
CacheKey = tuple


def make_key(query: NestedSet, algorithm: str, semantics: str, join: str,
             epsilon: int, mode: str, *, planner: str | None = None,
             use_bloom: bool = False) -> CacheKey:
    """Options are part of the key; different algorithms return equal
    results but are kept distinct so stats reflect what actually ran.

    ``planner`` and ``use_bloom`` never change the answer either, but
    keying them keeps the hit statistics honest -- and lets planner/Bloom
    queries use the cache at all instead of silently bypassing it.
    """
    return (query, algorithm, semantics, join, epsilon, mode, planner,
            use_bloom)


class ResultCache:
    """LRU cache of complete query results."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = ResultCacheStats()
        # Concurrent readers share one cache under the query service;
        # the lock keeps LRU bookkeeping and eviction race-free.
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, list[str]] = OrderedDict()

    def get(self, key: CacheKey) -> list[str] | None:
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return list(cached)  # defensive copy: callers may mutate

    def put(self, key: CacheKey, result: list[str]) -> None:
        with self._lock:
            self._entries[key] = list(result)
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_all(self) -> None:
        """Drop everything (any index mutation may change any answer)."""
        with self._lock:
            if self._entries:
                self.stats.invalidations += 1
            self._entries.clear()

    def at_version(self, version: int) -> "VersionedResultCache":
        """A view whose entries are scoped to one snapshot version."""
        return VersionedResultCache(self, version)

    def __len__(self) -> int:
        return len(self._entries)


class VersionedResultCache:
    """Version-scoped facade over a shared :class:`ResultCache`.

    Execution contexts built from a snapshot use this view, so a result
    computed at version ``v`` is only ever served to readers pinned at
    ``v`` -- the cache needs no invalidation on commit at all.
    """

    __slots__ = ("_cache", "version")

    def __init__(self, cache: ResultCache, version: int) -> None:
        self._cache = cache
        self.version = version

    @property
    def stats(self) -> ResultCacheStats:
        return self._cache.stats

    def get(self, key: CacheKey) -> list[str] | None:
        return self._cache.get((self.version,) + tuple(key))

    def put(self, key: CacheKey, result: list[str]) -> None:
        self._cache.put((self.version,) + tuple(key), result)

    def invalidate_all(self) -> None:
        self._cache.invalidate_all()

    def __len__(self) -> int:
        return len(self._cache)
