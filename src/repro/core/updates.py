"""Incremental index maintenance: insert, delete, compact.

The paper builds its inverted files offline; a library a downstream user
adopts also needs online updates.  The design:

* **insert** -- new internal nodes receive the next preorder ids (so the
  global preorder/interval invariants keep holding: a fresh record's
  interval lies entirely after every existing one).  Affected posting
  lists are read-modified-appended (new ids sort last, so appends keep
  lists sorted); the partial tail blocks of the node-metadata and
  ALL/ZERO lists are extended in place.
* **delete** -- a tombstone: the record ordinal joins the persisted
  deleted set and every result-mapping path filters it.  Posting lists
  keep the dead entries until compaction (the classic deferred-delete
  trade: O(1) deletes, slight read amplification).
* **compact** -- rebuilds a fresh index from the live records, dropping
  tombstoned postings and restoring exact statistics.

Statistics drift: after deletes, document frequencies still count dead
postings (they are refreshed on compact); after inserts they are exact
because :meth:`IndexWriter.flush` rewrites the frequency table.
"""

from __future__ import annotations

from ..storage.codec import (
    append_blocked,
    encode_blocked,
    encode_str,
    encode_uint_list,
    encode_varint,
)
from .invfile import (
    InvertedFile,
    InvertedFileError,
    LIST_BLOCK,
    META_BLOCK,
    atom_token,
)
from .model import Atom, NestedSet
from .postings import PostingList
from .segments import (
    BLOCK_FORMATS,
    FORMAT_PLAIN,
    SegmentInfo,
    decode_header,
    decode_plain,
    encode_header,
    encode_plain,
    encode_segmented,
    value_format,
)

# Private layout constants shared with invfile (same store, same keys).
from .invfile import (  # noqa: E402  (grouped for clarity)
    _ALL_PREFIX,
    _ATOM_PREFIX,
    _CONFIG_KEY,
    _DEAD_COUNT_KEY,
    _DELETED_KEY,
    _FLAG_ROOT,
    _FREQ_KEY,
    _KEYMAP_PREFIX,
    _META_ENTRY,
    _META_PREFIX,
    _RECORD_PREFIX,
    _ZERO_PREFIX,
)


class UpdateError(Exception):
    """Raised for invalid update operations (duplicate key, missing key)."""


class IndexWriter:
    """Applies record-level updates to an open :class:`InvertedFile`.

    ``on_mutate`` replaces destructive cache invalidation with a
    notification: the engine's MVCC read path passes a callback that
    bumps modification epochs (:mod:`repro.core.snapshot`) instead of
    clearing the shared list/block caches, so commits invalidate
    nothing for in-flight readers.  Without it (standalone use) the
    writer clears the caches itself, as before.
    """

    def __init__(self, ifile: InvertedFile,
                 on_mutate=None) -> None:
        self._ifile = ifile
        self._store = ifile.store
        self._freq_dirty = False
        self._df_delta: dict[Atom, int] = {}
        self._on_mutate = on_mutate
        #: Deferred ALL/ZERO appends (``insert(flush_stats=False)``):
        #: node ids grow monotonically, so extending keeps the global
        #: sort and one tail-block rewrite serves the whole batch.
        self._pending_all: list[tuple[int, tuple[int, ...]]] = []
        self._pending_zero: list[tuple[int, tuple[int, ...]]] = []

    # -- insert -----------------------------------------------------------

    def insert(self, key: str, value: object, *,
               flush_stats: bool = True) -> int:
        """Add one record; returns its ordinal.

        Raises :class:`UpdateError` when a live record already uses the
        key.  ``flush_stats=False`` defers the frequency-table rewrite
        -- an O(vocabulary) encode that dominates per-record cost on
        large corpora -- to the caller, who MUST call :meth:`flush`
        before the enclosing commit group closes (each rewrite fully
        supersedes the previous, so a batch needs exactly one).
        """
        from .engine import as_nested_set
        ifile = self._ifile
        tree = as_nested_set(value)
        if ifile.ordinal_of_key(key) is not None:
            raise UpdateError(f"a live record with key {key!r} exists")
        ordinal = ifile.n_records
        first_id = ifile.n_nodes

        postings: dict[Atom, list[tuple[int, tuple[int, ...]]]] = {}
        all_nodes: list[tuple[int, tuple[int, ...]]] = []
        zero_leaf: list[tuple[int, tuple[int, ...]]] = []
        meta_entries: list[bytes] = []
        next_id = first_id

        def build(node: NestedSet, is_root: bool) -> int:
            nonlocal next_id
            node_id = next_id
            next_id += 1
            meta_entries.append(b"")
            child_ids = tuple(
                build(child, False)
                for child in sorted(node.children,
                                    key=lambda c: c.to_text()))
            max_desc = next_id - 1
            meta_entries[node_id - first_id] = _META_ENTRY.pack(
                ordinal, len(node.atoms), max_desc,
                _FLAG_ROOT if is_root else 0)
            posting = (node_id, child_ids)
            for atom in node.atoms:
                postings.setdefault(atom, []).append(posting)
            all_nodes.append(posting)
            if not node.atoms:
                zero_leaf.append(posting)
            return node_id

        root_id = build(tree, True)

        # All store writes for one logical insert form one WAL commit
        # group: a crash leaves the index wholly pre- or post-insert.
        with self._store.transaction(b"insert"):
            # 1. posting lists: new ids exceed all existing ids, so
            #    sorted append preserves order (both physical formats).
            for atom, entries in postings.items():
                entries.sort()
                self._append_postings(atom, entries)
                self._df_delta[atom] = self._df_delta.get(atom, 0) \
                    + len(entries)
                self._freq_dirty = True

            # 2. ALL / ZERO blocks: extend the tail block, add new
            #    ones.  Deferred mode batches the appends instead --
            #    the tail-block decode/re-encode is O(block size), and
            #    paying it once per group rather than once per record
            #    is a large share of streaming-ingest throughput.
            if flush_stats:
                ifile._n_all_blocks = _append_blocks(
                    self._store, _ALL_PREFIX, ifile._n_all_blocks,
                    sorted(all_nodes))
                ifile._n_zero_blocks = _append_blocks(
                    self._store, _ZERO_PREFIX, ifile._n_zero_blocks,
                    sorted(zero_leaf))
            else:
                self._pending_all.extend(sorted(all_nodes))
                self._pending_zero.extend(sorted(zero_leaf))

            # 3. node metadata: fill the partial tail block.
            _append_meta(self._store, ifile.n_nodes, meta_entries)

            # 4. record table + key map.
            blob = encode_str(key) + encode_varint(root_id) + \
                encode_str(tree.to_text())
            self._store.put(_RECORD_PREFIX + encode_varint(ordinal), blob)
            self._store.put(_KEYMAP_PREFIX + key.encode("utf-8"),
                            encode_varint(ordinal))

            # 5. config, and the frequency table *inside* the group --
            #    deferring it would add a third on-disk state (insert
            #    applied, stats stale) that recovery cannot name.
            ifile.n_records += 1
            ifile.n_nodes = next_id
            self._write_config()
            if flush_stats:
                self.flush()
        self._invalidate(postings)
        return ordinal

    def _append_postings(self, atom: Atom,
                         entries: list[tuple[int, tuple[int, ...]]]) -> None:
        """Extend one atom's list, honoring its physical format."""
        ifile = self._ifile
        token = atom_token(atom).encode("utf-8")
        store_key = _ATOM_PREFIX + token
        raw = self._store.get(store_key)
        segment_size = ifile.segment_size

        def segment_key(seg_no: int) -> bytes:
            return b"G:" + token + b":" + encode_varint(seg_no)

        if raw is not None and value_format(raw) in BLOCK_FORMATS:
            # Blocked/packed: new ids sort past the tail, so only the
            # partial tail block is re-encoded; full blocks keep their
            # bytes -- and their format (0x02 values stay 0x02 under
            # mutation; only compaction upgrades them to packed).
            self._store.put(store_key, append_blocked(raw, entries))
            return
        if raw is None and ifile.block_size:
            self._store.put(store_key,
                            encode_blocked(entries, ifile.block_size))
            return
        if raw is None or value_format(raw) == FORMAT_PLAIN:
            existing = decode_plain(raw) if raw is not None else []
            merged = existing + entries
            if segment_size and len(merged) > segment_size:
                header, blobs = encode_segmented(merged, segment_size)
                self._store.put(store_key, header)
                for seg_no, blob in enumerate(blobs):
                    self._store.put(segment_key(seg_no), blob)
            else:
                self._store.put(store_key, encode_plain(merged))
            return
        # Segmented: top up the tail segment, then spill into new ones.
        header = decode_header(raw)
        last = len(header.segments) - 1
        tail_raw = self._store.get(segment_key(last))
        if tail_raw is None:
            raise InvertedFileError(
                f"missing tail segment of atom {atom!r}")
        tail = list(PostingList.decode(tail_raw).entries) + entries
        chunks = [tail[start:start + segment_size]
                  for start in range(0, len(tail), segment_size)]
        infos = list(header.segments[:last])
        for offset, chunk in enumerate(chunks):
            infos.append(SegmentInfo(chunk[0][0], chunk[-1][0]))
            self._store.put(segment_key(last + offset),
                            PostingList(chunk).encode())
        self._store.put(store_key,
                        encode_header(header.total + len(entries), infos))

    def insert_many(self, records) -> list[int]:
        """Insert several records; returns their ordinals."""
        return [self.insert(key, value) for key, value in records]

    # -- delete --------------------------------------------------------------

    def delete(self, key: str) -> bool:
        """Tombstone the live record with ``key``; False when absent.

        Beyond the tombstone itself, the record's per-atom posting counts
        move into the persisted dead-count table, so live document
        frequencies (:meth:`InvertedFile.live_frequencies`) and the
        rarest-atom candidate ordering stay accurate until compaction.
        """
        ifile = self._ifile
        ordinal = ifile.ordinal_of_key(key)
        if ordinal is None:
            return False
        _key, _root, tree = ifile.record(ordinal)
        dead_atoms: set[Atom] = set()
        with self._store.transaction(b"delete"):
            ifile.deleted.add(ordinal)
            self._store.put(_DELETED_KEY,
                            encode_uint_list(sorted(ifile.deleted)))
            self._store.delete(_KEYMAP_PREFIX + key.encode("utf-8"))
            ifile._key_cache.pop(ordinal, None)
            for node in tree.iter_sets():
                for atom in node.atoms:
                    dead_atoms.add(atom)
                    ifile.dead_counts[atom] = \
                        ifile.dead_counts.get(atom, 0) + 1
            self._write_dead_counts()
            # A delete leaves every posting list's bytes untouched; only
            # the tombstone set and dead counts change, and consumers
            # read those from index attributes (or their own pinned
            # store), not from the list/block caches.  The standalone
            # invalidation path still drops the atoms' cached lists so
            # live-frequency ordering re-reads fresh lengths.  Runs
            # inside the transaction: the epoch hook must stamp the
            # *upcoming* commit version, i.e. fire before the commit.
            self._invalidate(dict.fromkeys(dead_atoms),
                             postings_changed=False)
        return True

    def _write_dead_counts(self) -> None:
        counts = self._ifile.dead_counts
        blob = bytearray(encode_varint(len(counts)))
        for atom, count in sorted(counts.items(),
                                  key=lambda item: atom_token(item[0])):
            blob += encode_str(atom_token(atom))
            blob += encode_varint(count)
        self._store.put(_DEAD_COUNT_KEY, bytes(blob))

    # -- compact ----------------------------------------------------------------

    def compact(self, *, storage: str = "memory",
                path: str | None = None,
                store=None) -> InvertedFile:
        """Rebuild a fresh index from the live records.

        Returns the new :class:`InvertedFile`; the old one stays open and
        untouched (swap at the engine level).  ``store`` accepts a
        pre-opened destination (a sharded index compacts every shard into
        namespaced views of one fresh base store).
        """
        self.flush()
        ifile = self._ifile
        live = ((key, tree) for _ordinal, key, _root, tree
                in ifile.iter_records())
        return InvertedFile.build(live, storage=storage, path=path,
                                  store=store,
                                  segment_size=ifile.segment_size,
                                  block_size=ifile.block_size)

    # -- statistics maintenance ------------------------------------------------------

    def flush(self) -> None:
        """Persist deferred batch state: ALL/ZERO appends + frequency
        table.  After ``insert(flush_stats=False)`` this MUST run inside
        the same commit group (the engine's batch path does)."""
        if self._pending_all or self._pending_zero:
            ifile = self._ifile
            ifile._n_all_blocks = _append_blocks(
                self._store, _ALL_PREFIX, ifile._n_all_blocks,
                self._pending_all)
            ifile._n_zero_blocks = _append_blocks(
                self._store, _ZERO_PREFIX, ifile._n_zero_blocks,
                self._pending_zero)
            self._pending_all = []
            self._pending_zero = []
        if not self._freq_dirty:
            return
        df = dict(self._ifile.frequencies())
        for atom, delta in self._df_delta.items():
            df[atom] = df.get(atom, 0) + delta
        blob = bytearray(encode_varint(len(df)))
        for atom, count in sorted(df.items(),
                                  key=lambda item: (-item[1],
                                                    atom_token(item[0]))):
            blob += encode_str(atom_token(atom))
            blob += encode_varint(count)
        self._store.put(_FREQ_KEY, bytes(blob))
        self._df_delta.clear()
        self._freq_dirty = False

    def _write_config(self) -> None:
        # Must rewrite *every* config field: dropping the trailing
        # segment_size/block_size varints here would silently demote a
        # segmented or blocked index to "plain" on the next open.
        ifile = self._ifile
        config = encode_varint(ifile.n_records) + \
            encode_varint(ifile.n_nodes) + \
            encode_varint(ifile._n_all_blocks) + \
            encode_varint(ifile._n_zero_blocks) + \
            encode_varint(ifile.segment_size) + \
            encode_varint(ifile.block_size)
        self._store.put(_CONFIG_KEY, config)

    def _invalidate(self, touched_postings: dict, *,
                    postings_changed: bool = True) -> None:
        ifile = self._ifile
        ifile._all_nodes = None
        ifile._zero_leaf = None
        ifile._meta_cache.clear()
        tokens = {atom_token(atom) for atom in touched_postings}
        if self._on_mutate is not None:
            # Epoch-based caching: nothing to clear.  Deletes are pure
            # tombstones (posting bytes unchanged), so they report
            # postings_changed=False and bump no epochs either.
            self._on_mutate(tokens, postings_changed)
            return
        ifile.cache.clear()
        ifile.block_cache.invalidate(tokens)


def _append_blocks(store, prefix: bytes, n_blocks: int,
                   entries: list[tuple[int, tuple[int, ...]]]) -> int:
    """Extend a blocked posting list; returns the new block count."""
    if not entries:
        return n_blocks
    pending = list(entries)
    if n_blocks:
        tail_key = prefix + encode_varint(n_blocks - 1)
        raw = store.get(tail_key)
        if raw is None:
            raise InvertedFileError(f"missing tail block under {prefix!r}")
        tail = list(PostingList.decode(raw).entries)
        room = LIST_BLOCK - len(tail)
        if room > 0:
            tail.extend(pending[:room])
            pending = pending[room:]
            store.put(tail_key, PostingList(tail).encode())
    while pending:
        chunk, pending = pending[:LIST_BLOCK], pending[LIST_BLOCK:]
        store.put(prefix + encode_varint(n_blocks),
                  PostingList(chunk).encode())
        n_blocks += 1
    return n_blocks


def _append_meta(store, first_id: int, entries: list[bytes]) -> None:
    """Append node-metadata entries starting at node id ``first_id``."""
    index = 0
    while index < len(entries):
        node_id = first_id + index
        block_no, offset = divmod(node_id, META_BLOCK)
        block_key = _META_PREFIX + encode_varint(block_no)
        raw = store.get(block_key) or b""
        expected = offset * _META_ENTRY.size
        if len(raw) != expected:
            raise InvertedFileError(
                f"metadata block {block_no} has {len(raw)} bytes, "
                f"expected {expected} before append")
        take = min(len(entries) - index, META_BLOCK - offset)
        raw += b"".join(entries[index:index + take])
        store.put(block_key, raw)
        index += take
