"""PRETTI-style prefix-tree evaluation for collection×collection joins.

The per-query join strategies evaluate every member of Q independently:
each query node re-intersects its atoms' posting lists from scratch, so
a workload whose queries share structure streams the same lists over
and over.  "Set Containment Join Revisited" (Bouros et al.) shows the
classic fix: order every set by one global atom order, arrange the
ordered sets in a **prefix tree**, and evaluate the indexed side once
per *distinct trie node* -- the intersection for a node extends its
parent's intersection by exactly one posting list, so shared prefixes
are paid for once no matter how many queries contain them.

This module supplies that machinery to :mod:`repro.core.join`:

* :class:`PrefixTree` -- the trie over query-node atom sets.  Atoms are
  ordered rare-first (ascending live document frequency, token
  tiebreak), matching the rarest-first discipline of
  :meth:`~repro.core.invfile.InvertedFile.intersect_atoms`, so partial
  intersections shrink as early as possible and an empty prefix prunes
  the whole subtree without touching the index.
* :class:`SharedCandidates` -- candidate generation with cross-query
  sharing for one :class:`~repro.core.matchspec.QuerySpec`.  Subset and
  equality joins ride the trie (equality adds the memoized leaf-count
  post-filter); superset/overlap and leafless nodes fall back to a
  per-distinct-atom-set memo over :func:`~repro.core.candidates
  .node_candidates` -- weaker sharing (deduplication instead of prefix
  reuse), but the same exact semantics.
* :func:`prefix_match_nodes` / :func:`prefix_join_lists` -- the
  bottom-up evaluation over the workload, structured exactly like
  :func:`~repro.core.batch.memoized_match_nodes` so whole-subtree memo
  hits and the superset-aware short-circuit behave identically.
* :func:`choose_strategy` -- the adaptive dispatcher: estimates the
  df-weighted posting volume a per-query loop would stream against the
  volume the trie would stream (distinct edges only) and picks the
  prefix tree when the workload is large and the sharing ratio clears
  a threshold.

Evaluation cost shows up in the context's
:class:`~repro.core.exec.context.ExecCounters`: ``prefix_nodes`` (trie
nodes built), ``prefix_streams`` (posting lists actually fetched and
intersected), ``prefix_reused`` (candidate requests served from an
already-evaluated node or memo entry).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from .candidates import node_candidates
from .invfile import InvertedFile, atom_token
from .matchspec import QuerySpec
from .model import Atom, NestedSet
from .postings import PostingList, intersect
from .structural import filter_candidates

if TYPE_CHECKING:  # typing only
    from .exec.context import ExecutionContext
    from .stats import CollectionStats

#: Below this workload size the trie cannot amortize its bookkeeping.
MIN_PREFIX_QUERIES = 16

#: Minimum df-weighted sharing ratio for the dispatcher to pick "prefix".
#: Random 3-atom sets over a wide alphabet still collide on ~0.2 of
#: their first-edge volume at 10k queries, so the bar sits above that
#: incidental overlap: routing "prefix" must be backed by designed
#: sharing, not birthday-paradox collisions.
SHARING_THRESHOLD = 0.25


class PrefixNode:
    """One trie node: the atom labeling its incoming edge, plus the
    lazily evaluated intersection of every list on its root path."""

    __slots__ = ("atom", "parent", "children", "plist")

    def __init__(self, atom: Atom | None = None,
                 parent: "PrefixNode | None" = None) -> None:
        self.atom = atom
        self.parent = parent
        self.children: dict[Atom, PrefixNode] = {}
        self.plist: PostingList | None = None


class PrefixTree:
    """Trie over atom sets, sharing posting-list intersections.

    One tree serves one inverted file (node ids and frequencies are
    shard-local, so sharded joins build one tree per shard).  Counters,
    when given, must expose the ``prefix_*`` attributes of
    :class:`~repro.core.exec.context.ExecCounters`.
    """

    def __init__(self, ifile: InvertedFile, counters=None) -> None:
        self._ifile = ifile
        self._counters = counters
        self._root = PrefixNode()
        self._terminals: dict[frozenset, PrefixNode] = {}
        self._order: dict[Atom, tuple[int, str]] = {}
        self.n_nodes = 0

    def _key(self, atom: Atom) -> tuple[int, str]:
        """Global atom order: ascending live df, token tiebreak."""
        key = self._order.get(atom)
        if key is None:
            key = (self._ifile.live_list_length(atom), atom_token(atom))
            self._order[atom] = key
        return key

    def _insert(self, atoms: frozenset) -> PrefixNode:
        node = self._root
        counters = self._counters
        for atom in sorted(atoms, key=self._key):
            child = node.children.get(atom)
            if child is None:
                child = PrefixNode(atom, node)
                node.children[atom] = child
                self.n_nodes += 1
                if counters is not None:
                    counters.prefix_nodes += 1
            node = child
        return node

    def candidates(self, atoms: frozenset) -> PostingList:
        """Heads containing every atom (the subset-join intersection)."""
        if not atoms:
            raise ValueError("prefix tree nodes need at least one atom")
        terminal = self._terminals.get(atoms)
        if terminal is None:
            terminal = self._insert(atoms)
            self._terminals[atoms] = terminal
        if terminal.plist is not None:
            if self._counters is not None:
                self._counters.prefix_reused += 1
            return terminal.plist
        return self._evaluate(terminal)

    def _evaluate(self, terminal: PrefixNode) -> PostingList:
        # Walk up to the deepest already-evaluated ancestor, then extend
        # its intersection downward one posting list per step.  An empty
        # partial intersection propagates without touching the index.
        pending: list[PrefixNode] = []
        node = terminal
        while node is not self._root and node.plist is None:
            pending.append(node)
            node = node.parent
        counters = self._counters
        for step in reversed(pending):
            parent = step.parent
            if parent is not self._root and len(parent.plist) == 0:
                step.plist = parent.plist
                continue
            fetched = self._ifile.postings(step.atom)
            if counters is not None:
                counters.prefix_streams += 1
            if parent is self._root:
                step.plist = fetched
            else:
                step.plist = intersect([parent.plist, fetched])
        return terminal.plist


class SharedCandidates:
    """Per-workload candidate provider for one spec.

    Subset/equality nodes with atoms go through the prefix tree;
    everything else (superset, overlap, leafless nodes) shares through
    a per-distinct-atom-set memo over :func:`node_candidates`.
    """

    def __init__(self, ctx: "ExecutionContext", spec: QuerySpec) -> None:
        self._ifile = ctx.ifile
        self._counters = ctx.counters
        self._spec = spec
        self.tree = PrefixTree(ctx.ifile, ctx.counters) \
            if spec.join in ("subset", "equality") else None
        self._memo: dict[frozenset, PostingList] = {}

    def candidates(self, qnode: NestedSet) -> PostingList:
        atoms = qnode.atoms
        spec = self._spec
        if self.tree is not None and atoms:
            if spec.join == "subset":
                return self.tree.candidates(atoms)
            # equality: trie intersection plus the leaf-count filter,
            # memoized so duplicate atom sets skip the re-filter (and
            # the trie's reuse counter bumps exactly once per request).
            cached = self._memo.get(atoms)
            if cached is not None:
                self._counters.prefix_reused += 1
                return cached
            base = self.tree.candidates(atoms)
            want = len(atoms)
            leaf_count = self._ifile.leaf_count
            out = PostingList([(p, children) for p, children in base
                               if leaf_count(p) == want])
            self._memo[atoms] = out
            return out
        cached = self._memo.get(atoms)
        if cached is not None:
            self._counters.prefix_reused += 1
            return cached
        out = node_candidates(qnode, self._ifile, spec)
        # One stream per atom list the union/fallback touched (the
        # ALL/ZERO list for leafless nodes counts as one).
        self._counters.prefix_streams += len(atoms) or 1
        self._memo[atoms] = out
        return out


def prefix_match_nodes(query: NestedSet, ctx: "ExecutionContext",
                       spec: QuerySpec, provider: SharedCandidates,
                       memo: dict[NestedSet, frozenset]) -> frozenset:
    """Node ids at which ``query`` embeds, candidates via the provider.

    Mirrors :func:`repro.core.batch.memoized_match_nodes` exactly --
    same post-order over distinct subtrees, same whole-subtree memo,
    same superset-aware unsatisfiable-child short-circuit -- with
    candidate generation swapped for the shared provider.
    """
    cached = memo.get(query)
    if cached is not None:
        ctx.counters.subqueries_reused += 1
        return cached
    child_sets = [set(prefix_match_nodes(child, ctx, spec, provider, memo))
                  for child in sorted(query.children,
                                      key=lambda c: c.to_text())]
    if spec.join != "superset" and any(not hits for hits in child_sets):
        result: frozenset = frozenset()
    else:
        cand = provider.candidates(query)
        result = frozenset(
            filter_candidates(cand, child_sets, ctx.ifile, spec).heads())
    memo[query] = result
    ctx.counters.subqueries_evaluated += 1
    return result


def prefix_join_lists(queries: Sequence[NestedSet],
                      ctx: "ExecutionContext",
                      spec: QuerySpec) -> list[list[str]]:
    """Evaluate a whole workload against one context's inverted file.

    Returns one lexicographically sorted key list per query (the same
    contract as running the queries' compiled plans), so sharded
    fan-outs can merge exactly like :meth:`ShardedIndex.run_plans`.
    """
    provider = SharedCandidates(ctx, spec)
    memo = ctx.memo if ctx.memo is not None else {}
    out: list[list[str]] = []
    for query in queries:
        ctx.counters.queries += 1
        heads = prefix_match_nodes(query, ctx, spec, provider, memo)
        out.append(ctx.ifile.heads_to_keys(heads, mode=spec.mode))
    return out


def choose_strategy(queries: Iterable[NestedSet],
                    stats: "CollectionStats", *,
                    min_queries: int = MIN_PREFIX_QUERIES,
                    threshold: float = SHARING_THRESHOLD
                    ) -> tuple[str, dict[str, object]]:
    """Adaptive dispatch: ``"prefix"`` or ``"per-query"`` plus evidence.

    Estimates, from live collection statistics, the df-weighted posting
    volume a per-query loop streams (every atom of every query node)
    against what the trie streams (each distinct ordered prefix edge
    once).  The sharing ratio ``1 - trie/loop`` is the fraction of
    posting volume the prefix tree never touches; small workloads are
    sent to the per-query loop regardless since the trie cannot
    amortize its bookkeeping.
    """
    queries = list(queries)
    loop_volume = 0
    edge_volume: dict[tuple, int] = {}
    for query in queries:
        for qnode in query.iter_sets():
            path = tuple(sorted(
                qnode.atoms,
                key=lambda a: (stats.document_frequency(a), atom_token(a))))
            prefix: tuple = ()
            for atom in path:
                df = stats.document_frequency(atom)
                loop_volume += df
                prefix = prefix + (atom,)
                edge_volume[prefix] = df
    trie_volume = sum(edge_volume.values())
    sharing = 1.0 - (trie_volume / loop_volume) if loop_volume else 0.0
    chosen = "prefix" if (len(queries) >= min_queries
                          and sharing >= threshold) else "per-query"
    return chosen, {
        "chosen": chosen,
        "n_queries": len(queries),
        "min_queries": min_queries,
        "sharing": round(sharing, 4),
        "threshold": threshold,
        "loop_volume": loop_volume,
        "trie_volume": trie_volume,
    }
