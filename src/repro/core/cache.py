"""Inverted-list caching (Section 3.3, "Caching").

Every occurrence of a leaf value in a query costs a retrieval of its
inverted list from the storage engine plus a decode.  The paper's
optimization buffers the lists of the most frequent atoms of ``S`` in main
memory, subject to a budget (250 lists in the paper's experiments).

Three policies are provided:

* :class:`NoCache`        -- the uncached baseline,
* :class:`FrequencyCache` -- the paper's policy: pin the top-K most
  frequent atoms (static, computed from collection statistics at open time),
* :class:`LRUCache`       -- the workload-adaptive policy the paper lists
  as future work item (6); included for the C1 ablation benchmark.

Caches store *decoded* :class:`~repro.core.postings.PostingList` objects,
so a hit skips both the store access and the codec work.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable

from .postings import PostingList

#: The budget used throughout the paper's experiments.
PAPER_BUDGET = 250


@dataclass
class CacheStats:
    """Hit/miss accounting for a list cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.insertions = self.evictions = 0


class ListCache(ABC):
    """Interface consumed by :class:`~repro.core.invfile.InvertedFile`."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    @abstractmethod
    def get(self, key: Hashable) -> PostingList | None:
        """Return the cached list or None (a miss)."""

    @abstractmethod
    def admit(self, key: Hashable, plist: PostingList) -> None:
        """Offer a freshly decoded list to the cache (may be rejected)."""

    def replace(self, key: Hashable, plist: PostingList) -> None:
        """Admit ``plist``, overwriting any existing entry for ``key``.

        ``admit`` may keep an existing entry (the policies treat a
        second offer as a no-op); version-aware callers use this when
        they *know* the cached entry is from an older epoch and must be
        superseded.  Default: same as :meth:`admit`.
        """
        self.admit(key, plist)

    def clear(self) -> None:
        """Drop all cached entries (stats are kept)."""

    @property
    def name(self) -> str:
        return type(self).__name__


class NoCache(ListCache):
    """The uncached configuration of the paper's experiments."""

    def get(self, key: Hashable) -> PostingList | None:
        self.stats.misses += 1
        return None

    def admit(self, key: Hashable, plist: PostingList) -> None:
        pass


class FrequencyCache(ListCache):
    """Pin the posting lists of the ``budget`` most frequent atoms.

    Membership in the hot set is decided once from collection frequencies
    (document frequency of each atom), exactly as in Section 3.3; lists are
    materialized lazily on first access and never evicted.
    """

    def __init__(self, hot_atoms: Iterable[Hashable],
                 budget: int = PAPER_BUDGET) -> None:
        super().__init__()
        self.budget = budget
        self._hot = set(hot_atoms)
        if len(self._hot) > budget:
            raise ValueError(
                f"hot set of {len(self._hot)} atoms exceeds budget {budget}")
        self._lists: dict[Hashable, PostingList] = {}

    @classmethod
    def from_frequencies(cls, frequencies: Iterable[tuple[Hashable, int]],
                         budget: int = PAPER_BUDGET) -> "FrequencyCache":
        """Build the hot set from ``(atom, document-frequency)`` pairs."""
        ranked = sorted(frequencies, key=lambda item: (-item[1], str(item[0])))
        return cls([atom for atom, _df in ranked[:budget]], budget=budget)

    def get(self, key: Hashable) -> PostingList | None:
        plist = self._lists.get(key)
        if plist is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return plist

    def admit(self, key: Hashable, plist: PostingList) -> None:
        if key in self._hot and key not in self._lists:
            self._lists[key] = plist
            self.stats.insertions += 1

    def replace(self, key: Hashable, plist: PostingList) -> None:
        if key in self._hot:
            if key not in self._lists:
                self.stats.insertions += 1
            self._lists[key] = plist

    def clear(self) -> None:
        self._lists.clear()

    def __len__(self) -> int:
        return len(self._lists)


class LRUCache(ListCache):
    """Least-recently-used cache of at most ``budget`` posting lists.

    Recency bookkeeping is a check-then-act sequence over an
    ``OrderedDict``, so ``get``/``admit`` take a small lock: the query
    service fans concurrent readers at one shared cache, and an eviction
    racing a ``move_to_end`` would otherwise raise ``KeyError``.
    """

    def __init__(self, budget: int = PAPER_BUDGET) -> None:
        super().__init__()
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self._lock = threading.Lock()
        self._lists: OrderedDict[Hashable, PostingList] = OrderedDict()

    def get(self, key: Hashable) -> PostingList | None:
        with self._lock:
            plist = self._lists.get(key)
            if plist is None:
                self.stats.misses += 1
                return None
            self._lists.move_to_end(key)
            self.stats.hits += 1
            return plist

    def admit(self, key: Hashable, plist: PostingList) -> None:
        with self._lock:
            if key in self._lists:
                self._lists.move_to_end(key)
                return
            self._lists[key] = plist
            self.stats.insertions += 1
            if len(self._lists) > self.budget:
                self._lists.popitem(last=False)
                self.stats.evictions += 1

    def replace(self, key: Hashable, plist: PostingList) -> None:
        with self._lock:
            if key not in self._lists:
                self.stats.insertions += 1
            self._lists[key] = plist
            self._lists.move_to_end(key)
            if len(self._lists) > self.budget:
                self._lists.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._lists.clear()

    def __len__(self) -> int:
        return len(self._lists)


#: Default decoded-block budget: 8192 blocks of 128 postings hold up to
#: ~1M decoded postings, roughly the footprint the old whole-list LRU
#: reached on the paper's workloads -- but spent block-by-block, so one
#: giant hot list can no longer monopolize the budget.
DEFAULT_BLOCK_BUDGET = 8192

#: A decoded block: the columnar :class:`~repro.core.postings.BlockData`
#: of one block of a blocked value (legacy postings tuples admitted by
#: older callers are still served; lazy lists wrap them on read).
DecodedBlock = object


class BlockCache:
    """LRU over *decoded blocks* of block-compressed posting lists.

    Replaces whole-list caching for the blocked format: lazy lists
    (:class:`repro.core.postings.LazyPostingList`) route every block
    decode through one shared instance, keyed by ``(atom token,
    block number)``.  Entries are columnar
    :class:`~repro.core.postings.BlockData` objects, so one cached
    decode serves both the array-native intersection (head columns) and
    row consumers (postings tuples, materialized once per entry).  Hot
    *regions* of hot lists stay decoded while the
    cold tail of the same list can be evicted -- a granularity the
    whole-list :class:`ListCache` policies cannot express.

    Under MVCC snapshot reads the list key is epoch-scoped: snapshots
    use ``((atom token, modification epoch), block number)``, so a
    commit that appends to a list simply starts a fresh epoch instead of
    invalidating -- readers pinned before the commit keep their (still
    correct) decoded blocks, and a racing reader re-populating an old
    epoch's entry can never serve a newer reader.
    """

    def __init__(self, budget: int = DEFAULT_BLOCK_BUDGET) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._blocks: OrderedDict[tuple[Hashable, int], DecodedBlock] = \
            OrderedDict()

    def get(self, key: tuple[Hashable, int]) -> DecodedBlock | None:
        with self._lock:
            block = self._blocks.get(key)
            if block is None:
                self.stats.misses += 1
                return None
            self._blocks.move_to_end(key)
            self.stats.hits += 1
            return block

    def admit(self, key: tuple[Hashable, int], block: DecodedBlock) -> None:
        with self._lock:
            if key in self._blocks:
                self._blocks.move_to_end(key)
                return
            self._blocks[key] = block
            self.stats.insertions += 1
            if len(self._blocks) > self.budget:
                self._blocks.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, list_keys: "set[Hashable]") -> None:
        """Drop every cached block of the given lists (atom tokens).

        Appends re-encode only a list's tail block, but block *numbers*
        past the tail shift as entries spill over, so the whole list's
        cached blocks go; blocks of untouched lists stay warm -- the
        point of invalidating per-atom instead of wholesale on every
        insert.  Epoch-scoped keys (``(token, epoch)`` first elements)
        match on their token, so a live invalidation also clears every
        snapshot epoch of the named lists.
        """
        def list_key_of(key: tuple[Hashable, int]) -> Hashable:
            first = key[0]
            return first[0] if isinstance(first, tuple) else first

        with self._lock:
            stale = [key for key in self._blocks
                     if list_key_of(key) in list_keys]
            for key in stale:
                del self._blocks[key]

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)


def make_cache(policy: str | None, *,
               frequencies: Iterable[tuple[Hashable, int]] = (),
               budget: int = PAPER_BUDGET) -> ListCache:
    """Factory used by the engine: ``None``/"none", "frequency", "lru"."""
    if policy in (None, "none"):
        return NoCache()
    if policy == "frequency":
        return FrequencyCache.from_frequencies(frequencies, budget=budget)
    if policy == "lru":
        return LRUCache(budget=budget)
    raise ValueError(f"unknown cache policy {policy!r}; "
                     "expected None, 'none', 'frequency' or 'lru'")
