"""The naive baseline: per-record subtree embedding (Section 3, remark 1).

"A naive solution to computing containment of q in S is to apply an
off-the-shelf subtree homomorphism algorithm to each pairing (q, s), for
s ∈ S" -- requiring every object to be retrieved from the database.  The
paper reports (and our N1 benchmark confirms) that this is substantially
more expensive than bulk processing via the inverted file.

:class:`NaiveScanner` walks the record table of an index (or an in-memory
record list) and applies the reference checkers of
:mod:`repro.core.semantics` pair by pair.  It optionally consults a
:class:`~repro.core.bloom.BloomIndex` prefilter first, which is how the
Bloom-filter optimization of Section 3.3 is evaluated (benchmark B1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .observe import NULL_OBSERVER, PlanObserver
from .semantics import (
    contains,
    equality_matches,
    hom_contains,
    overlap_matches,
    superset_matches,
)


def naive_predicate(data: NestedSet, query: NestedSet,
                    spec: QuerySpec = QuerySpec()) -> bool:
    """Decide the join predicate for one ``(query, data)`` pair."""
    if spec.mode == "anywhere":
        root_spec = QuerySpec(semantics=spec.semantics, join=spec.join,
                              epsilon=spec.epsilon, mode="root")
        return any(naive_predicate(node, query, root_spec)
                   for node in data.iter_sets())
    if spec.join == "subset":
        return contains(data, query, spec.semantics)
    if spec.join == "equality":
        return equality_matches(data, query)
    if spec.join == "superset":
        return superset_matches(data, query)
    if spec.join == "overlap":
        return overlap_matches(data, query, spec.epsilon)
    raise ValueError(f"unknown join {spec.join!r}")


class NaiveScanner:
    """Full-scan evaluator over a record collection or an index."""

    def __init__(self, source: InvertedFile | Sequence[tuple[str, NestedSet]],
                 bloom_index: "object | None" = None) -> None:
        self._source = source
        self._bloom = bloom_index
        self.records_tested = 0
        self.records_skipped = 0

    def _iter_records(self, ordinals: Iterable[int] | None
                      ) -> Iterable[tuple[str, NestedSet]]:
        if isinstance(self._source, InvertedFile):
            if ordinals is None:
                for _ordinal, key, _root, tree in self._source.iter_records():
                    yield key, tree
            else:
                for ordinal in ordinals:
                    if ordinal in self._source.deleted:
                        continue
                    key, _root, tree = self._source.record(ordinal)
                    yield key, tree
        else:
            if ordinals is None:
                yield from self._source
            else:
                for ordinal in ordinals:
                    yield self._source[ordinal]

    def query(self, query: NestedSet,
              spec: QuerySpec = QuerySpec(), *,
              observer: PlanObserver | None = None) -> list[str]:
        """Scan every record (modulo the Bloom prefilter) and test it.

        For the scan, the observer's one "node" is the whole query:
        candidates = records in the collection, the frontier count is
        what survives the Bloom prefilter, survivors = matches.
        """
        obs = observer if observer is not None else NULL_OBSERVER
        ordinals: Iterable[int] | None = None
        total = self._total_records()
        obs.enter_node(query)
        if self._bloom is not None:
            candidates = self._bloom.candidates(query, spec)
            if candidates is not None:
                ordinals = candidates
                self.records_skipped += total - len(candidates)
        obs.record_candidates(
            total,
            restricted=None if ordinals is None else len(ordinals))
        matches = []
        for key, tree in self._iter_records(ordinals):
            self.records_tested += 1
            if naive_predicate(tree, query, spec):
                matches.append(key)
        obs.exit_node(len(matches))
        return sorted(matches)

    def _total_records(self) -> int:
        if isinstance(self._source, InvertedFile):
            return self._source.n_live_records
        return len(self._source)


def naive_containment_join(queries: Iterable[tuple[str, NestedSet]],
                           records: Sequence[tuple[str, NestedSet]],
                           spec: QuerySpec = QuerySpec()
                           ) -> list[tuple[str, str]]:
    """The full join ``Q ⋈ S`` of Equation 1, naive nested loops."""
    scanner = NaiveScanner(records)
    pairs: list[tuple[str, str]] = []
    for qkey, query in queries:
        for skey in scanner.query(query, spec):
            pairs.append((qkey, skey))
    return pairs


def reference_query(records: Iterable[tuple[str, NestedSet]],
                    query: NestedSet,
                    spec: QuerySpec = QuerySpec()) -> list[str]:
    """One-shot oracle used pervasively by the test suite."""
    return sorted(key for key, tree in records
                  if naive_predicate(tree, query, spec))


def hom_join_pairs(queries: Sequence[tuple[str, NestedSet]],
                   records: Sequence[tuple[str, NestedSet]]
                   ) -> list[tuple[str, str]]:
    """Equation 1 under the default homomorphic subset semantics."""
    return [(qkey, skey)
            for qkey, query in queries
            for skey, tree in records
            if hom_contains(tree, query)]
