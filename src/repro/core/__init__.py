"""Core library: the paper's contribution.

Data model, inverted file, the two containment algorithms, caching, Bloom
prefilters, and the join/semantics extension matrix.
"""

from .bags import (
    NestedBag,
    bag_contains,
    bag_equal,
    bag_filter_verify,
    bag_reference_query,
    json_to_nested_bag,
)
from .batch import BatchEvaluator, batch_query, memoized_match_nodes
from .bulkload import DEFAULT_MEMORY_BUDGET, build_external
from .bloom import BloomFilter, BloomIndex, BreadthBloom, DepthBloom
from .bottomup import bottomup_match_nodes, bottomup_query
from .cache import (
    PAPER_BUDGET,
    FrequencyCache,
    ListCache,
    LRUCache,
    NoCache,
    make_cache,
)
from .candidates import node_candidates
from .checker import assert_healthy, check_index
from .engine import ALGORITHMS, NestedSetIndex, as_nested_set
from .exec import (
    ExecCounters,
    ExecutionContext,
    ExecutionPlan,
    PlanError,
    TraceSink,
    compile_query,
)
from .invfile import InvertedFile, InvertedFileError, NodeMeta, QueryStats
from .join import JoinResult, containment_join, self_join
from .matchspec import JOINS, MODES, SEMANTICS, QuerySpec, QuerySpecError
from .model import (
    EXAMPLE_QUERY,
    EXAMPLE_SUE,
    EXAMPLE_TIM,
    Atom,
    NestedSet,
    NestedSetError,
)
from .naive import (
    NaiveScanner,
    naive_containment_join,
    naive_predicate,
    reference_query,
)
from .planner import STRATEGIES, Planner, make_planner
from .prefixjoin import (
    PrefixTree,
    choose_strategy,
    prefix_join_lists,
)
from .resultcache import ResultCache
from .segments import DEFAULT_SEGMENT_SIZE
from .shard import (
    HashShardPolicy,
    RoundRobinShardPolicy,
    ShardError,
    ShardedIndex,
    make_policy,
    register_policy,
)
from .parallel import ShardExecutor
from .seqs import (
    NestedSeq,
    json_to_nested_seq,
    seq_contains,
    seq_filter_verify,
    seq_reference_query,
)
from .postings import (
    PathList,
    PostingList,
    intersect,
    multiset_union,
    nav_join,
)
from .similarity import SimilaritySearch, nested_jaccard, top_k_similar
from .stats import AtomStats, CollectionStats
from .trace import ExplainResult, NodeTrace, explain
from .semantics import (
    contains,
    contains_anywhere,
    equality_matches,
    hom_contains,
    homeo_contains,
    iso_contains,
    overlap_matches,
    superset_matches,
)
from .topdown import (
    topdown_match_nodes,
    topdown_paper_match_nodes,
    topdown_paper_query,
    topdown_query,
)
from .updates import IndexWriter, UpdateError

__all__ = [
    "ALGORITHMS",
    "Atom",
    "AtomStats",
    "BatchEvaluator",
    "BloomFilter",
    "BloomIndex",
    "BreadthBloom",
    "DepthBloom",
    "EXAMPLE_QUERY",
    "EXAMPLE_SUE",
    "EXAMPLE_TIM",
    "CollectionStats",
    "DEFAULT_MEMORY_BUDGET",
    "DEFAULT_SEGMENT_SIZE",
    "ExecCounters",
    "ExecutionContext",
    "ExecutionPlan",
    "ExplainResult",
    "FrequencyCache",
    "IndexWriter",
    "InvertedFile",
    "InvertedFileError",
    "JOINS",
    "JoinResult",
    "LRUCache",
    "ListCache",
    "MODES",
    "NaiveScanner",
    "NestedBag",
    "NestedSeq",
    "NestedSet",
    "NestedSetError",
    "NestedSetIndex",
    "NoCache",
    "NodeMeta",
    "NodeTrace",
    "PlanError",
    "Planner",
    "PrefixTree",
    "PAPER_BUDGET",
    "ResultCache",
    "PathList",
    "PostingList",
    "QuerySpec",
    "QuerySpecError",
    "QueryStats",
    "SEMANTICS",
    "STRATEGIES",
    "HashShardPolicy",
    "RoundRobinShardPolicy",
    "ShardError",
    "ShardedIndex",
    "ShardExecutor",
    "make_policy",
    "register_policy",
    "SimilaritySearch",
    "TraceSink",
    "UpdateError",
    "as_nested_set",
    "assert_healthy",
    "bag_contains",
    "bag_equal",
    "bag_filter_verify",
    "bag_reference_query",
    "batch_query",
    "build_external",
    "check_index",
    "choose_strategy",
    "compile_query",
    "containment_join",
    "bottomup_match_nodes",
    "bottomup_query",
    "contains",
    "contains_anywhere",
    "equality_matches",
    "explain",
    "hom_contains",
    "homeo_contains",
    "json_to_nested_bag",
    "json_to_nested_seq",
    "intersect",
    "iso_contains",
    "make_cache",
    "make_planner",
    "memoized_match_nodes",
    "multiset_union",
    "naive_containment_join",
    "naive_predicate",
    "nav_join",
    "nested_jaccard",
    "node_candidates",
    "overlap_matches",
    "prefix_join_lists",
    "reference_query",
    "self_join",
    "seq_contains",
    "seq_filter_verify",
    "seq_reference_query",
    "superset_matches",
    "top_k_similar",
    "topdown_match_nodes",
    "topdown_paper_match_nodes",
    "topdown_paper_query",
    "topdown_query",
]
