"""Selectivity-driven evaluation ordering for the top-down algorithm.

The top-down algorithm's advantage is pruning: after each child subquery
returns, parents without an edge into its match set are dropped, so
*later* siblings see smaller frontiers.  That makes sibling order matter
-- evaluating the most selective subquery first shrinks the surviving
candidates fastest.  The paper leaves evaluation-order optimization open
(future work items 1 and 5); this module supplies the standard
rarest-first heuristic over the collection statistics the index already
maintains.

Strategies:

* ``selective-first`` -- ascending estimated match count (the heuristic),
* ``bulky-first``     -- descending (the adversarial ablation),
* ``text``            -- canonical text order (the deterministic default
  used when no planner is installed).

The execution pipeline consumes planners at the match stage: when a
compiled plan carries ``MatchStage.planner``, the plan instantiates the
strategy from the context's collection statistics and hands its
``as_child_order()`` hook to the strict top-down matcher (see
:mod:`repro.core.exec.plan`).  Ordering never changes results -- only
how fast the frontier shrinks -- a property pinned by the planner-order
invariance tests.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .matchspec import QuerySpec
from .model import NestedSet
from .stats import CollectionStats

STRATEGIES = ("selective-first", "bulky-first", "text")

#: Signature of the ordering hook accepted by the top-down algorithm.
ChildOrder = Callable[[Sequence[NestedSet], QuerySpec], "list[NestedSet]"]


class Planner:
    """Orders sibling subqueries by estimated selectivity."""

    def __init__(self, stats: CollectionStats,
                 strategy: str = "selective-first") -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"expected one of {STRATEGIES}")
        self.stats = stats
        self.strategy = strategy

    def estimate_subtree_matches(self, node: NestedSet,
                                 spec: QuerySpec = QuerySpec()) -> float:
        """Upper bound on where a subquery can embed: its tightest node.

        Every node of the subtree must embed somewhere, so the subtree
        match count is bounded by the scarcest node's candidate count.
        """
        return min(self.stats.estimate_candidates(sub, spec)
                   for sub in node.iter_sets())

    def estimate_subtree_blocks(self, node: NestedSet,
                                spec: QuerySpec = QuerySpec()) -> float:
        """Expected block decodes to evaluate the whole subtree.

        Additive over nodes (each node runs one intersection); zero on
        legacy-format indexes, where the tie-break degenerates to text
        order.
        """
        return sum(self.stats.estimate_blocks(sub, spec)
                   for sub in node.iter_sets())

    def order_children(self, children: Sequence[NestedSet],
                       spec: QuerySpec = QuerySpec()) -> list[NestedSet]:
        """The hook handed to :func:`repro.core.topdown.topdown_match_nodes`.

        Primary key: estimated match count (selectivity -- how fast the
        frontier shrinks).  Secondary key: estimated block decodes, so
        among equally selective siblings the one that touches less of
        the blocked posting storage runs first (it may empty the
        frontier before the expensive sibling is needed at all).
        """
        if self.strategy == "text":
            return sorted(children, key=lambda c: c.to_text())
        ranked = sorted(
            children,
            key=lambda c: (self.estimate_subtree_matches(c, spec),
                           self.estimate_subtree_blocks(c, spec),
                           c.to_text()))
        if self.strategy == "bulky-first":
            ranked.reverse()
        return ranked

    def as_child_order(self) -> ChildOrder:
        """Bind :meth:`order_children` as a plain callable."""
        return self.order_children


def make_planner(strategy: str | None, stats: CollectionStats
                 ) -> Planner | None:
    """Factory: ``None`` means "no planner" (canonical text order)."""
    if strategy is None:
        return None
    return Planner(stats, strategy)
