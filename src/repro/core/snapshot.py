"""Version-pinned read views over a live inverted file (MVCC).

The engine's read path runs entirely against *snapshots*: a query pins
the store's committed version (:meth:`repro.storage.KVStore.snapshot`),
wraps the pinned view in a :class:`SnapshotInvertedFile`, and never
takes a lock again -- writers commit freely while in-flight readers keep
observing the version they pinned.

The caches make that cheap instead of merely correct.  All snapshots of
one engine share the live index's list cache, block cache, node-metadata
blocks and record-key cache, with staleness decided by *modification
epochs* rather than invalidation:

* :class:`ModEpochs` records, per atom token, the versions at which its
  posting list changed.  ``floor(token, version)`` -- how many of those
  changes a reader pinned at ``version`` can see -- becomes part of
  every cache key, so a commit simply starts a fresh epoch: nothing is
  evicted, readers pinned before the commit keep hitting their (still
  correct) entries, and a slow reader re-populating an old epoch's entry
  can never poison a newer reader.  Deletes are tombstones that leave
  posting bytes untouched, so they bump no epochs at all.
* :class:`SharedIndexState` holds the cross-version caches whose safety
  rests on the index's append-only invariants: node-metadata blocks only
  grow (longest copy wins, served when long enough for the reader's
  node id), record keys are immutable per ordinal, and the ALL/ZERO
  lists only append postings with fresh node ids (a newer load serves an
  older snapshot after truncating at the snapshot's node count).

A snapshot of a store without MVCC support (``mvcc_info() is None``)
degrades to a live view at the *live* epoch floor; the engine keeps its
reader/writer lock around such reads, so the epoch scheme then behaves
exactly like classic invalidation -- old floors become unreachable.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Callable, Hashable, Iterable, NamedTuple

from ..storage import KVStore
from ..storage.codec import encode_varint
from .cache import ListCache
from .invfile import (
    _ALL_PREFIX,
    _META_ENTRY,
    _META_PREFIX,
    _ZERO_PREFIX,
    META_BLOCK,
    InvertedFile,
    InvertedFileError,
    NodeMeta,
    QueryStats,
    _FLAG_ROOT,
    atom_token,
)
from .postings import PostingList

__all__ = [
    "ModEpochs",
    "SharedIndexState",
    "SnapshotInvertedFile",
    "SnapshotListCache",
]


class ModEpochs:
    """Per-atom modification history in store-version terms.

    ``bump(tokens, version)`` records that the named posting lists
    change at ``version`` (the writer calls it with the *upcoming*
    commit version, before the commit lands, so a reader pinning the
    new version can never compute a pre-bump floor).  ``floor(token,
    version)`` is the number of recorded changes visible at ``version``
    -- the epoch component of every list/block cache key.  A ``None``
    version means "live": all recorded changes are visible.

    Reads are lock-free: the per-token lists are append-only and CPython
    list appends are atomic, so a concurrent ``bisect`` sees either the
    old or the new length -- both correct for the reader's version.
    """

    #: Reserved token recording "everything changed" events (replicated
    #: log replay rewrites arbitrary lists below the engine, so no
    #: per-atom bump is possible).  Its count is folded into every
    #: floor, so one bump starts a fresh epoch for *all* cache keys
    #: while readers pinned at older versions keep their entries.
    GLOBAL_TOKEN = "\x00*"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mods: dict[str, list[int]] = {}
        self._clock = 0

    @property
    def clock(self) -> int:
        """Largest version ever bumped (internal counter without MVCC)."""
        return self._clock

    def bump(self, tokens: Iterable[str], version: int | None = None) -> None:
        """Record that ``tokens``' lists change at ``version``.

        Without a store version (non-MVCC fallback) an internal clock
        supplies a monotonic surrogate.
        """
        with self._lock:
            if version is None:
                self._clock += 1
                version = self._clock
            elif version > self._clock:
                self._clock = version
            for token in tokens:
                mods = self._mods.setdefault(token, [])
                if not mods or mods[-1] < version:
                    mods.append(version)

    def bump_all(self, version: int | None = None) -> None:
        """Record that *every* list may have changed at ``version``."""
        self.bump((self.GLOBAL_TOKEN,), version)

    def floor(self, token: str, version: int | None = None) -> int:
        """Visible-modification count for a reader pinned at ``version``.

        Folds in the global token's count, so whole-index events
        (replica replay) shift every floor at once.
        """
        count = self._floor_one(token, version)
        if token != self.GLOBAL_TOKEN:
            count += self._floor_one(self.GLOBAL_TOKEN, version)
        return count

    def _floor_one(self, token: str, version: int | None) -> int:
        mods = self._mods.get(token)
        if not mods:
            return 0
        if version is None:
            return len(mods)
        return bisect_right(mods, version)


class SharedIndexState:
    """Cross-snapshot caches justified by append-only index invariants.

    One instance per live index generation (a compact starts a fresh
    one); every snapshot of that generation shares it.
    """

    def __init__(self, meta_cap: int = 256) -> None:
        self._lock = threading.Lock()
        #: Node-metadata blocks, longest copy wins: entries are written
        #: once and blocks only grow at the tail, so a newer (longer)
        #: block serves any reader whose node id fits inside it.
        self._meta_blocks: dict[int, bytes] = {}
        self._meta_cap = meta_cap
        #: ordinal -> record key; ordinals are never reused and a key
        #: never changes (deletes tombstone, they do not remap).
        self.key_cache: dict[int, str] = {}
        #: kind -> (loaded_version, list); ALL/ZERO lists only append
        #: postings with fresh node ids, so newer loads serve older
        #: snapshots after truncation at the snapshot's node count.
        self._lists: dict[str, tuple[int, PostingList]] = {}

    def meta_block(self, block_no: int, min_len: int) -> bytes | None:
        """A cached copy of the block, if long enough for the reader."""
        raw = self._meta_blocks.get(block_no)
        if raw is not None and len(raw) >= min_len:
            return raw
        return None

    def offer_meta_block(self, block_no: int, raw: bytes) -> None:
        """Cache a freshly read block unless a longer copy is held."""
        with self._lock:
            held = self._meta_blocks.get(block_no)
            if held is not None and len(held) >= len(raw):
                return
            if held is None and len(self._meta_blocks) >= self._meta_cap:
                self._meta_blocks.pop(next(iter(self._meta_blocks)))
            self._meta_blocks[block_no] = raw

    def shared_list(self, kind: str, version: int,
                    loader: Callable[[], PostingList]) -> PostingList:
        """The ALL/ZERO list as of at least ``version`` (shared load).

        Returns a list loaded at ``version`` or newer -- possibly with
        extra tail postings the caller must truncate away.
        """
        held = self._lists.get(kind)
        if held is not None and held[0] >= version:
            return held[1]
        loaded = loader()
        with self._lock:
            held = self._lists.get(kind)
            if held is None or held[0] < version:
                self._lists[kind] = (version, loaded)
                return loaded
            return held[1]


class _Epoched(NamedTuple):
    """A list-cache entry stamped with the epoch floor it was decoded at."""

    epoch: int
    plist: object


class SnapshotListCache(ListCache):
    """Epoch-checking facade over a shared list-cache policy.

    Entries live in the wrapped policy (frequency / LRU / none) keyed by
    atom, but stamped with the epoch floor they were decoded at.  A
    reader whose floor differs treats the entry as a miss and replaces
    it -- so commits invalidate nothing, and a reader racing a writer
    can only ever re-populate its *own* epoch's entry.  Statistics alias
    the wrapped policy's so experiment counters keep one home.
    """

    def __init__(self, inner: ListCache, epochs: ModEpochs,
                 version: int | None) -> None:
        self._inner = inner
        self._epochs = epochs
        self._version = version
        self.stats = inner.stats

    @property
    def inner(self) -> ListCache:
        """The wrapped policy cache (shared across snapshots)."""
        return self._inner

    @property
    def name(self) -> str:
        return self._inner.name

    def get(self, key: Hashable) -> object | None:
        entry = self._inner.get(key)
        if entry is None:
            return None
        if isinstance(entry, _Epoched) and \
                entry.epoch == self._epochs.floor(atom_token(key),
                                                 self._version):
            return entry.plist
        # Wrong epoch (or a raw entry from an unwrapped user of the
        # policy): a stale hit is really a miss.
        self.stats.hits -= 1
        self.stats.misses += 1
        return None

    def admit(self, key: Hashable, plist: object) -> None:
        floor = self._epochs.floor(atom_token(key), self._version)
        self._inner.replace(key, _Epoched(floor, plist))

    def replace(self, key: Hashable, plist: object) -> None:
        self.admit(key, plist)

    def clear(self) -> None:
        self._inner.clear()

    def __len__(self) -> int:
        sized = getattr(self._inner, "__len__", None)
        return sized() if sized is not None else 0


class SnapshotInvertedFile(InvertedFile):
    """An inverted file bound to a version-pinned store view.

    Reads resolve against the pinned store (so the configuration,
    tombstones and dead counts are the ones committed at the pinned
    version) while the decoded-object caches are shared with every
    other snapshot of the same index generation; see the module
    docstring for why that sharing is safe.

    ``version`` is the pinned store version, or ``None`` when the store
    has no MVCC support (the view is then live and the engine keeps its
    read lock around users of this object).
    """

    def __init__(self, store: KVStore, *, list_cache: ListCache,
                 block_cache, shared: SharedIndexState, epochs: ModEpochs,
                 version: int | None,
                 stats: QueryStats | None = None) -> None:
        super().__init__(store)
        self.version = version
        self._epochs = epochs
        self._shared = shared
        self.cache = SnapshotListCache(list_cache, epochs, version)
        self.block_cache = block_cache
        if stats is not None:
            self.stats = stats
        self._key_cache = shared.key_cache
        # Ordering surrogate for the shared ALL/ZERO loads when the
        # store cannot pin (the epoch clock advances with every insert).
        self._effective_version = (version if version is not None
                                   else epochs.clock)

    # -- node metadata (shared, longest-copy-wins) -------------------------

    def meta(self, node_id: int) -> NodeMeta:
        if node_id < 0 or node_id >= self.n_nodes:
            raise InvertedFileError(f"node id {node_id} out of range "
                                    f"[0, {self.n_nodes})")
        block_no, offset = divmod(node_id, META_BLOCK)
        need = (offset + 1) * _META_ENTRY.size
        block = self._shared.meta_block(block_no, need)
        if block is None:
            block = self._store.get(_META_PREFIX + encode_varint(block_no))
            if block is None:
                raise InvertedFileError(
                    f"missing node metadata block {block_no}")
            self.stats.meta_block_reads += 1
            self._shared.offer_meta_block(block_no, block)
        record, leaf_count, max_desc, flags = _META_ENTRY.unpack_from(
            block, offset * _META_ENTRY.size)
        return NodeMeta(record, leaf_count, max_desc,
                        bool(flags & _FLAG_ROOT))

    # -- ALL / ZERO lists (shared load, truncated per version) -------------

    def all_nodes(self) -> PostingList:
        if self._all_nodes is None:
            full = self._shared.shared_list(
                "all", self._effective_version,
                lambda: self._read_blocks(_ALL_PREFIX, self._n_all_blocks))
            self._all_nodes = _truncate_at(full, self.n_nodes)
        return self._all_nodes

    def zero_leaf_nodes(self) -> PostingList:
        if self._zero_leaf is None:
            full = self._shared.shared_list(
                "zero", self._effective_version,
                lambda: self._read_blocks(_ZERO_PREFIX,
                                          self._n_zero_blocks))
            self._zero_leaf = _truncate_at(full, self.n_nodes)
        return self._zero_leaf


def _truncate_at(plist: PostingList, n_nodes: int) -> PostingList:
    """Drop postings of nodes created after a snapshot's last id.

    Node ids are assigned in ascending preorder and the ALL/ZERO lists
    are head-sorted, so "this snapshot's prefix" is everything with
    ``head < n_nodes``.
    """
    entries = plist.entries
    if not entries or entries[-1][0] < n_nodes:
        return plist
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < n_nodes:
            lo = mid + 1
        else:
            hi = mid
    return PostingList(entries[:lo])
