"""Horizontal sharding behind the execution pipeline.

:class:`ShardedIndex` partitions a record collection across N
independent inverted files -- each a full :class:`NestedSetIndex` with
its own list cache, Bloom filters, and result cache -- living side by
side in **one** physical store under per-shard key namespaces
(:class:`~repro.storage.NamespacedStore`).  Queries are compiled once
through the shared pipeline (:func:`repro.core.exec.compiler.compile_query`)
and the resulting :class:`~repro.core.exec.plan.ExecutionPlan` is fanned
out to every shard -- concurrently via :class:`~repro.core.parallel.ShardExecutor`
when ``workers > 1`` -- then the per-shard answers are merged.

Merging is exact, not approximate: the partitioning policy assigns each
record key to exactly one shard, so per-shard result lists are disjoint
and the cross-shard answer is their sorted concatenation.  Counters
merge by summation (:meth:`ExecCounters.merged`) and EXPLAIN traces
keep one tree per shard under a merged header
(:func:`~repro.core.exec.observer.merge_explains`).

Why shard at all on one machine?  Two reasons the paper's monolithic
inverted file cannot offer:

* **update locality** -- an insert or delete touches one shard, so the
  other ``N-1`` result caches (and their warmed list caches) survive the
  mutation instead of being invalidated wholesale;
* **bounded build memory** -- bulk loading splits the posting buffer
  across shard builds, and each shard's run-merge works over a fraction
  of the collection.

Thread-safety contract: reads are **version-based** when the base store
supports MVCC (all built-in stores do).  A fan-out pins the base store's
committed version once, wraps each shard namespace over that one pinned
view, and opens a per-shard engine :class:`~repro.core.engine.Snapshot`
-- so every shard of one fan-out answers from the *same* base version,
with no lock held against mutations, which serialize among themselves on
a writer mutex and commit through the shared write-ahead log.  On a base
store without MVCC the old reader/writer-lock contract applies: fan-outs
take the read side, mutations the write side.  Each fan-out still
schedules one in-flight task per shard; disk-backed *live* views share a
lock for mutations (one seeking file handle), while pinned snapshot
reads go through the pager's version store and need none.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import Counter
from contextlib import ExitStack, contextmanager, nullcontext
from typing import Callable, Iterable, Iterator, Sequence

from ..storage import (
    KVStore,
    MemoryKVStore,
    NamespacedStore,
    decode_varint,
    encode_varint,
    open_store,
)
from .cache import PAPER_BUDGET
from .engine import NestedSetIndex
from .exec.compiler import ALGORITHMS, compile_query
from .exec.context import ExecCounters
from .exec.observer import MergedExplainResult, merge_explains, run_explained
from .invfile import decode_path_of
from .matchspec import QuerySpec
from .model import NestedSet, as_nested_set
from .parallel import RWLock, ShardExecutor
from .prefixjoin import prefix_join_lists
from .resultcache import ResultCacheStats
from .stats import CollectionStats

__all__ = [
    "HashShardPolicy",
    "MANIFEST_KEY",
    "POLICIES",
    "RoundRobinShardPolicy",
    "ShardError",
    "ShardGroupSnapshot",
    "ShardedIndex",
    "make_policy",
    "read_manifest",
    "register_policy",
    "write_manifest",
]


class ShardError(Exception):
    """Sharding configuration or routing failure."""


# -- partitioning policies --------------------------------------------------


class HashShardPolicy:
    """Default policy: stable hash of the record key, modulo shard count.

    Uses CRC-32 rather than :func:`hash` so the record→shard assignment
    is identical across processes (``PYTHONHASHSEED`` randomises ``hash``
    for strings); a persisted sharded index must route a later ``delete``
    to the same shard that ``build`` picked.
    """

    name = "hash"

    def shard_of(self, key: str, n_shards: int) -> int:
        return zlib.crc32(key.encode("utf-8")) % n_shards


class RoundRobinShardPolicy:
    """Balance-first policy: records go to shards in arrival order.

    Gives perfectly even shard sizes but is **not** key-deterministic,
    so routed single-record updates fall back to a key lookup across
    shards (delete) or the hash of the key (insert).  Useful for bulk
    workloads where balance matters more than routing.
    """

    name = "roundrobin"

    def __init__(self) -> None:
        self._next = 0

    def shard_of(self, key: str, n_shards: int) -> int:
        shard = self._next % n_shards
        self._next += 1
        return shard


#: Registered policy constructors, keyed by manifest name.
POLICIES: dict[str, Callable[[], object]] = {
    HashShardPolicy.name: HashShardPolicy,
    RoundRobinShardPolicy.name: RoundRobinShardPolicy,
}


def register_policy(name: str, factory: Callable[[], object]) -> None:
    """Register a custom partitioning policy under a manifest name.

    The factory must build objects exposing ``shard_of(key, n_shards)``
    and a ``name`` attribute equal to ``name`` (the manifest persists
    the name, and :meth:`ShardedIndex.open` resolves it through this
    registry).
    """
    POLICIES[name] = factory


def make_policy(spec: object) -> object:
    """Resolve a policy spec: a registered name or a policy object."""
    if isinstance(spec, str):
        try:
            return POLICIES[spec]()
        except KeyError:
            raise ShardError(
                f"unknown shard policy {spec!r}; registered: "
                f"{sorted(POLICIES)}") from None
    if not hasattr(spec, "shard_of") or not hasattr(spec, "name"):
        raise ShardError("a shard policy needs shard_of(key, n_shards) "
                         "and a name attribute")
    return spec


# -- manifest ----------------------------------------------------------------

#: Base-store key carrying the shard layout.  ``X:`` collides with no
#: per-shard namespace (those are ``x<i>:``) and no inverted-file prefix.
MANIFEST_KEY = b"X:shards"


def write_manifest(store: KVStore, n_shards: int, policy_name: str) -> None:
    """Persist the shard layout on the *base* store."""
    payload = encode_varint(n_shards)
    name = policy_name.encode("utf-8")
    payload += encode_varint(len(name)) + name
    store.put(MANIFEST_KEY, payload)


def _commit_manifest(store: KVStore, n_shards: int,
                     policy_name: str) -> None:
    """Durably publish the shard layout as the *last* step of a build.

    The shard contents are flushed first; the manifest write itself
    rides one WAL commit group (a no-op on non-journaled stores), so a
    crash before this point leaves a store without a manifest -- never a
    manifest pointing at half-built shards.
    """
    store.sync()
    with store.transaction(b"manifest"):
        write_manifest(store, n_shards, policy_name)


def read_manifest(store: KVStore) -> tuple[int, str] | None:
    """Shard layout of a base store, or ``None`` for monolithic stores."""
    raw = store.get(MANIFEST_KEY)
    if raw is None:
        return None
    n_shards, pos = decode_varint(raw, 0)
    name_len, pos = decode_varint(raw, pos)
    policy_name = raw[pos:pos + name_len].decode("utf-8")
    return n_shards, policy_name


def _shard_prefix(shard_no: int) -> bytes:
    # Prefix-free across shards: the digits end at the colon.
    return b"x%d:" % shard_no


class _SharedResultCache:
    """Aggregate view over the per-shard result caches.

    Matches the read surface of :class:`~repro.core.resultcache.ResultCache`
    that callers use (``stats``, ``invalidate_all``, ``len``); the
    underlying caches stay per-shard so a single-shard mutation leaves
    the other shards' entries warm -- the sharded index's headline
    advantage on mixed workloads.
    """

    def __init__(self, caches: Sequence[object]) -> None:
        self._caches = list(caches)

    @property
    def stats(self) -> ResultCacheStats:
        total = ResultCacheStats()
        for cache in self._caches:
            total.hits += cache.stats.hits
            total.misses += cache.stats.misses
            total.invalidations += cache.stats.invalidations
        return total

    def invalidate_all(self) -> None:
        for cache in self._caches:
            cache.invalidate_all()

    def __len__(self) -> int:
        return sum(len(cache) for cache in self._caches)


# -- the sharded index -------------------------------------------------------


class ShardedIndex:
    """N inverted-file shards in one store, one query surface.

    Mirrors the :class:`~repro.core.engine.NestedSetIndex` facade --
    ``query`` / ``query_batch`` / ``containment_join`` / ``explain`` /
    ``insert`` / ``delete`` / ``compact`` / ``stats`` -- so callers and
    the CLI can hold either without caring which they got.
    """

    def __init__(self, base_store: KVStore,
                 shards: Sequence[NestedSetIndex], policy: object,
                 *, workers: int = 1) -> None:
        if not shards:
            raise ShardError("a sharded index needs at least one shard")
        self._base = base_store
        self._shards = list(shards)
        self._policy = policy
        self._executor = ShardExecutor(max_workers=workers)
        self._result_cache: _SharedResultCache | None = None
        #: Fallback reader/writer coordination, engaged only when the
        #: base store lacks MVCC: fan-outs take the read side, mutations
        #: the write side.  With MVCC, fan-outs pin a base version
        #: instead and never block on (or are blocked by) writers.
        self._rwlock = RWLock()
        #: Serializes mutations among themselves (route + engine write
        #: + shared-WAL commit as one unit).
        self._writer_mutex = threading.Lock()
        self._mvcc = base_store.mvcc_info() is not None
        #: Fan-out refcounts per base-store generation; compact retires
        #: the old base, which closes when its last fan-out drains.
        self._gen_lock = threading.Lock()
        self._base_counts: dict[KVStore, int] = {}
        self._retired_bases: set[KVStore] = set()
        #: Cumulative, workload-level counters merged from every fan-out.
        self.counters = ExecCounters()
        self._counters_lock = threading.Lock()
        #: One shared snapshot group per committed base version (see
        #: :meth:`_pinned_group`): fan-outs refcount it on a dedicated
        #: lock instead of pinning the base per query, keeping
        #: steady-state reader traffic off every writer-shared lock.
        self._pin_lock = threading.Lock()
        self._group_pin: _SharedGroup | None = None

    # -- construction ------------------------------------------------------

    @staticmethod
    def _shard_views(base: KVStore, n_shards: int) -> list[NamespacedStore]:
        """One namespaced view per shard; disk bases share one lock."""
        import threading
        lock = None if isinstance(base, MemoryKVStore) else threading.Lock()
        return [NamespacedStore(base, _shard_prefix(i), lock=lock)
                for i in range(n_shards)]

    @classmethod
    def build(cls, records: Iterable[tuple[str, object]], *,
              shards: int, workers: int = 1, policy: object = "hash",
              storage: str = "memory", path: str | None = None,
              cache: str | None = None, cache_budget: int = PAPER_BUDGET,
              bloom: str | None = None, bloom_bits: int = 512,
              segment_size: int = 0, block_size: int | None = None,
              **store_options: object) -> "ShardedIndex":
        """Partition ``records`` and build one inverted file per shard.

        Shard builds run sequentially: they write interleaved key ranges
        into the shared base store, and the disk pagers are not safe for
        concurrent writers.  ``workers`` only sizes the *query* fan-out.
        """
        if shards < 1:
            raise ShardError("shards must be >= 1")
        partitioner = make_policy(policy)
        buckets: list[list[tuple[str, NestedSet]]] = [[] for _ in
                                                      range(shards)]
        for key, value in records:
            buckets[partitioner.shard_of(key, shards)].append(
                (key, as_nested_set(value)))
        base = open_store(storage, path, create=True, **store_options)
        engines = []
        budget = max(1, cache_budget // shards)
        for view, bucket in zip(cls._shard_views(base, shards), buckets):
            engines.append(cls._build_one(
                bucket, view, cache=cache, cache_budget=budget,
                bloom=bloom, bloom_bits=bloom_bits,
                segment_size=segment_size, block_size=block_size))
        _commit_manifest(base, shards, partitioner.name)
        return cls(base, engines, partitioner, workers=workers)

    @staticmethod
    def _build_one(bucket: list[tuple[str, NestedSet]],
                   view: NamespacedStore, *, cache: str | None,
                   cache_budget: int, bloom: str | None, bloom_bits: int,
                   segment_size: int,
                   block_size: int | None = None) -> NestedSetIndex:
        from .bloom import BloomIndex
        from .cache import make_cache
        from .invfile import InvertedFile
        ifile = InvertedFile.build(iter(bucket), store=view,
                                   segment_size=segment_size,
                                   block_size=block_size)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        bloom_index = None
        if bloom is not None:
            bloom_index = BloomIndex(bloom, n_bits=bloom_bits)
            for _ordinal, _key, _root, tree in ifile.iter_records():
                bloom_index.add_record(tree)
            bloom_index.save(ifile.store)
        return NestedSetIndex(ifile, bloom_index)

    @classmethod
    def build_external(cls, records: Iterable[tuple[str, object]], *,
                       shards: int, workers: int = 1,
                       policy: object = "hash",
                       storage: str = "memory", path: str | None = None,
                       memory_budget: int | None = None,
                       cache: str | None = None,
                       cache_budget: int = PAPER_BUDGET,
                       segment_size: int = 0,
                       block_size: int | None = None,
                       **store_options: object) -> "ShardedIndex":
        """Bulk-load each shard with its slice of the posting budget."""
        from .bulkload import DEFAULT_MEMORY_BUDGET, build_external
        from .cache import make_cache
        if shards < 1:
            raise ShardError("shards must be >= 1")
        partitioner = make_policy(policy)
        buckets: list[list[tuple[str, NestedSet]]] = [[] for _ in
                                                      range(shards)]
        for key, value in records:
            buckets[partitioner.shard_of(key, shards)].append(
                (key, as_nested_set(value)))
        base = open_store(storage, path, create=True, **store_options)
        total_budget = (memory_budget if memory_budget is not None
                        else DEFAULT_MEMORY_BUDGET)
        per_shard_budget = max(1, total_budget // shards)
        per_shard_cache = max(1, cache_budget // shards)
        engines = []
        for view, bucket in zip(cls._shard_views(base, shards), buckets):
            ifile = build_external(iter(bucket), store=view,
                                   memory_budget=per_shard_budget,
                                   segment_size=segment_size,
                                   block_size=block_size)
            ifile.cache = make_cache(cache,
                                     frequencies=ifile.frequencies(),
                                     budget=per_shard_cache)
            engines.append(NestedSetIndex(ifile))
        _commit_manifest(base, shards, partitioner.name)
        return cls(base, engines, partitioner, workers=workers)

    @classmethod
    def open(cls, storage: str, path: str, *, workers: int = 1,
             cache: str | None = None, cache_budget: int = PAPER_BUDGET,
             bloom: str | None = None, bloom_bits: int = 512,
             **store_options: object) -> "ShardedIndex":
        """Reopen a persisted sharded index from its base store."""
        base = open_store(storage, path, create=False, **store_options)
        return cls.from_base_store(base, workers=workers, cache=cache,
                                   cache_budget=cache_budget, bloom=bloom,
                                   bloom_bits=bloom_bits)

    @classmethod
    def from_base_store(cls, base: KVStore, *, workers: int = 1,
                        cache: str | None = None,
                        cache_budget: int = PAPER_BUDGET,
                        bloom: str | None = None,
                        bloom_bits: int = 512) -> "ShardedIndex":
        """Bring up every shard over an already-open base store."""
        manifest = read_manifest(base)
        if manifest is None:
            raise ShardError("store carries no shard manifest; open it "
                             "as a monolithic NestedSetIndex instead")
        n_shards, policy_name = manifest
        partitioner = make_policy(policy_name)
        budget = max(1, cache_budget // n_shards)
        engines = [NestedSetIndex.from_store(view, cache=cache,
                                             cache_budget=budget,
                                             bloom=bloom,
                                             bloom_bits=bloom_bits)
                   for view in cls._shard_views(base, n_shards)]
        return cls(base, engines, partitioner, workers=workers)

    # -- fan-out plumbing --------------------------------------------------

    def _read_guard(self):
        return nullcontext() if self._mvcc else self._rwlock.read_locked()

    def _write_guard(self):
        return nullcontext() if self._mvcc else self._rwlock.write_locked()

    def _release_base(self, base: KVStore) -> None:
        with self._gen_lock:
            count = self._base_counts.get(base, 0) - 1
            if count > 0:
                self._base_counts[base] = count
                return
            self._base_counts.pop(base, None)
            close_now = base in self._retired_bases
            self._retired_bases.discard(base)
        if close_now:
            base.close()

    def _open_group_handles(self):
        """Pin ONE base version; open a per-shard snapshot over it.

        The base store is pinned exactly once, and each shard engine
        gets a namespaced view of that pin -- so all shards observe the
        same committed version even while the writer commits between
        per-shard tasks.  Returns ``(base, base_snap, snaps)``; pass
        them to :meth:`_close_group_handles` to release the per-shard
        handles, the single pin, and (after a concurrent ``compact``)
        possibly the retired base store.
        """
        with self._gen_lock:
            base = self._base
            self._base_counts[base] = self._base_counts.get(base, 0) + 1
        base_snap = None
        snaps: list[object] = []
        try:
            base_snap = base.snapshot()
            base_snap.stats = base.stats      # keep aggregate counters
            version = getattr(base_snap, "version", None) \
                if self._mvcc else None
            for shard_no, engine in enumerate(self._shards):
                view = NamespacedStore(base_snap, _shard_prefix(shard_no))
                view.stats = engine.inverted_file.store.stats
                snaps.append(engine.open_snapshot(view, version=version))
        except BaseException:
            self._close_group_handles(base, base_snap, snaps)
            raise
        return base, base_snap, snaps

    def _close_group_handles(self, base, base_snap, snaps) -> None:
        for snap in snaps:
            snap.close()
        if base_snap is not None:
            base_snap.close()
        self._release_base(base)

    @contextmanager
    def _snapshot_group(self):
        """A private (non-shared) pinned group; see
        :meth:`_open_group_handles`.  Used by the public
        :class:`ShardGroupSnapshot` handle, whose lifetime the caller
        controls; one-shot queries go through :meth:`_pinned_group`."""
        base, base_snap, snaps = self._open_group_handles()
        try:
            yield snaps
        finally:
            self._close_group_handles(base, base_snap, snaps)

    @contextmanager
    def _pinned_group(self):
        """Context manager yielding the shared snapshot group for the
        latest committed base version.

        Fan-outs refcount one group per version instead of pinning the
        base per query: steady-state readers touch exactly one lock
        (``_pin_lock``), which the writer's put path never takes --
        per-query pin/unpin churn through writer-shared locks convoys
        with the GIL badly enough to starve a background writer thread
        outright.  Non-MVCC stores fall back to a private group under
        the read lock.
        """
        if not self._mvcc:
            with self._read_guard(), self._snapshot_group() as snaps:
                yield snaps
            return
        pin = self._acquire_group()
        try:
            yield pin.snaps
        finally:
            self._release_group(pin)

    def _acquire_group(self) -> "_SharedGroup":
        # Lock-free committed-version read: a racing commit publishes
        # its bump as one atomic attribute store, so we see either the
        # old or the new version -- both servable.
        version = self._base.current_version()
        close_old = None
        with self._pin_lock:
            cur = self._group_pin
            if cur is not None and not cur.retired \
                    and version is not None and cur.version == version \
                    and cur.base is self._base:
                cur.refs += 1
                return cur
            base, base_snap, snaps = self._open_group_handles()
            pin = _SharedGroup(
                base, base_snap, snaps,
                getattr(base_snap, "version", None))
            self._group_pin = pin
            if cur is not None:
                cur.retired = True
                if cur.refs == 0:
                    close_old = cur
        if close_old is not None:
            self._close_group_handles(close_old.base, close_old.base_snap,
                                      close_old.snaps)
        return pin

    def _release_group(self, pin: "_SharedGroup") -> None:
        with self._pin_lock:
            pin.refs -= 1
            close_now = pin.refs == 0 and pin.retired
        if close_now:
            self._close_group_handles(pin.base, pin.base_snap, pin.snaps)

    def _retire_group_pin(self) -> None:
        """Drop the cached shared group (mutations/compact/close): the
        next fan-out re-pins at the then-current version.  Without this
        a stale pin would force pre-image capture on every subsequent
        page write (unbounded history growth under write-only loads)."""
        with self._pin_lock:
            cur = self._group_pin
            self._group_pin = None
            if cur is None:
                return
            cur.retired = True
            close_now = cur.refs == 0
        if close_now:
            self._close_group_handles(cur.base, cur.base_snap, cur.snaps)

    def _fan_out(self, task: Callable[[object], object], items: Sequence,
                 workers: int | None = None) -> list[object]:
        """Run ``task`` once per item; parallel when workers allow."""
        if workers is None or workers == self._executor.max_workers:
            return self._executor.map(task, items)
        with ShardExecutor(max_workers=workers) as executor:
            return executor.map(task, items)

    @staticmethod
    def _merge_sorted(per_shard: Iterable[list[str]]) -> list[str]:
        # Shards partition the key space, so the lists are disjoint and a
        # flat sort of the concatenation is the exact global answer.
        merged = [key for part in per_shard for key in part]
        merged.sort()
        return merged

    def _absorb_counters(self, counters: Iterable[ExecCounters]) -> None:
        merged = ExecCounters.merged(list(counters))
        with self._counters_lock:
            self.counters.merge(merged)

    def snapshot(self) -> "ShardGroupSnapshot":
        """Pin one consistent cross-shard read view.

        All shards observe the same committed base version for the life
        of the handle; writers commit freely in the meantime.  Close it
        (or use it as a context manager) to release the pin.
        """
        with self._read_guard():
            return ShardGroupSnapshot(self)

    # -- querying ----------------------------------------------------------

    def query(self, query: object, *, algorithm: str = "bottomup",
              semantics: str = "hom", join: str = "subset",
              epsilon: int = 1, mode: str = "root",
              use_bloom: bool = False, planner: str | None = None,
              workers: int | None = None) -> list[str]:
        """Compile once, run the plan on every shard, merge the answers."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom)

        def run_shard(snap) -> tuple[list[str], ExecCounters]:
            ctx = snap.execution_context()
            return plan.run(ctx), ctx.counters

        with self._pinned_group() as snaps:
            outcomes = self._fan_out(run_shard, snaps, workers)
        self._absorb_counters(counters for _result, counters in outcomes)
        return self._merge_sorted(result for result, _counters in outcomes)

    def run_plans(self, plans: Sequence[object], *, memoize: bool = False,
                  workers: int | None = None
                  ) -> tuple[list[list[str]], ExecCounters]:
        """Run pre-compiled plans on every shard; merge results/counters.

        Every shard gets its own execution context over one shared
        pinned base version (and, with ``memoize=True``, its own
        cross-query subquery memo -- node ids are shard-local, so memos
        cannot be shared across shards).  Returns per-plan merged key
        lists plus this fan-out's merged counters (also accumulated
        into :attr:`counters`).
        """
        def run_shard(snap) -> tuple[list[list[str]], ExecCounters]:
            ctx = snap.execution_context(memo={} if memoize else None)
            return [plan.run(ctx) for plan in plans], ctx.counters

        with self._pinned_group() as snaps:
            outcomes = self._fan_out(run_shard, snaps, workers)
        counters = ExecCounters.merged(
            [shard_counters for _results, shard_counters in outcomes])
        with self._counters_lock:
            self.counters.merge(counters)
        merged = [self._merge_sorted(results[plan_no]
                                     for results, _counters in outcomes)
                  for plan_no in range(len(plans))]
        return merged, counters

    def run_prefix_join(self, queries: Sequence[NestedSet],
                        spec: QuerySpec, *, workers: int | None = None
                        ) -> tuple[list[list[str]], ExecCounters]:
        """Prefix-tree join fan-out over one pinned snapshot group.

        Each shard builds its own prefix tree and subquery memo (node
        ids, frequencies, and posting lists are all shard-local) but
        every shard observes the same committed base version, so the
        join is version-consistent exactly like :meth:`run_plans`.
        Returns per-query merged key lists plus this fan-out's merged
        counters (also accumulated into :attr:`counters`).
        """
        def run_shard(snap) -> tuple[list[list[str]], ExecCounters]:
            ctx = snap.execution_context(memo={})
            return prefix_join_lists(queries, ctx, spec), ctx.counters

        with self._pinned_group() as snaps:
            outcomes = self._fan_out(run_shard, snaps, workers)
        counters = ExecCounters.merged(
            [shard_counters for _results, shard_counters in outcomes])
        with self._counters_lock:
            self.counters.merge(counters)
        merged = [self._merge_sorted(results[query_no]
                                     for results, _counters in outcomes)
                  for query_no in range(len(queries))]
        return merged, counters

    def query_batch(self, queries: Sequence[object], *,
                    share_subqueries: bool = True,
                    algorithm: str = "bottomup", semantics: str = "hom",
                    join: str = "subset", epsilon: int = 1,
                    mode: str = "root", use_bloom: bool = False,
                    planner: str | None = None,
                    workers: int | None = None) -> list[list[str]]:
        """Batch evaluation: each shard runs the whole compiled workload."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plans = [compile_query(query, spec, algorithm=algorithm,
                               planner=planner, use_bloom=use_bloom)
                 for query in queries]
        memoize = bool(share_subqueries and plans and
                       all(plan.match.memoizable for plan in plans))
        results, _counters = self.run_plans(plans, memoize=memoize,
                                            workers=workers)
        return results

    def compile(self, query: object, *, algorithm: str = "bottomup",
                semantics: str = "hom", join: str = "subset",
                epsilon: int = 1, mode: str = "root",
                use_bloom: bool = False, planner: str | None = None,
                cacheable: bool = True):
        """Compile without running; the plan is shard-independent."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        return compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom,
                             cacheable=cacheable)

    def containment_join(self, queries: Iterable[tuple[str, object]],
                         **options: object) -> list[tuple[str, str]]:
        """Same contract as the monolithic facade's join."""
        materialized = [(qkey, query) for qkey, query in queries]
        results = self.query_batch(
            [query for _qkey, query in materialized], **options)
        return [(qkey, skey)
                for (qkey, _query), result in zip(materialized, results)
                for skey in result]

    def explain(self, query: object, *, algorithm: str = "bottomup",
                semantics: str = "hom", join: str = "subset",
                epsilon: int = 1, mode: str = "root",
                use_bloom: bool = False,
                planner: str | None = None,
                workers: int | None = None) -> MergedExplainResult:
        """One full trace per shard under a merged header."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom,
                             cacheable=False)
        started = time.perf_counter()
        with self._pinned_group() as snaps:
            traces = self._fan_out(
                lambda snap: run_explained(plan, snap.execution_context()),
                snaps, workers)
        total_ms = (time.perf_counter() - started) * 1000
        return merge_explains(list(traces), total_ms)

    def match_nodes(self, query: object, **_options: object) -> set[int]:
        raise ShardError(
            "match_nodes is not defined on a sharded index: node ids are "
            "shard-local; run it on an individual shard via .shards[i]")

    def self_check(self, query: object, *, semantics: str = "hom",
                   join: str = "subset", epsilon: int = 1,
                   mode: str = "root") -> dict[str, list[str]]:
        """Run every applicable algorithm on one query (diagnostics)."""
        out: dict[str, list[str]] = {}
        for algorithm in ALGORITHMS:
            if algorithm == "topdown-paper" and (
                    semantics == "iso" or join == "superset"):
                continue
            out[algorithm] = self.query(
                query, algorithm=algorithm, semantics=semantics,
                join=join, epsilon=epsilon, mode=mode)
        return out

    # -- updates -----------------------------------------------------------

    def _route(self, key: str) -> NestedSetIndex:
        return self._shards[self._policy.shard_of(key, len(self._shards))]

    def insert(self, key: str, value: object) -> int:
        """Route to the owning shard; returns the *shard-local* ordinal.

        Only that shard's cached results go stale (its engine bumps its
        own mutation epoch); the other shards' caches stay warm.  Under
        MVCC the commit lands as a new base version -- in-flight
        fan-outs keep reading the version they pinned, and no query ever
        observes one shard pre-insert and another mid-insert.
        """
        with self._writer_mutex, self._write_guard():
            ordinal = self._route(key).insert(key, value)
        self._retire_group_pin()
        return ordinal

    def insert_batch(self, records: Iterable[tuple[str, object]]
                     ) -> list[int]:
        """Insert several (routed) records as **one** WAL commit group.

        The streaming ingestor's batch path: the shared base store's
        version advances once for the whole batch, so readers observe
        either none of it or all of it regardless of how the records
        scatter across shards.
        """
        materialized = [(key, value) for key, value in records]
        with self._writer_mutex, self._write_guard():
            # Route first, then hand each shard its whole slice as one
            # nested batch: the per-shard frequency table is rewritten
            # once per shard instead of once per record (routing calls
            # shard_of in submission order, so stateful policies like
            # round-robin scatter exactly as the per-record path did).
            by_shard: dict[int, list[int]] = {}
            for pos, (key, _value) in enumerate(materialized):
                shard_no = self._policy.shard_of(key, len(self._shards))
                by_shard.setdefault(shard_no, []).append(pos)
            ordinals: list[int] = [0] * len(materialized)
            with self._base.transaction(b"ingest"):
                for shard_no, positions in by_shard.items():
                    batch = [materialized[pos] for pos in positions]
                    for pos, ordinal in zip(
                            positions,
                            self._shards[shard_no].insert_batch(batch)):
                        ordinals[pos] = ordinal
        self._retire_group_pin()
        return ordinals

    def delete(self, key: str) -> bool:
        """Tombstone ``key`` on its owning shard.

        Under a key-deterministic policy this is a single-shard
        operation; under a non-deterministic one (round-robin) the
        routed shard may miss, so the delete falls back to trying every
        shard (at most one can hold the key).
        """
        try:
            with self._writer_mutex, self._write_guard():
                routed = self._route(key)
                if routed.delete(key):
                    return True
                if isinstance(self._policy, HashShardPolicy):
                    return False
                # The routed shard already missed -- sweep the others.
                return any(engine.delete(key) for engine in self._shards
                           if engine is not routed)
        finally:
            self._retire_group_pin()

    def compact(self, *, storage: str = "memory",
                path: str | None = None,
                **store_options: object) -> None:
        """Rebuild every shard into a fresh base store, then swap.

        Disk targets need a new ``path`` for the same reason the
        monolithic engine does: a store cannot be rebuilt into its own
        open file.  Fan-outs pinned on the old base keep answering from
        it; it closes when the last of them drains.
        """
        with self._writer_mutex, self._write_guard():
            fresh_base = open_store(storage, path, create=True,
                                    **store_options)
            views = self._shard_views(fresh_base, len(self._shards))
            for engine, view in zip(self._shards, views):
                engine.compact(store=view)
            # Manifest swap comes last: until it lands, the fresh store
            # is not a valid sharded index and the old store is still
            # whole.
            _commit_manifest(fresh_base, len(self._shards),
                             self._policy.name)
            # Drop the cached shared group first: it holds a base
            # refcount, and closing it here (when idle) lets the old
            # base close immediately below instead of deferring.
            self._retire_group_pin()
            with self._gen_lock:
                old = self._base
                defer = self._base_counts.get(old, 0) > 0
                if defer:
                    self._retired_bases.add(old)
            if not defer:
                old.close()
            self._base = fresh_base
            self._mvcc = fresh_base.mvcc_info() is not None
            if self._result_cache is not None:
                self._result_cache.invalidate_all()

    # -- caches ------------------------------------------------------------

    def enable_result_cache(self, capacity: int = 1024
                            ) -> _SharedResultCache:
        """Per-shard result caches behind one aggregate stats view.

        Capacity is per shard: each cache serves a disjoint slice of the
        workload's answer, and per-shard caches are what make mutation
        invalidation partial instead of total.
        """
        self._result_cache = _SharedResultCache(
            [engine.enable_result_cache(capacity)
             for engine in self._shards])
        # The cached shared group holds per-shard snapshots wired with
        # the old cache configuration; drop it so fan-outs re-wire
        # (same below on disable / cache swap).
        self._retire_group_pin()
        return self._result_cache

    def disable_result_cache(self) -> None:
        for engine in self._shards:
            engine.disable_result_cache()
        self._result_cache = None
        self._retire_group_pin()

    @property
    def result_cache(self) -> _SharedResultCache | None:
        return self._result_cache

    def set_cache(self, policy: str | None,
                  budget: int = PAPER_BUDGET) -> None:
        """Swap every shard's inverted-list cache (budget split evenly)."""
        per_shard = max(1, budget // len(self._shards))
        for engine in self._shards:
            engine.set_cache(policy, per_shard)
        self._retire_group_pin()

    # -- statistics --------------------------------------------------------

    def collection_stats(self) -> CollectionStats:
        """Merged live-frequency statistics across all shards."""
        merged: Counter = Counter()
        n_nodes = 0
        n_records = 0
        for engine in self._shards:
            shard_stats = engine.collection_stats()
            for atom, count in engine.inverted_file.live_frequencies():
                merged[atom] += count
            n_nodes += shard_stats.n_nodes
            n_records += shard_stats.n_records
        frequencies = sorted(merged.items(),
                             key=lambda item: (-item[1], str(item[0])))
        return CollectionStats(frequencies, n_nodes, n_records)

    def frequencies(self) -> list[tuple[object, int]]:
        """Merged raw document frequencies (CLI ``info`` surface)."""
        merged: Counter = Counter()
        for engine in self._shards:
            for atom, count in engine.inverted_file.frequencies():
                merged[atom] += count
        return sorted(merged.items(),
                      key=lambda item: (-item[1], str(item[0])))

    def stats(self) -> dict[str, dict[str, object]]:
        """Aggregated index/cache counters plus the shared-store view."""
        per_shard = [engine.stats() for engine in self._shards]
        index_totals = {
            "records": self.n_records,
            "nodes": self.n_nodes,
        }
        for field in ("postings_requests", "cache_hits", "lists_decoded",
                      "meta_block_reads", "blocks_read", "blocks_skipped",
                      "bytes_decoded", "intersects_vectorized",
                      "intersects_scalar"):
            index_totals[field] = sum(stats["index"][field]
                                      for stats in per_shard)
        index_totals["decode_path"] = decode_path_of(
            index_totals["intersects_vectorized"],
            index_totals["intersects_scalar"])
        cache_hits = sum(stats["cache"]["hits"] for stats in per_shard)
        cache_misses = sum(stats["cache"]["misses"] for stats in per_shard)
        cache_requests = cache_hits + cache_misses
        out: dict[str, dict[str, object]] = {
            "index": index_totals,
            "cache": {
                "policy": per_shard[0]["cache"]["policy"],
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (cache_hits / cache_requests
                             if cache_requests else 0.0),
            },
            "store": self._base.stats.snapshot(),
            "shards": {
                "count": len(self._shards),
                "policy": self._policy.name,
                "workers": self._executor.max_workers,
                "exec": self.counters.snapshot(),
            },
        }
        wal = self._base.wal_info()
        if wal is not None:
            out["wal"] = wal
        mvcc = self._base.mvcc_info()
        if mvcc is not None:
            with self._gen_lock:
                mvcc["open_snapshots"] = sum(self._base_counts.values())
                mvcc["retired_generations"] = len(self._retired_bases)
            out["mvcc"] = mvcc
        return out

    def reset_stats(self) -> None:
        for engine in self._shards:
            engine.reset_stats()
        self.counters = ExecCounters()

    # -- introspection -----------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[NestedSetIndex, ...]:
        """The per-shard engines (read-only tuple; order = shard number)."""
        return tuple(self._shards)

    @property
    def policy(self) -> object:
        return self._policy

    @property
    def workers(self) -> int:
        return self._executor.max_workers

    @property
    def rwlock(self) -> RWLock:
        """The fallback reader/writer lock (only engaged when the base
        store lacks MVCC support; see the module docstring)."""
        return self._rwlock

    @property
    def mvcc(self) -> bool:
        """True when fan-outs are version-based (MVCC base store)."""
        return self._mvcc

    @property
    def base_store(self) -> KVStore:
        return self._base

    # -- replication hooks --------------------------------------------------
    # All shards share one base store / one pager / one shipped log, so
    # one replicated commit group can touch any shard's namespace: the
    # hooks fan out to every shard engine.

    def note_replicated_apply(self, version: int | None = None) -> None:
        for engine in self._shards:
            engine.note_replicated_apply(version)

    def finish_replicated_apply(self) -> None:
        for engine in self._shards:
            engine.finish_replicated_apply()
        self._retire_group_pin()

    @property
    def n_records(self) -> int:
        return sum(engine.n_records for engine in self._shards)

    @property
    def n_nodes(self) -> int:
        return sum(engine.n_nodes for engine in self._shards)

    def records(self) -> Iterator[tuple[str, NestedSet]]:
        """All ``(key, tree)`` records, shard by shard."""
        for engine in self._shards:
            yield from engine.records()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._retire_group_pin()
        for engine in self._shards:
            engine.close()   # flushes writers; views leave the base open
        self._executor.shutdown()
        with self._gen_lock:
            base = self._base
            defer = self._base_counts.get(base, 0) > 0
            if defer:
                self._retired_bases.add(base)
        if not defer:
            base.close()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _SharedGroup:
    """A refcounted snapshot group shared by every fan-out at one
    committed base version (guarded by the index's ``_pin_lock``)."""

    __slots__ = ("base", "base_snap", "snaps", "version", "refs",
                 "retired")

    def __init__(self, base: KVStore, base_snap: KVStore,
                 snaps: "list[object]", version: int | None) -> None:
        self.base = base
        self.base_snap = base_snap
        self.snaps = snaps
        self.version = version
        self.refs = 1
        self.retired = False


class ShardGroupSnapshot:
    """One pinned base version, queryable across every shard.

    Wraps the per-shard :class:`~repro.core.engine.Snapshot` handles of
    one :meth:`ShardedIndex.snapshot` call.  All reads fan out
    sequentially (the handle is a consistency primitive, not a
    throughput one) and merge exactly like the live fan-out path.
    """

    def __init__(self, owner: ShardedIndex) -> None:
        self._stack = ExitStack()
        self.snapshots: Sequence = self._stack.enter_context(
            owner._snapshot_group())

    @property
    def version(self) -> int | None:
        """The pinned base-store version (None on a non-MVCC store)."""
        for snap in self.snapshots:
            return snap.version
        return None

    def query(self, query: object, **options: object) -> list[str]:
        """Evaluate one query against the pinned version, merged."""
        return ShardedIndex._merge_sorted(
            snap.query(query, **options) for snap in self.snapshots)

    def query_batch(self, queries: Sequence[object],
                    **options: object) -> list[list[str]]:
        """Evaluate many queries against the one pinned version."""
        per_shard = [snap.query_batch(queries, **options)
                     for snap in self.snapshots]
        return [ShardedIndex._merge_sorted(parts)
                for parts in zip(*per_shard)]

    def close(self) -> None:
        self._stack.close()

    def __enter__(self) -> "ShardGroupSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
