"""The inverted file for nested sets (Section 2, Table 2).

The key space is the set of all atomic values occurring in the collection
``S``.  Every internal node of every indexed tree receives a globally unique
integer id, assigned in *preorder* -- a deliberate choice that makes the id
itself the preorder rank, so the ancestor test needed by homeomorphic
containment (Section 4.2) is the constant-time interval check
``anc < desc <= max_desc(anc)``.

Per atom ``a``, the store holds the posting list ``S_IF(a)`` of pairs
``(p, C)`` (owner node, sorted internal children).  Beyond the paper's
Table 2 we persist:

* a node-metadata table (record ordinal, leaf count, subtree end, root
  flag), blocked 512 entries per store value -- leaf counts power the
  equality/superset joins of Section 4.1, subtree ends power homeomorphism;
* the record table (key, root id, and the tree itself in canonical text
  form) so queries can be sampled and results verified;
* an ``ALL`` list (every internal node) and a ``ZERO`` list (nodes with no
  leaf children) enabling empty-set query nodes and the superset join;
* the atom document-frequency ranking that seeds the frequency cache.

Everything lives in one :class:`~repro.storage.kvstore.KVStore` under key
prefixes, so the index persists on the disk engines and reopens cheaply.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple

from ..storage import KVStore, open_store
from ..storage.codec import (
    DEFAULT_BLOCK_SIZE,
    decode_blocked_header,
    decode_str,
    decode_uint_list,
    decode_varint,
    encode_blocked,
    encode_str,
    encode_varint,
)
from .cache import BlockCache, ListCache, NoCache
from .model import Atom, NestedSet
from .postings import LazyPostingList, PostingList, intersect
from .segments import (
    BLOCK_FORMATS,
    FORMAT_PACKED,
    FORMAT_PLAIN,
    FORMAT_SEGMENTED,
    decode_header,
    decode_plain,
    encode_plain,
    encode_segmented,
    overlapping_segments,
    total_of,
    value_format,
)

_ATOM_PREFIX = b"A:"
_META_PREFIX = b"N:"
_RECORD_PREFIX = b"R:"
_ALL_PREFIX = b"L:all:"
_ZERO_PREFIX = b"L:zero:"
_CONFIG_KEY = b"M:config"
_FREQ_KEY = b"M:freq"
_DELETED_KEY = b"M:deleted"
_DEAD_COUNT_KEY = b"M:dead"
_KEYMAP_PREFIX = b"K:"
_SEGMENT_PREFIX = b"G:"

_META_ENTRY = struct.Struct("<IIQB")
#: Estimated CPython footprint of one decoded posting ``(p, (c, ...))``:
#: outer 2-tuple (56) + head int (28) + children tuple with ~1 small-int
#: child on average (40).  Used only for the ``block_stats`` report.
_DECODED_POSTING_BYTES = 124
#: Node-metadata entries per store value.
META_BLOCK = 512
#: Postings per block of the ALL / ZERO lists.
LIST_BLOCK = 4096
_FLAG_ROOT = 1


class InvertedFileError(Exception):
    """Raised for malformed or inconsistent index contents."""


class NodeMeta(NamedTuple):
    """Per-internal-node bookkeeping."""

    record: int      # ordinal of the owning record
    leaf_count: int  # number of leaf (atom) children
    max_desc: int    # last preorder id in this node's subtree
    is_root: bool    # True when the node is a record root


@dataclass
class QueryStats:
    """Counters for index accesses made on behalf of queries."""

    postings_requests: int = 0
    cache_hits: int = 0
    lists_decoded: int = 0
    meta_block_reads: int = 0
    segments_read: int = 0
    segments_skipped: int = 0
    blocks_read: int = 0
    blocks_skipped: int = 0
    bytes_decoded: int = 0
    #: Intersections answered by the array-native numpy kernel vs. the
    #: scalar cursor/hash-set path -- together they derive the
    #: ``decode_path`` EXPLAIN attribute.
    intersects_vectorized: int = 0
    intersects_scalar: int = 0

    @property
    def decode_path(self) -> str:
        """Which intersection kernel served: vectorized, scalar or mixed."""
        return decode_path_of(self.intersects_vectorized,
                              self.intersects_scalar)

    def reset(self) -> None:
        self.postings_requests = 0
        self.cache_hits = 0
        self.lists_decoded = 0
        self.meta_block_reads = 0
        self.segments_read = 0
        self.segments_skipped = 0
        self.blocks_read = 0
        self.blocks_skipped = 0
        self.bytes_decoded = 0
        self.intersects_vectorized = 0
        self.intersects_scalar = 0


def decode_path_of(vectorized: int, scalar: int) -> str:
    """Collapse kernel counters to the ``decode_path`` label.

    ``scalar`` when nothing vectorized ran (including the no-intersection
    case: the fallback path is what *would* have run), ``mixed`` when a
    query group hit both kernels (possible across shards or batches).
    """
    if vectorized and scalar:
        return "mixed"
    return "vectorized" if vectorized else "scalar"


def atom_token(atom: Atom) -> str:
    """Type-tagged text form of an atom (ints and strings must not clash)."""
    if isinstance(atom, bool):
        raise TypeError("bool is not an atom")
    if isinstance(atom, int):
        return f"i:{atom}"
    return f"s:{atom}"


def atom_from_token(token: str) -> Atom:
    """Inverse of :func:`atom_token`."""
    tag, _, body = token.partition(":")
    if tag == "i":
        return int(body)
    if tag == "s":
        return body
    raise InvertedFileError(f"bad atom token {token!r}")


def _atom_store_key(atom: Atom) -> bytes:
    return _ATOM_PREFIX + atom_token(atom).encode("utf-8")


class InvertedFile:
    """The nested-set inverted file over a key-value store."""

    def __init__(self, store: KVStore, cache: ListCache | None = None) -> None:
        self._store = store
        self.cache = cache if cache is not None else NoCache()
        self.block_cache = BlockCache()
        self.stats = QueryStats()
        #: Modification epochs (:class:`repro.core.snapshot.ModEpochs`),
        #: attached by the engine; block-cache keys become epoch-scoped
        #: so commits never invalidate a pinned reader's decoded blocks.
        self._epochs = None
        self._meta_cache: dict[int, bytes] = {}
        self._meta_cache_cap = 256
        self._key_cache: dict[int, str] = {}
        self._all_nodes: PostingList | None = None
        self._zero_leaf: PostingList | None = None
        self.reload_config()

    def reload_config(self) -> None:
        """(Re)read persisted configuration, tombstones and dead counts.

        Called at construction and again by the replication tier after
        shipped commit groups rewrote the store underneath this live
        object: the cached counters, tombstone set, node-metadata blocks
        and ALL/ZERO lists must all be refreshed before promotion or any
        unversioned read.
        """
        store = self._store
        raw = store.get(_CONFIG_KEY)
        if raw is None:
            raise InvertedFileError("store holds no inverted-file configuration")
        self.n_records, pos = decode_varint(raw, 0)
        self.n_nodes, pos = decode_varint(raw, pos)
        self._n_all_blocks, pos = decode_varint(raw, pos)
        self._n_zero_blocks, pos = decode_varint(raw, pos)
        # Trailing config varints are version extensions: indexes written
        # before a field existed simply end early and get the default.
        self.segment_size = 0
        if pos < len(raw):
            self.segment_size, pos = decode_varint(raw, pos)
        self.block_size = 0
        if pos < len(raw):
            self.block_size, pos = decode_varint(raw, pos)
        self._meta_cache.clear()
        self._all_nodes = None
        self._zero_leaf = None
        self.deleted: set[int] = set()
        deleted_raw = store.get(_DELETED_KEY)
        if deleted_raw is not None:
            ordinals, _pos = decode_uint_list(deleted_raw)
            self.deleted = set(ordinals)
        #: Per-atom count of postings owned by tombstoned records.  The
        #: document-frequency table keeps counting them until compaction;
        #: subtracting these yields the *live* counts that selectivity
        #: decisions (rarest-atom ordering, the planner) should use.
        self.dead_counts: dict[Atom, int] = {}
        dead_raw = store.get(_DEAD_COUNT_KEY)
        if dead_raw is not None:
            count, pos = decode_varint(dead_raw, 0)
            for _ in range(count):
                token, pos = decode_str(dead_raw, pos)
                dead, pos = decode_varint(dead_raw, pos)
                self.dead_counts[atom_from_token(token)] = dead

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[tuple[str, NestedSet]], *,
              storage: str = "memory", path: str | None = None,
              cache: ListCache | None = None, segment_size: int = 0,
              block_size: int | None = None,
              store: KVStore | None = None,
              **store_options: object) -> "InvertedFile":
        """Index a collection of ``(key, nested-set)`` records.

        ``storage`` selects the engine (``memory``/``diskhash``/``btree``);
        disk engines need a ``path``.  ``segment_size > 0`` stores posting
        lists longer than that many entries as range-tagged segments
        (:mod:`repro.core.segments`), enabling segment-skipping
        intersections and bounding store value sizes.  ``block_size``
        controls the block-compressed single-value format
        (:func:`repro.storage.codec.encode_blocked`): the default writes
        blocked values of :data:`~repro.storage.codec.DEFAULT_BLOCK_SIZE`
        postings whenever segmentation is off; ``block_size=0`` forces the
        legacy plain format (and is implied by ``segment_size > 0`` --
        the two list layouts are mutually exclusive).  ``store`` accepts a
        pre-opened store (e.g. a namespaced view of a shared store, see
        :mod:`repro.storage.namespace`); ``storage``/``path`` are ignored
        then.  The whole posting accumulation is in-memory (index
        construction is an offline step in the paper's setting); the
        finished lists are then written to the store.
        """
        if block_size is None:
            block_size = 0 if segment_size else DEFAULT_BLOCK_SIZE
        if segment_size and block_size:
            raise ValueError("segment_size and block_size are exclusive")
        if store is None:
            store = open_store(storage, path, create=True, **store_options)
        postings: dict[Atom, list[tuple[int, tuple[int, ...]]]] = {}
        all_nodes: list[tuple[int, tuple[int, ...]]] = []
        zero_leaf: list[tuple[int, tuple[int, ...]]] = []
        meta_entries: list[bytes] = []
        next_id = 0
        n_records = 0

        def walk(node: NestedSet, ordinal: int, is_root: bool) -> int:
            nonlocal next_id
            node_id = next_id
            next_id += 1
            meta_entries.append(b"")  # reserve slot; filled after subtree
            # Children are visited in canonical text order for determinism;
            # ids are handed out sequentially during the visit, so the
            # resulting child-id tuple is ascending, as postings require.
            child_ids = tuple(walk(child, ordinal, False)
                              for child in sorted(node.children,
                                                  key=lambda c: c.to_text()))
            max_desc = next_id - 1
            entry = _META_ENTRY.pack(ordinal, len(node.atoms), max_desc,
                                     _FLAG_ROOT if is_root else 0)
            meta_entries[node_id] = entry
            posting = (node_id, child_ids)
            for atom in node.atoms:
                postings.setdefault(atom, []).append(posting)
            all_nodes.append(posting)
            if not node.atoms:
                zero_leaf.append(posting)
            return node_id

        record_blobs: list[bytes] = []
        for key, value in records:
            tree = value if isinstance(value, NestedSet) \
                else NestedSet.from_obj(value)
            ordinal = n_records
            n_records += 1
            root_id = walk(tree, ordinal, True)
            blob = encode_str(key) + encode_varint(root_id) + \
                encode_str(tree.to_text())
            record_blobs.append(blob)

        # walk() appends postings post-order (a node's posting lands after
        # its descendants'), so every list must be re-sorted on head id
        # before the delta encoder sees it.
        for atom, plist in postings.items():
            entries = sorted(plist)
            if segment_size and len(entries) > segment_size:
                header, blobs = encode_segmented(entries, segment_size)
                store.put(_atom_store_key(atom), header)
                token = atom_token(atom).encode("utf-8")
                for seg_no, blob in enumerate(blobs):
                    store.put(_SEGMENT_PREFIX + token + b":" +
                              encode_varint(seg_no), blob)
            elif block_size:
                store.put(_atom_store_key(atom),
                          encode_blocked(entries, block_size))
            else:
                store.put(_atom_store_key(atom), encode_plain(entries))
        n_all_blocks = _write_blocks(store, _ALL_PREFIX, sorted(all_nodes))
        n_zero_blocks = _write_blocks(store, _ZERO_PREFIX, sorted(zero_leaf))
        for block_start in range(0, len(meta_entries), META_BLOCK):
            block_no = block_start // META_BLOCK
            chunk = b"".join(meta_entries[block_start:block_start + META_BLOCK])
            store.put(_META_PREFIX + encode_varint(block_no), chunk)
        for ordinal, blob in enumerate(record_blobs):
            store.put(_RECORD_PREFIX + encode_varint(ordinal), blob)
            key, _pos = decode_str(blob, 0)
            store.put(_KEYMAP_PREFIX + key.encode("utf-8"),
                      encode_varint(ordinal))
        freq_blob = bytearray(encode_varint(len(postings)))
        for atom, plist in sorted(postings.items(),
                                  key=lambda item: (-len(item[1]),
                                                    atom_token(item[0]))):
            freq_blob += encode_str(atom_token(atom))
            freq_blob += encode_varint(len(plist))
        store.put(_FREQ_KEY, bytes(freq_blob))
        config = encode_varint(n_records) + encode_varint(next_id) + \
            encode_varint(n_all_blocks) + encode_varint(n_zero_blocks) + \
            encode_varint(segment_size) + encode_varint(block_size)
        store.put(_CONFIG_KEY, config)
        store.sync()
        return cls(store, cache=cache)

    @classmethod
    def open(cls, storage: str, path: str,
             cache: ListCache | None = None,
             **store_options: object) -> "InvertedFile":
        """Reopen a previously built disk-resident index."""
        store = open_store(storage, path, create=False, **store_options)
        return cls(store, cache=cache)

    # -- posting access -----------------------------------------------------

    def postings(self, atom: Atom) -> PostingList | LazyPostingList:
        """Retrieve ``S_IF(atom)`` through the list cache.

        Blocked-format values come back lazy (block payloads still
        encoded); the legacy formats come back fully materialized.
        """
        self.stats.postings_requests += 1
        cached = self.cache.get(atom)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        raw = self._store.get(_atom_store_key(atom))
        if raw is None:
            plist = PostingList()
        else:
            plist = self._decode_atom_value(atom, raw)
            self.stats.lists_decoded += 1
        self.cache.admit(atom, plist)
        return plist

    def _decode_atom_value(self, atom: Atom, raw: bytes
                           ) -> PostingList | LazyPostingList:
        """Wrap an atom value of any physical format as a posting list.

        Plain and segmented values materialize eagerly (the legacy
        formats); blocked and packed values come back as a
        :class:`~repro.core.postings.LazyPostingList` whose blocks decode
        on demand through the shared block cache.
        """
        fmt = value_format(raw)
        if fmt == FORMAT_PLAIN:
            return PostingList(decode_plain(raw))
        if fmt in BLOCK_FORMATS:
            return LazyPostingList(raw, cache=self.block_cache,
                                   cache_key=self._block_cache_key(atom),
                                   stats=self.stats)
        if fmt != FORMAT_SEGMENTED:
            raise InvertedFileError(
                f"atom {atom!r}: unknown value format {fmt} "
                "(index built by an incompatible version?)")
        header = decode_header(raw)
        entries: list[tuple[int, tuple[int, ...]]] = []
        token = atom_token(atom).encode("utf-8")
        for seg_no in range(len(header.segments)):
            blob = self._store.get(_SEGMENT_PREFIX + token + b":" +
                                   encode_varint(seg_no))
            if blob is None:
                raise InvertedFileError(
                    f"missing segment {seg_no} of atom {atom!r}")
            entries.extend(PostingList.decode(blob).entries)
            self.stats.segments_read += 1
        return PostingList(entries)

    def _block_cache_key(self, atom: Atom) -> "str | tuple":
        """List-level key for the shared block cache.

        A standalone inverted file keys blocks by atom token (and
        relies on :meth:`~repro.core.cache.BlockCache.invalidate` after
        updates).  With modification epochs attached (the engine's MVCC
        read path, :mod:`repro.core.snapshot`), the key gains the
        atom's epoch floor at this view's version, so an append starts
        a fresh key instead of invalidating anyone's decoded blocks.
        """
        token = atom_token(atom)
        if self._epochs is None:
            return token
        return (token, self._epochs.floor(token,
                                          getattr(self, "version", None)))

    def postings_overlapping(self, atom: Atom, lo: int, hi: int
                             ) -> PostingList | LazyPostingList:
        """Postings of ``atom`` restricted (physically) to ``[lo, hi]``.

        For segmented values, a superset of the postings with heads in
        the range (whole overlapping segments are returned) --
        sufficient for membership probing during intersection.  Blocked
        values are returned lazily (the galloping intersection decodes
        only probed blocks, which subsumes the range restriction);
        plain values and cache hits fall back to the full list.
        """
        self.stats.postings_requests += 1
        cached = self.cache.get(atom)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        raw = self._store.get(_atom_store_key(atom))
        if raw is None:
            return PostingList()
        if value_format(raw) != FORMAT_SEGMENTED:
            # Plain: nothing to skip.  Blocked: the lazy list's skip
            # directory already restricts decoding to probed blocks, so
            # the full (still-encoded) list is the right thing to cache
            # and return.
            plist = self._decode_atom_value(atom, raw)
            self.stats.lists_decoded += 1
            self.cache.admit(atom, plist)
            return plist
        header = decode_header(raw)
        wanted = overlapping_segments(header, lo, hi)
        self.stats.segments_skipped += len(header.segments) - len(wanted)
        token = atom_token(atom).encode("utf-8")
        entries: list[tuple[int, tuple[int, ...]]] = []
        for seg_no in wanted:
            blob = self._store.get(_SEGMENT_PREFIX + token + b":" +
                                   encode_varint(seg_no))
            if blob is None:
                raise InvertedFileError(
                    f"missing segment {seg_no} of atom {atom!r}")
            entries.extend(PostingList.decode(blob).entries)
            self.stats.segments_read += 1
        # Partial lists must never poison the full-list cache.
        return PostingList(entries)

    def list_length(self, atom: Atom) -> int:
        """Posting count of ``atom`` in O(1) (header peek, no decode)."""
        cached = self.cache.get(atom)
        if cached is not None:
            return len(cached)
        raw = self._store.get(_atom_store_key(atom))
        return total_of(raw) if raw is not None else 0

    def live_list_length(self, atom: Atom) -> int:
        """Postings of ``atom`` owned by live (non-tombstoned) records.

        ``list_length`` measures decode cost (dead postings are still
        decoded until compaction); this measures selectivity, which is
        what candidate-ordering decisions want on a delete-heavy index.
        """
        return max(0, self.list_length(atom) - self.dead_counts.get(atom, 0))

    def intersect_atoms(self, atoms: list[Atom]) -> PostingList:
        """Candidate generation with rarest-first block/segment skipping.

        Fetches the rarest atom's list, bounds the feasible head range,
        and touches only the overlapping storage units of the other
        atoms: whole segments for the segmented format, individual
        blocks (via the galloping kernel in
        :func:`repro.core.postings.intersect`) for the blocked format.
        Identical results to intersecting the full lists; on skewed data
        most of a hot list stays encoded.
        """
        if not atoms:
            raise ValueError("intersect_atoms() needs at least one atom")
        if len(atoms) == 1:
            return self.postings(atoms[0])
        # Rank on live counts: dead postings inflate physical lengths
        # between compactions and would mislead the rarest-first choice.
        ranked = sorted(atoms, key=self.live_list_length)
        base = self.postings(ranked[0])
        if not base:
            return base
        lo = base.entries[0][0]
        hi = base.entries[-1][0]
        lists = [base]
        for atom in ranked[1:]:
            other = self.postings_overlapping(atom, lo, hi)
            if not other:
                return PostingList()
            lists.append(other)
        return intersect(lists, stats=self.stats)

    def all_nodes(self) -> PostingList:
        """Every internal node of the collection (memoized after first load)."""
        if self._all_nodes is None:
            self._all_nodes = self._read_blocks(_ALL_PREFIX, self._n_all_blocks)
        return self._all_nodes

    def zero_leaf_nodes(self) -> PostingList:
        """Internal nodes with no leaf children (memoized)."""
        if self._zero_leaf is None:
            self._zero_leaf = self._read_blocks(_ZERO_PREFIX,
                                                self._n_zero_blocks)
        return self._zero_leaf

    def _read_blocks(self, prefix: bytes, n_blocks: int) -> PostingList:
        entries: list[tuple[int, tuple[int, ...]]] = []
        for block_no in range(n_blocks):
            raw = self._store.get(prefix + encode_varint(block_no))
            if raw is None:
                raise InvertedFileError(f"missing list block {block_no} "
                                  f"under {prefix!r}")
            entries.extend(PostingList.decode(raw).entries)
        return PostingList(entries)

    # -- node metadata ----------------------------------------------------------

    def meta(self, node_id: int) -> NodeMeta:
        """Look up a node's metadata (through a small block cache)."""
        if node_id < 0 or node_id >= self.n_nodes:
            raise InvertedFileError(f"node id {node_id} out of range "
                              f"[0, {self.n_nodes})")
        block_no, offset = divmod(node_id, META_BLOCK)
        block = self._meta_cache.get(block_no)
        if block is None:
            raw = self._store.get(_META_PREFIX + encode_varint(block_no))
            if raw is None:
                raise InvertedFileError(f"missing node metadata block {block_no}")
            self.stats.meta_block_reads += 1
            if len(self._meta_cache) >= self._meta_cache_cap:
                # Concurrent readers may race this eviction; losing the
                # race (entry already gone, or the dict resized under
                # the iterator) only means another reader evicted first.
                try:
                    self._meta_cache.pop(next(iter(self._meta_cache)))
                except (KeyError, RuntimeError, StopIteration):
                    pass
            self._meta_cache[block_no] = raw
            block = raw
        record, leaf_count, max_desc, flags = _META_ENTRY.unpack_from(
            block, offset * _META_ENTRY.size)
        return NodeMeta(record, leaf_count, max_desc, bool(flags & _FLAG_ROOT))

    def max_desc(self, node_id: int) -> int:
        """End of the preorder interval of ``node_id`` (for homeo joins)."""
        return self.meta(node_id).max_desc

    def leaf_count(self, node_id: int) -> int:
        """Number of leaf children of ``node_id`` (for §4.1 joins)."""
        return self.meta(node_id).leaf_count

    # -- records -------------------------------------------------------------------

    def record(self, ordinal: int) -> tuple[str, int, NestedSet]:
        """Fetch ``(key, root node id, tree)`` for a record ordinal."""
        raw = self._store.get(_RECORD_PREFIX + encode_varint(ordinal))
        if raw is None:
            raise InvertedFileError(f"no record with ordinal {ordinal}")
        key, pos = decode_str(raw, 0)
        root_id, pos = decode_varint(raw, pos)
        text, _pos = decode_str(raw, pos)
        return key, root_id, NestedSet.parse(text)

    def record_key(self, ordinal: int) -> str:
        """Fetch just the key of a record (memoized -- keys are immutable
        and tiny, and result mapping touches them on every query)."""
        key = self._key_cache.get(ordinal)
        if key is not None:
            return key
        raw = self._store.get(_RECORD_PREFIX + encode_varint(ordinal))
        if raw is None:
            raise InvertedFileError(f"no record with ordinal {ordinal}")
        key, _pos = decode_str(raw, 0)
        self._key_cache[ordinal] = key
        return key

    def iter_records(self) -> Iterator[tuple[int, str, int, NestedSet]]:
        """Yield ``(ordinal, key, root id, tree)`` for every live record."""
        for ordinal in range(self.n_records):
            if ordinal in self.deleted:
                continue
            key, root_id, tree = self.record(ordinal)
            yield ordinal, key, root_id, tree

    @property
    def n_live_records(self) -> int:
        """Records not tombstoned by :mod:`repro.core.updates`."""
        return self.n_records - len(self.deleted)

    def ordinal_of_key(self, key: str) -> int | None:
        """Reverse lookup: record key -> ordinal (None when absent)."""
        raw = self._store.get(_KEYMAP_PREFIX + key.encode("utf-8"))
        if raw is None:
            return None
        ordinal, _pos = decode_varint(raw, 0)
        return ordinal if ordinal not in self.deleted else None

    # -- result mapping ----------------------------------------------------------------

    def heads_to_ordinals(self, heads: Iterable[int],
                          mode: str = "root") -> list[int]:
        """Map matched node ids to record ordinals under the match mode."""
        ordinals: set[int] = set()
        for head in heads:
            meta = self.meta(head)
            if mode == "root" and not meta.is_root:
                continue
            if meta.record in self.deleted:
                continue
            ordinals.add(meta.record)
        return sorted(ordinals)

    def heads_to_keys(self, heads: Iterable[int],
                      mode: str = "root") -> list[str]:
        """Map matched node ids to lexicographically sorted record keys."""
        return sorted(self.record_key(ordinal)
                      for ordinal in self.heads_to_ordinals(heads, mode))

    # -- statistics --------------------------------------------------------------------

    def frequencies(self) -> list[tuple[Atom, int]]:
        """Atom document frequencies, descending (seeds FrequencyCache)."""
        raw = self._store.get(_FREQ_KEY)
        if raw is None:
            raise InvertedFileError("index holds no frequency table")
        count, pos = decode_varint(raw, 0)
        out: list[tuple[Atom, int]] = []
        for _ in range(count):
            token, pos = decode_str(raw, pos)
            df, pos = decode_varint(raw, pos)
            out.append((atom_from_token(token), df))
        return out

    def live_frequencies(self) -> list[tuple[Atom, int]]:
        """Tombstone-adjusted document frequencies, descending.

        Equals :meth:`frequencies` on an index without pending deletes;
        after deletes, each atom's count excludes postings owned by
        tombstoned records, so selectivity estimates stay honest between
        compactions.  Atoms whose live count reaches zero are dropped.
        """
        live = []
        for atom, df in self.frequencies():
            count = df - self.dead_counts.get(atom, 0)
            if count > 0:
                live.append((atom, count))
        live.sort(key=lambda item: (-item[1], atom_token(item[0])))
        return live

    def iter_atoms(self) -> Iterator[Atom]:
        """Iterate over the key space (every distinct atom in S)."""
        for atom, _df in self.frequencies():
            yield atom

    def block_stats(self) -> dict[str, int | float]:
        """Physical statistics of the block-compressed posting lists.

        Scans every atom value's header (payloads stay encoded), so the
        cost is one store read per atom -- fine for the ``info`` command,
        not for the query path.  ``decoded_bytes`` estimates the
        in-memory footprint of the fully materialized postings (head +
        children as Python int/tuple objects); comparing it with
        ``compressed_bytes`` shows what the delta-varint blocks save.
        """
        n_lists = n_blocked = n_packed = n_blocks = n_postings = 0
        compressed = decoded = directory = 0
        for atom in self.iter_atoms():
            raw = self._store.get(_atom_store_key(atom))
            if raw is None:
                continue
            n_lists += 1
            fmt = value_format(raw)
            if fmt not in BLOCK_FORMATS:
                continue
            header = decode_blocked_header(raw)
            n_blocked += 1
            if fmt == FORMAT_PACKED:
                n_packed += 1
            n_blocks += len(header.blocks)
            n_postings += header.total
            compressed += len(raw)
            payload = sum(info.length for info in header.blocks)
            directory += len(raw) - payload
            decoded += header.total * _DECODED_POSTING_BYTES
        return {
            "lists": n_lists,
            "blocked_lists": n_blocked,
            "packed_lists": n_packed,
            "blocks": n_blocks,
            "block_size": self.block_size,
            "postings": n_postings,
            "avg_block_fill": (n_postings / n_blocks) if n_blocks else 0.0,
            "compressed_bytes": compressed,
            "directory_bytes": directory,
            "decoded_bytes": decoded,
        }

    @property
    def store(self) -> KVStore:
        """The underlying key-value store (for stats and tests)."""
        return self._store

    def reset_stats(self) -> None:
        """Zero query-time counters on the index, caches and store."""
        self.stats.reset()
        self.cache.stats.reset()
        self.block_cache.stats.reset()
        self._store.stats.reset()

    # -- lifecycle -----------------------------------------------------------------------

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "InvertedFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _write_blocks(store: KVStore, prefix: bytes,
                  entries: list[tuple[int, tuple[int, ...]]]) -> int:
    """Write a long posting list as fixed-size blocks; returns block count."""
    n_blocks = 0
    for start in range(0, len(entries), LIST_BLOCK):
        chunk = PostingList(entries[start:start + LIST_BLOCK]).encode()
        store.put(prefix + encode_varint(n_blocks), chunk)
        n_blocks += 1
    return n_blocks
