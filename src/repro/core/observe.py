"""Observer protocol the execution stages report progress to.

Every algorithm threads an optional observer through its per-node
evaluation: ``enter_node`` when a query node's evaluation begins,
``record_candidates`` once its candidate list is known, ``exit_node``
with the surviving match count.  The default :data:`NULL_OBSERVER` makes
the hooks free when nobody is listening; the EXPLAIN trace sink
(:mod:`repro.core.exec.observer`) subclasses this to build the rendered
trace tree.  Keeping the base protocol here -- below the algorithm
modules -- lets them stay import-independent of the execution layer.
"""

from __future__ import annotations


class PlanObserver:
    """No-op base: subclass and override what you want to see."""

    __slots__ = ()

    def enter_node(self, qnode) -> None:
        """A query node's evaluation begins (pre-order)."""

    def record_candidates(self, candidates: int,
                          restricted: int | None = None) -> None:
        """The current node's candidate count (and, for algorithms that
        restrict candidates to a parent frontier, the restricted count)."""

    def exit_node(self, survivors: int) -> None:
        """The current node's evaluation ends with ``survivors`` matches."""


#: Shared do-nothing observer (algorithms default to this).
NULL_OBSERVER = PlanObserver()
