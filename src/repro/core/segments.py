"""Segmented posting lists: blocked storage plus segment skipping.

The paper assumes "the payloads for any given internal query node, i.e.,
the retrieved inverted lists, fit in main memory", noting that "the
I/O-efficient blocked approach of Mamoulis for flat sets [24] could be
easily used, if necessary, to lift this assumption" (Section 5.1).  This
module lifts it: an atom's posting list may be stored as fixed-size
*segments*, each carrying its head-id range in a compact header, so that

* a list is never materialized as one giant store value (bounded value
  sizes on the disk engines), and
* the intersection primitive can **skip segments**: it fetches the rarest
  atom's list, derives the head range candidates can fall in, and decodes
  only the overlapping segments of the hotter atoms -- on skewed data most
  segments of a hot list never leave the store.

Physical format.  Every atom value starts with a format byte::

    0x00  plain:      [0x00][postings blob]
    0x01  segmented:  [0x01][total][n_segments]
                      { [min_head delta][span] }*   (per segment)

Segment ``i``'s postings live under a separate store key; ``min_head`` is
delta-encoded against the previous segment's max, ``span`` is
``max_head - min_head``.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from ..storage.codec import (
    BLOCKED_FORMAT_BYTE,
    PACKED_FORMAT_BYTE,
    Posting,
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
)

FORMAT_PLAIN = 0
FORMAT_SEGMENTED = 1
#: Block-compressed single-value format (skip directory + lazy blocks);
#: the codec lives in :mod:`repro.storage.codec`, the lazy reader in
#: :class:`repro.core.postings.LazyPostingList`.
FORMAT_BLOCKED = BLOCKED_FORMAT_BYTE
#: Packed variant of the blocked format: same directory, fixed-width
#: block payloads bulk-decodable with numpy (``decode_packed_arrays``).
FORMAT_PACKED = PACKED_FORMAT_BYTE
#: Formats the lazy block reader handles (skip directory + payloads).
BLOCK_FORMATS = (FORMAT_BLOCKED, FORMAT_PACKED)

#: Default postings per segment when segmentation is enabled.
DEFAULT_SEGMENT_SIZE = 1024


class SegmentInfo(NamedTuple):
    """One segment's directory entry: head-id range [min_head, max_head]."""

    min_head: int
    max_head: int


class SegmentHeader(NamedTuple):
    """Decoded segmented-value header."""

    total: int
    segments: tuple[SegmentInfo, ...]


def encode_plain(postings: Sequence[Posting]) -> bytes:
    """Encode an unsegmented atom value."""
    return bytes([FORMAT_PLAIN]) + encode_postings(postings)


def encode_header(total: int, segments: Sequence[SegmentInfo]) -> bytes:
    """Encode a segmented value's directory (format byte included)."""
    header = bytearray([FORMAT_SEGMENTED])
    header += encode_varint(total)
    header += encode_varint(len(segments))
    previous_max = 0
    for info in segments:
        header += encode_varint(info.min_head - previous_max)
        header += encode_varint(info.max_head - info.min_head)
        previous_max = info.max_head
    return bytes(header)


def encode_segmented(postings: Sequence[Posting], segment_size: int
                     ) -> tuple[bytes, list[bytes]]:
    """Split a sorted posting list into segments.

    Returns ``(header_value, segment_blobs)``; the caller stores the
    header under the atom key and blob ``i`` under the segment key ``i``.
    """
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    chunks = [postings[start:start + segment_size]
              for start in range(0, len(postings), segment_size)]
    infos = [SegmentInfo(chunk[0][0], chunk[-1][0]) for chunk in chunks]
    blobs = [encode_postings(chunk) for chunk in chunks]
    return encode_header(len(postings), infos), blobs


def value_format(raw: bytes) -> int:
    """The format byte of an atom value."""
    if not raw:
        raise ValueError("empty atom value")
    return raw[0]


def decode_plain(raw: bytes) -> list[Posting]:
    """Decode an unsegmented atom value (skipping the format byte)."""
    return decode_postings(raw, 1)


def decode_header(raw: bytes) -> SegmentHeader:
    """Decode a segmented atom value's directory."""
    if value_format(raw) != FORMAT_SEGMENTED:
        raise ValueError("not a segmented value")
    total, pos = decode_varint(raw, 1)
    n_segments, pos = decode_varint(raw, pos)
    segments = []
    previous_max = 0
    for _ in range(n_segments):
        min_delta, pos = decode_varint(raw, pos)
        span, pos = decode_varint(raw, pos)
        min_head = previous_max + min_delta
        max_head = min_head + span
        segments.append(SegmentInfo(min_head, max_head))
        previous_max = max_head
    return SegmentHeader(total, tuple(segments))


def overlapping_segments(header: SegmentHeader, lo: int, hi: int
                         ) -> list[int]:
    """Indices of segments whose head range intersects ``[lo, hi]``."""
    return [index for index, info in enumerate(header.segments)
            if info.max_head >= lo and info.min_head <= hi]


def total_of(raw: bytes) -> int:
    """Posting count of an atom value without decoding the postings.

    For plain values the count is the first varint of the blob; for
    segmented values it sits in the header -- either way this is O(1),
    which makes rarest-first intersection ordering cheap.
    """
    fmt = value_format(raw)
    if fmt in (FORMAT_PLAIN, FORMAT_SEGMENTED, FORMAT_BLOCKED,
               FORMAT_PACKED):
        # Every format leads with the posting count (blocked values
        # put ``total`` right after the format byte for exactly this).
        count, _pos = decode_varint(raw, 1)
        return count
    raise ValueError(f"unknown atom value format {fmt}")
