"""Posting lists and the inverted-list operations of Section 2.

A posting is a pair ``(p, C)``: ``p`` is the integer id of an internal node
that owns a leaf with the list's atom, and ``C`` is the sorted tuple of
``p``'s internal-node children.  :class:`PostingList` wraps a list of
postings sorted on ``p`` and provides

* k-way **intersection** on heads (candidate generation, Algorithm 1 line 1,
  Algorithm 2 line 8, Algorithm 4 line 11),
* **multiset union** with multiplicities (superset and ε-overlap joins of
  Section 4.1),
* the **navigation join** ``L ▷ L'`` used by the top-down algorithm to step
  one nesting level down while remembering the original head of each path.

:class:`PathList` is the navigation-state companion: entries ``(head, C)``
where ``head`` is the original candidate for the query root and ``C`` the
current frontier of children ids (possibly several entries per head).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterable, Iterator, Sequence

from ..storage.codec import (
    BlockedHeader,
    Posting,
    decode_block,
    decode_blocked_header,
    decode_postings,
    encode_postings,
)


class PostingList:
    """An immutable posting list sorted on head ids (unique heads)."""

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence[Posting] = ()) -> None:
        self.entries: tuple[Posting, ...] = tuple(entries)

    @classmethod
    def from_unsorted(cls, entries: Iterable[Posting]) -> "PostingList":
        """Build from postings in arbitrary order (sorts on head)."""
        return cls(sorted(entries))

    @classmethod
    def decode(cls, raw: bytes) -> "PostingList":
        """Decode the on-disk representation."""
        return cls(decode_postings(raw))

    def encode(self) -> bytes:
        """Encode to the on-disk representation."""
        return encode_postings(self.entries)

    def heads(self) -> set[int]:
        """The set of head ids ``p``."""
        return {p for p, _ in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:
        return f"PostingList({list(self.entries)!r})"


class LazyPostingList:
    """A block-compressed posting list that decodes blocks on demand.

    Wraps the raw bytes of a blocked atom value
    (:func:`repro.storage.codec.encode_blocked`): the skip directory is
    decoded up front, block payloads only when touched.  Length and head
    range are O(1); :meth:`seek` resolves one head by decoding at most
    one block; :attr:`entries` materializes everything (the structural
    phases of the algorithms still want full lists).

    Decoded blocks go through an optional shared
    :class:`~repro.core.cache.BlockCache` (``cache`` + ``cache_key``) so
    hot blocks survive across queries; without one, blocks decoded for
    :attr:`entries` are memoized locally.  ``stats`` accepts the owning
    index's :class:`~repro.core.invfile.QueryStats` and is bumped on
    every block decode (``blocks_read``/``bytes_decoded``) and every
    skip-directory jump (``blocks_skipped``).
    """

    __slots__ = ("raw", "header", "_cache", "_cache_key", "_stats",
                 "_local", "_entries")

    def __init__(self, raw: bytes, *, header: BlockedHeader | None = None,
                 cache=None, cache_key: object = None,
                 stats=None) -> None:
        self.raw = raw
        self.header = header if header is not None \
            else decode_blocked_header(raw)
        self._cache = cache
        self._cache_key = cache_key
        self._stats = stats
        self._local: dict[int, tuple[Posting, ...]] | None = None
        self._entries: tuple[Posting, ...] | None = None

    # -- block access ------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self.header.blocks)

    def block(self, index: int) -> tuple[Posting, ...]:
        """Decode block ``index`` (through the shared block cache)."""
        if self._entries is not None:
            info = self.header.blocks[index]
            start = sum(b.count for b in self.header.blocks[:index])
            return self._entries[start:start + info.count]
        key = (self._cache_key, index)
        if self._cache is not None:
            hit = self._cache.get(key)
            if hit is not None:
                return hit
        elif self._local is not None and index in self._local:
            return self._local[index]
        info = self.header.blocks[index]
        block = tuple(decode_block(self.raw, info))
        if self._stats is not None:
            self._stats.blocks_read += 1
            self._stats.bytes_decoded += info.length
        if self._cache is not None:
            self._cache.admit(key, block)
        else:
            if self._local is None:
                self._local = {}
            self._local[index] = block
        return block

    @property
    def entries(self) -> tuple[Posting, ...]:
        """All postings, decoded and memoized on first access."""
        if self._entries is None:
            out: list[Posting] = []
            for index in range(self.n_blocks):
                out.extend(self.block(index))
            self._entries = tuple(out)
            self._local = None
        return self._entries

    # -- point lookup ------------------------------------------------------

    def seek(self, head: int) -> Posting | None:
        """The posting with ``head``, or None -- decodes at most one block."""
        blocks = self.header.blocks
        lo, hi = 0, len(blocks)
        while lo < hi:
            mid = (lo + hi) // 2
            if blocks[mid].max_head < head:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(blocks) or blocks[lo].min_head > head:
            return None
        block = self.block(lo)
        pos = bisect_left(block, (head,))
        if pos < len(block) and block[pos][0] == head:
            return block[pos]
        return None

    # -- PostingList read surface ------------------------------------------

    def heads(self) -> set[int]:
        return {p for p, _ in self.entries}

    def encode(self) -> bytes:
        """The (already encoded) on-disk representation."""
        return self.raw

    def __len__(self) -> int:
        return self.header.total

    def __bool__(self) -> bool:
        return self.header.total > 0

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (LazyPostingList, PostingList)):
            return self.entries == other.entries
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:
        return (f"LazyPostingList(total={self.header.total}, "
                f"blocks={self.n_blocks})")


class _BlockCursor:
    """Monotone membership cursor over a :class:`LazyPostingList`.

    ``contains`` must be probed with ascending heads (the intersection
    drives it from a sorted rare list).  The cursor gallops through the
    skip directory: blocks whose ``max_head`` lies before the probe are
    jumped over without decoding (counted as ``blocks_skipped``), and a
    probe landing in the gap between two blocks is answered from the
    directory alone.
    """

    __slots__ = ("_list", "_max_heads", "_block_no", "_block",
                 "_block_heads", "_stats")

    def __init__(self, lazy: LazyPostingList) -> None:
        self._list = lazy
        self._max_heads = [info.max_head for info in lazy.header.blocks]
        self._block_no = 0
        self._block: tuple[Posting, ...] | None = None
        self._block_heads: list[int] | None = None
        self._stats = lazy._stats

    def contains(self, head: int) -> bool:
        max_heads = self._max_heads
        n = len(max_heads)
        at = self._block_no
        if at >= n:
            return False
        if max_heads[at] < head:
            target = bisect_left(max_heads, head, lo=at + 1)
            skipped = target - at - (1 if self._block is not None else 0)
            if self._stats is not None and skipped > 0:
                self._stats.blocks_skipped += skipped
            self._block_no = at = target
            self._block = self._block_heads = None
            if at >= n:
                return False
        info = self._list.header.blocks[at]
        if head < info.min_head:
            return False
        if self._block is None:
            self._block = self._list.block(at)
            self._block_heads = [p for p, _ in self._block]
        heads = self._block_heads
        pos = bisect_left(heads, head)
        return pos < len(heads) and heads[pos] == head


def _membership(plist: "PostingList | LazyPostingList",
                n_probes: int) -> Callable[[int], bool]:
    """An ascending-probe membership test for one intersection operand.

    Gallop through the skip directory only when the driving list probes
    fewer times than the operand has blocks -- otherwise every block
    gets decoded anyway, and the flat hash-set probe beats a per-probe
    bisect.
    """
    if isinstance(plist, LazyPostingList) and plist._entries is None \
            and n_probes < plist.n_blocks:
        return _BlockCursor(plist).contains
    return plist.heads().__contains__


def intersect(lists: "Sequence[PostingList | LazyPostingList]"
              ) -> PostingList:
    """Intersect posting lists on their heads.

    This is the candidate-generation primitive: a node is a candidate match
    for query node ``n`` exactly when it appears in the list of *every*
    leaf atom of ``n``.  The rarest list drives: its heads (ascending) are
    galloped through the other lists' skip directories, so for
    block-compressed operands only blocks whose head range is actually
    probed get decoded -- the cost is governed by the rarest list, not the
    total postings length.  Decoded (plain) operands are probed as hash
    sets, as before.

    Any empty operand short-circuits to an empty result before the other
    lists are decoded or their head sets materialized.
    """
    if not lists:
        raise ValueError("intersect() needs at least one posting list")
    if len(lists) == 1:
        return lists[0]
    if any(len(plist) == 0 for plist in lists):
        return PostingList()
    rare = min(lists, key=len)
    others = sorted((plist for plist in lists if plist is not rare),
                    key=len)
    probes = [_membership(plist, len(rare)) for plist in others]
    entries = [entry for entry in rare.entries
               if all(probe(entry[0]) for probe in probes)]
    return PostingList(entries)


def multiset_union(lists: Sequence[PostingList]) -> list[tuple[int, tuple[int, ...], int]]:
    """Multiset union on heads: ``(p, C, multiplicity)`` per distinct head.

    The multiplicity counts in how many of the input lists ``p`` occurs,
    i.e. how many of the query node's leaf atoms also occur as leaves of
    ``p`` -- the quantity the superset and ε-overlap joins of Section 4.1
    filter on.
    """
    counts: dict[int, int] = {}
    children_of: dict[int, tuple[int, ...]] = {}
    for plist in lists:
        for p, children in plist.entries:
            counts[p] = counts.get(p, 0) + 1
            if p not in children_of:
                children_of[p] = children
    return [(p, children_of[p], counts[p]) for p in sorted(counts)]


class PathList:
    """Navigation paths of the top-down algorithm: ``(head, frontier)``.

    ``head`` is the candidate node for the *query root*; ``frontier`` the
    children ids reachable at the current nesting level via some chain of
    successful ``▷``-joins from ``head``.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence[tuple[int, tuple[int, ...]]] = ()) -> None:
        self.entries: tuple[tuple[int, tuple[int, ...]], ...] = tuple(entries)

    @classmethod
    def from_postings(cls, plist: PostingList) -> "PathList":
        """Initial paths: every root candidate heads its own path."""
        return cls(plist.entries)

    def heads(self) -> set[int]:
        """Set of original root candidates still alive on some path."""
        return {head for head, _ in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        return iter(self.entries)

    def __repr__(self) -> str:
        return f"PathList({list(self.entries)!r})"


def nav_join(paths: PathList, candidates: PostingList) -> PathList:
    """The inverted-list join ``L ▷ L'`` of Section 2.

    Keeps, for every path ``(head, C)`` and candidate ``(p', C')`` with
    ``p' ∈ C``, the extended path ``(head, C')``.  Several paths may share a
    head; duplicates ``(head, C')`` are collapsed.
    """
    if not paths or not candidates:
        return PathList()
    heads_by_child: dict[int, set[int]] = {}
    for head, frontier in paths.entries:
        for child in frontier:
            heads_by_child.setdefault(child, set()).add(head)
    out: list[tuple[int, tuple[int, ...]]] = []
    for p, children in candidates.entries:
        for head in heads_by_child.get(p, ()):
            out.append((head, children))
    return PathList(out)


def nav_join_descendant(paths: Sequence[tuple[int, int, int]],
                        candidates: PostingList
                        ) -> list[tuple[int, int, int]]:
    """Descendant-axis variant of ``▷`` for homeomorphic containment.

    ``paths`` entries are ``(head, node_id, max_desc)``: the query node is
    currently matched at ``node_id`` whose preorder subtree interval is
    ``(node_id, max_desc]``.  A candidate ``(p', C')`` qualifies for a path
    when ``node_id < p' <= max_desc`` (the constant-time interval test of
    Section 4.2).  Returns extended paths ``(head, p', max_desc')`` --
    ``max_desc'`` must be filled by the caller from node metadata, so here
    we return ``(head, p', -1)`` placeholders resolved upstream.
    """
    if not paths or not candidates:
        return []
    cand_ids = [p for p, _ in candidates.entries]
    out: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int]] = set()
    for head, node_id, max_desc in paths:
        lo = bisect_right(cand_ids, node_id)
        hi = bisect_right(cand_ids, max_desc, lo=lo)
        for index in range(lo, hi):
            key = (head, cand_ids[index])
            if key not in seen:
                seen.add(key)
                out.append((head, cand_ids[index], -1))
    return out


def heads_with_child_in(candidates: PostingList,
                        required: Sequence[set[int]]) -> PostingList:
    """The ``H(·)`` operator of the bottom-up algorithm (Algorithm 4 line 12).

    Keeps candidates having at least one child in *each* of the ``required``
    head sets.
    """
    if not required:
        return candidates
    entries = [(p, children) for p, children in candidates.entries
               if all(any(c in h for c in children) for h in required)]
    return PostingList(entries)


def heads_with_descendant_in(candidates: PostingList,
                             required_sorted: Sequence[Sequence[int]],
                             max_desc_of) -> PostingList:
    """Homeomorphic ``H(·)``: candidates must have a *descendant* in each
    required set.  ``required_sorted`` holds sorted id lists; ``max_desc_of``
    maps a node id to the end of its preorder interval."""
    if not required_sorted:
        return candidates
    entries = []
    for p, children in candidates.entries:
        end = max_desc_of(p)
        if all(_has_in_interval(ids, p, end) for ids in required_sorted):
            entries.append((p, children))
    return PostingList(entries)


def _has_in_interval(sorted_ids: Sequence[int], start: int, end: int) -> bool:
    """True when some id in ``sorted_ids`` lies in ``(start, end]``."""
    index = bisect_left(sorted_ids, start + 1)
    return index < len(sorted_ids) and sorted_ids[index] <= end
