"""Posting lists and the inverted-list operations of Section 2.

A posting is a pair ``(p, C)``: ``p`` is the integer id of an internal node
that owns a leaf with the list's atom, and ``C`` is the sorted tuple of
``p``'s internal-node children.  :class:`PostingList` wraps a list of
postings sorted on ``p`` and provides

* k-way **intersection** on heads (candidate generation, Algorithm 1 line 1,
  Algorithm 2 line 8, Algorithm 4 line 11),
* **multiset union** with multiplicities (superset and ε-overlap joins of
  Section 4.1),
* the **navigation join** ``L ▷ L'`` used by the top-down algorithm to step
  one nesting level down while remembering the original head of each path.

:class:`PathList` is the navigation-state companion: entries ``(head, C)``
where ``head`` is the original candidate for the query root and ``C`` the
current frontier of children ids (possibly several entries per head).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterable, Iterator, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

from ..storage.codec import (
    BlockedHeader,
    PACKED_FORMAT_BYTE,
    Posting,
    decode_block,
    decode_blocked_header,
    decode_packed_arrays,
    decode_postings,
    encode_postings,
)


class PostingList:
    """An immutable posting list sorted on head ids (unique heads)."""

    __slots__ = ("entries", "_heads_arr")

    def __init__(self, entries: Sequence[Posting] = ()) -> None:
        self.entries: tuple[Posting, ...] = tuple(entries)
        self._heads_arr = None

    @classmethod
    def from_unsorted(cls, entries: Iterable[Posting]) -> "PostingList":
        """Build from postings in arbitrary order (sorts on head)."""
        return cls(sorted(entries))

    @classmethod
    def decode(cls, raw: bytes) -> "PostingList":
        """Decode the on-disk representation."""
        return cls(decode_postings(raw))

    def encode(self) -> bytes:
        """Encode to the on-disk representation."""
        return encode_postings(self.entries)

    def heads(self) -> set[int]:
        """The set of head ids ``p``."""
        return {p for p, _ in self.entries}

    def heads_array(self):
        """All head ids as one sorted ``int64`` ndarray (memoized).

        Only meaningful when numpy is importable; the vectorized
        intersection is gated on that before calling here.
        """
        if self._heads_arr is None:
            self._heads_arr = _np.fromiter(
                (p for p, _ in self.entries), _np.int64, len(self.entries))
        return self._heads_arr

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:
        return f"PostingList({list(self.entries)!r})"


class BlockData:
    """One decoded block in columnar form, rows materialized on demand.

    ``heads`` holds the block's sorted head ids; ``counts`` the number of
    children per posting; ``children`` every posting's child ids,
    flattened in posting order.  With numpy importable these are the
    ``int64`` ndarrays :func:`repro.storage.codec.decode_packed_arrays`
    produces (plain lists otherwise).  The row view -- the
    ``(head, children-tuple)`` postings the structural algorithms consume
    -- is built lazily on first access, so the array-native intersection
    path never pays for Python tuples it does not read.
    """

    __slots__ = ("heads", "counts", "children", "_postings")

    def __init__(self, heads, counts, children,
                 postings: Sequence[Posting] | None = None) -> None:
        self.heads = heads
        self.counts = counts
        self.children = children
        self._postings = tuple(postings) if postings is not None else None

    @classmethod
    def from_postings(cls, postings: Sequence[Posting]) -> "BlockData":
        """Columnar view over already-materialized postings."""
        postings = tuple(postings)
        if _np is not None:
            heads = _np.fromiter((p for p, _ in postings), _np.int64,
                                 len(postings))
        else:
            heads = [p for p, _ in postings]
        return cls(heads, None, None, postings)

    @property
    def postings(self) -> tuple[Posting, ...]:
        """The ``(head, children)`` rows, built and memoized on demand."""
        if self._postings is None:
            heads, counts, children = self.heads, self.counts, self.children
            if _np is not None and not isinstance(heads, list):
                heads = heads.tolist()
                counts = counts.tolist()
                children = children.tolist()
            out: list[Posting] = []
            at = 0
            for head, n in zip(heads, counts):
                out.append((head, tuple(children[at:at + n])))
                at += n
            self._postings = tuple(out)
        return self._postings

    def __len__(self) -> int:
        return len(self.heads)


class LazyPostingList:
    """A block-compressed posting list that decodes blocks on demand.

    Wraps the raw bytes of a blocked atom value
    (:func:`repro.storage.codec.encode_blocked`): the skip directory is
    decoded up front, block payloads only when touched.  Length and head
    range are O(1); :meth:`seek` resolves one head by decoding at most
    one block; :attr:`entries` materializes everything (the structural
    phases of the algorithms still want full lists).

    Decoded blocks go through an optional shared
    :class:`~repro.core.cache.BlockCache` (``cache`` + ``cache_key``) so
    hot blocks survive across queries; without one, blocks decoded for
    :attr:`entries` are memoized locally.  ``stats`` accepts the owning
    index's :class:`~repro.core.invfile.QueryStats` and is bumped on
    every block decode (``blocks_read``/``bytes_decoded``) and every
    skip-directory jump (``blocks_skipped``).
    """

    __slots__ = ("raw", "header", "_cache", "_cache_key", "_stats",
                 "_local", "_entries", "_heads_arr")

    def __init__(self, raw: bytes, *, header: BlockedHeader | None = None,
                 cache=None, cache_key: object = None,
                 stats=None) -> None:
        self.raw = raw
        self.header = header if header is not None \
            else decode_blocked_header(raw)
        self._cache = cache
        self._cache_key = cache_key
        self._stats = stats
        self._local: dict[int, BlockData] | None = None
        self._entries: tuple[Posting, ...] | None = None
        self._heads_arr = None

    # -- block access ------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self.header.blocks)

    def block_data(self, index: int) -> BlockData:
        """Decode block ``index`` to columns (through the shared cache).

        Packed (``0x03``) payloads decode straight to arrays in a few
        bulk operations; varint (``0x02``) payloads decode row-wise and
        are wrapped.  Either way the :class:`BlockData` -- not a postings
        tuple -- is what the :class:`~repro.core.cache.BlockCache`
        holds, so a cached block serves both the array-native
        intersection and row consumers without re-decoding.
        """
        if self._entries is not None:
            return BlockData.from_postings(self.block(index))
        key = (self._cache_key, index)
        if self._cache is not None:
            hit = self._cache.get(key)
            if hit is not None:
                return hit if isinstance(hit, BlockData) \
                    else BlockData.from_postings(hit)
        elif self._local is not None and index in self._local:
            return self._local[index]
        info = self.header.blocks[index]
        if self.header.fmt == PACKED_FORMAT_BYTE:
            heads, counts, children = decode_packed_arrays(self.raw, info)
            data = BlockData(heads, counts, children)
        else:
            data = BlockData.from_postings(decode_block(self.raw, info))
        if self._stats is not None:
            self._stats.blocks_read += 1
            self._stats.bytes_decoded += info.length
        if self._cache is not None:
            self._cache.admit(key, data)
        else:
            if self._local is None:
                self._local = {}
            self._local[index] = data
        return data

    def block(self, index: int) -> tuple[Posting, ...]:
        """Decode block ``index`` as postings (through the shared cache)."""
        if self._entries is not None:
            info = self.header.blocks[index]
            start = sum(b.count for b in self.header.blocks[:index])
            return self._entries[start:start + info.count]
        return self.block_data(index).postings

    def heads_array(self):
        """All head ids as one sorted ``int64`` ndarray (numpy only).

        Decodes every block -- the bulk-intersection regime where probes
        outnumber blocks would decode them all anyway -- but touches
        only the head columns, never materializing children tuples.
        """
        if self._heads_arr is None:
            if self._entries is not None:
                self._heads_arr = _np.fromiter(
                    (p for p, _ in self._entries), _np.int64,
                    len(self._entries))
            elif self.n_blocks == 0:
                self._heads_arr = _np.empty(0, _np.int64)
            else:
                self._heads_arr = _np.concatenate(
                    [self.block_data(i).heads for i in range(self.n_blocks)])
        return self._heads_arr

    @property
    def entries(self) -> tuple[Posting, ...]:
        """All postings, decoded and memoized on first access."""
        if self._entries is None:
            out: list[Posting] = []
            for index in range(self.n_blocks):
                out.extend(self.block(index))
            self._entries = tuple(out)
            self._local = None
        return self._entries

    # -- point lookup ------------------------------------------------------

    def seek(self, head: int) -> Posting | None:
        """The posting with ``head``, or None -- decodes at most one block."""
        blocks = self.header.blocks
        lo, hi = 0, len(blocks)
        while lo < hi:
            mid = (lo + hi) // 2
            if blocks[mid].max_head < head:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(blocks) or blocks[lo].min_head > head:
            return None
        block = self.block(lo)
        pos = bisect_left(block, (head,))
        if pos < len(block) and block[pos][0] == head:
            return block[pos]
        return None

    # -- PostingList read surface ------------------------------------------

    def heads(self) -> set[int]:
        return {p for p, _ in self.entries}

    def encode(self) -> bytes:
        """The (already encoded) on-disk representation."""
        return self.raw

    def __len__(self) -> int:
        return self.header.total

    def __bool__(self) -> bool:
        return self.header.total > 0

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (LazyPostingList, PostingList)):
            return self.entries == other.entries
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:
        return (f"LazyPostingList(total={self.header.total}, "
                f"blocks={self.n_blocks})")


class _BlockCursor:
    """Monotone membership cursor over a :class:`LazyPostingList`.

    ``contains`` must be probed with ascending heads (the intersection
    drives it from a sorted rare list).  The cursor gallops through the
    skip directory: blocks whose ``max_head`` lies before the probe are
    jumped over without decoding (counted as ``blocks_skipped``), and a
    probe landing in the gap between two blocks is answered from the
    directory alone.
    """

    __slots__ = ("_list", "_max_heads", "_block_no", "_block",
                 "_block_heads", "_stats")

    def __init__(self, lazy: LazyPostingList) -> None:
        self._list = lazy
        self._max_heads = [info.max_head for info in lazy.header.blocks]
        self._block_no = 0
        self._block: tuple[Posting, ...] | None = None
        self._block_heads: list[int] | None = None
        self._stats = lazy._stats

    def contains(self, head: int) -> bool:
        max_heads = self._max_heads
        n = len(max_heads)
        at = self._block_no
        if at >= n:
            return False
        if max_heads[at] < head:
            target = bisect_left(max_heads, head, lo=at + 1)
            skipped = target - at - (1 if self._block is not None else 0)
            if self._stats is not None and skipped > 0:
                self._stats.blocks_skipped += skipped
            self._block_no = at = target
            self._block = self._block_heads = None
            if at >= n:
                return False
        info = self._list.header.blocks[at]
        if head < info.min_head:
            return False
        if self._block is None:
            self._block = self._list.block(at)
            self._block_heads = [p for p, _ in self._block]
        heads = self._block_heads
        pos = bisect_left(heads, head)
        return pos < len(heads) and heads[pos] == head


def _membership(plist: "PostingList | LazyPostingList",
                n_probes: int) -> Callable[[int], bool]:
    """An ascending-probe membership test for one intersection operand.

    Gallop through the skip directory only when the driving list probes
    fewer times than the operand has blocks -- otherwise every block
    gets decoded anyway, and the flat hash-set probe beats a per-probe
    bisect.
    """
    if isinstance(plist, LazyPostingList) and plist._entries is None \
            and n_probes < plist.n_blocks:
        return _BlockCursor(plist).contains
    return plist.heads().__contains__


#: Bulk-path density cutoff: hand both head arrays to ``intersect1d``
#: once probes reach this fraction of the operand (sort-merge beats
#: per-probe binary search only when the arrays are comparably sized).
_BULK_DENSITY = 4


def _gallop_mask(lazy: LazyPostingList, probes):
    """Keep-mask for sorted ``probes`` against a still-encoded operand.

    The vector analogue of :class:`_BlockCursor`: one ``searchsorted``
    of all probes into the skip directory's ``max_head`` column finds
    each probe's candidate block, then only the touched blocks are
    decoded and probed -- again with one ``searchsorted`` per block over
    its contiguous probe run (``probes`` sorted makes the candidate
    block indices nondecreasing, so runs are slices).  Probes falling in
    the gap before a block, or past the last block, are answered from
    the directory alone; jumped-over blocks count as ``blocks_skipped``
    exactly as the scalar cursor counts them.
    """
    blocks = lazy.header.blocks
    max_heads = _np.fromiter((info.max_head for info in blocks),
                             _np.int64, len(blocks))
    target = _np.searchsorted(max_heads, probes)
    keep = _np.zeros(len(probes), dtype=bool)
    in_range = target < len(blocks)
    if not in_range.any():
        return keep
    touched = _np.unique(target[in_range])
    decoded = 0
    for block_no in touched.tolist():
        lo = int(_np.searchsorted(target, block_no, side="left"))
        hi = int(_np.searchsorted(target, block_no, side="right"))
        run = probes[lo:hi]
        if int(run[-1]) < blocks[block_no].min_head:
            continue  # whole run sits in the gap before this block
        heads = lazy.block_data(block_no).heads
        pos = _np.searchsorted(heads, run)
        inside = pos < len(heads)
        hit = _np.zeros(len(run), dtype=bool)
        hit[inside] = heads[pos[inside]] == run[inside]
        keep[lo:hi] = hit
        decoded += 1
    if lazy._stats is not None and decoded:
        span = int(touched[-1]) - int(touched[0]) + 1
        lazy._stats.blocks_skipped += span - decoded
    return keep


def _array_membership(other: "PostingList | LazyPostingList", probes):
    """Keep-mask: which of the sorted ``probes`` occur in ``other``.

    The cost model mirrors :func:`_membership`.  Sparse regime (fewer
    probes than the operand has blocks): gallop through the skip
    directory, decoding only touched blocks.  Dense regime: every block
    gets decoded anyway, so materialize the full head array once and
    either ``intersect1d`` both sorted-unique arrays (probe count within
    ``1/_BULK_DENSITY`` of the operand -- skipping is pointless there,
    the regression regime of 1:10/1:100 skew) or binary-search each
    probe into it.
    """
    n_probes = len(probes)
    if isinstance(other, LazyPostingList) and other._entries is None \
            and n_probes < other.n_blocks:
        return _gallop_mask(other, probes)
    heads = other.heads_array()
    if n_probes * _BULK_DENSITY >= len(heads):
        _common, probe_idx, _other_idx = _np.intersect1d(
            probes, heads, assume_unique=True, return_indices=True)
        keep = _np.zeros(n_probes, dtype=bool)
        keep[probe_idx] = True
        return keep
    pos = _np.searchsorted(heads, probes)
    inside = pos < len(heads)
    keep = _np.zeros(n_probes, dtype=bool)
    keep[inside] = heads[pos[inside]] == probes[inside]
    return keep


def _intersect_vectorized(rare, others, stats) -> PostingList:
    """Array-native intersection: rare heads filtered operand by operand."""
    rare_heads = rare.heads_array()
    alive = _np.arange(len(rare_heads))
    for other in others:
        probes = rare_heads if len(alive) == len(rare_heads) \
            else rare_heads[alive]
        alive = alive[_array_membership(other, probes)]
        if not len(alive):
            break
    if stats is not None:
        stats.intersects_vectorized += 1
    if not len(alive):
        return PostingList()
    entries = rare.entries
    return PostingList([entries[i] for i in alive.tolist()])


def intersect(lists: "Sequence[PostingList | LazyPostingList]",
              stats=None) -> PostingList:
    """Intersect posting lists on their heads.

    This is the candidate-generation primitive: a node is a candidate match
    for query node ``n`` exactly when it appears in the list of *every*
    leaf atom of ``n``.  The rarest list drives: its heads (ascending) are
    galloped through the other lists' skip directories, so for
    block-compressed operands only blocks whose head range is actually
    probed get decoded -- the cost is governed by the rarest list, not the
    total postings length.

    With numpy importable the whole pass is array-native
    (:func:`_intersect_vectorized`): probes move through skip
    directories and head columns via ``searchsorted``/``intersect1d``
    with no per-posting Python branching.  Without numpy the original
    scalar path runs -- block cursors for sparse probes, hash sets for
    dense ones.  ``stats`` (a :class:`~repro.core.invfile.QueryStats`)
    records which path ran; when omitted, the first operand carrying an
    index's stats reference reports for the group.

    Any empty operand short-circuits to an empty result before the other
    lists are decoded or their head sets materialized.
    """
    if not lists:
        raise ValueError("intersect() needs at least one posting list")
    if len(lists) == 1:
        return lists[0]
    if any(len(plist) == 0 for plist in lists):
        return PostingList()
    if stats is None:
        for plist in lists:
            candidate = getattr(plist, "_stats", None)
            if candidate is not None:
                stats = candidate
                break
    rare = min(lists, key=len)
    others = sorted((plist for plist in lists if plist is not rare),
                    key=len)
    if _np is not None:
        return _intersect_vectorized(rare, others, stats)
    if stats is not None:
        stats.intersects_scalar += 1
    probes = [_membership(plist, len(rare)) for plist in others]
    entries = [entry for entry in rare.entries
               if all(probe(entry[0]) for probe in probes)]
    return PostingList(entries)


def multiset_union(lists: Sequence[PostingList]) -> list[tuple[int, tuple[int, ...], int]]:
    """Multiset union on heads: ``(p, C, multiplicity)`` per distinct head.

    The multiplicity counts in how many of the input lists ``p`` occurs,
    i.e. how many of the query node's leaf atoms also occur as leaves of
    ``p`` -- the quantity the superset and ε-overlap joins of Section 4.1
    filter on.
    """
    counts: dict[int, int] = {}
    children_of: dict[int, tuple[int, ...]] = {}
    for plist in lists:
        for p, children in plist.entries:
            counts[p] = counts.get(p, 0) + 1
            if p not in children_of:
                children_of[p] = children
    return [(p, children_of[p], counts[p]) for p in sorted(counts)]


class PathList:
    """Navigation paths of the top-down algorithm: ``(head, frontier)``.

    ``head`` is the candidate node for the *query root*; ``frontier`` the
    children ids reachable at the current nesting level via some chain of
    successful ``▷``-joins from ``head``.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence[tuple[int, tuple[int, ...]]] = ()) -> None:
        self.entries: tuple[tuple[int, tuple[int, ...]], ...] = tuple(entries)

    @classmethod
    def from_postings(cls, plist: PostingList) -> "PathList":
        """Initial paths: every root candidate heads its own path."""
        return cls(plist.entries)

    def heads(self) -> set[int]:
        """Set of original root candidates still alive on some path."""
        return {head for head, _ in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        return iter(self.entries)

    def __repr__(self) -> str:
        return f"PathList({list(self.entries)!r})"


def nav_join(paths: PathList, candidates: PostingList) -> PathList:
    """The inverted-list join ``L ▷ L'`` of Section 2.

    Keeps, for every path ``(head, C)`` and candidate ``(p', C')`` with
    ``p' ∈ C``, the extended path ``(head, C')``.  Several paths may share a
    head; duplicates ``(head, C')`` are collapsed.
    """
    if not paths or not candidates:
        return PathList()
    heads_by_child: dict[int, set[int]] = {}
    for head, frontier in paths.entries:
        for child in frontier:
            heads_by_child.setdefault(child, set()).add(head)
    out: list[tuple[int, tuple[int, ...]]] = []
    for p, children in candidates.entries:
        for head in heads_by_child.get(p, ()):
            out.append((head, children))
    return PathList(out)


def nav_join_descendant(paths: Sequence[tuple[int, int, int]],
                        candidates: PostingList
                        ) -> list[tuple[int, int, int]]:
    """Descendant-axis variant of ``▷`` for homeomorphic containment.

    ``paths`` entries are ``(head, node_id, max_desc)``: the query node is
    currently matched at ``node_id`` whose preorder subtree interval is
    ``(node_id, max_desc]``.  A candidate ``(p', C')`` qualifies for a path
    when ``node_id < p' <= max_desc`` (the constant-time interval test of
    Section 4.2).  Returns extended paths ``(head, p', max_desc')`` --
    ``max_desc'`` must be filled by the caller from node metadata, so here
    we return ``(head, p', -1)`` placeholders resolved upstream.
    """
    if not paths or not candidates:
        return []
    cand_ids = [p for p, _ in candidates.entries]
    out: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int]] = set()
    for head, node_id, max_desc in paths:
        lo = bisect_right(cand_ids, node_id)
        hi = bisect_right(cand_ids, max_desc, lo=lo)
        for index in range(lo, hi):
            key = (head, cand_ids[index])
            if key not in seen:
                seen.add(key)
                out.append((head, cand_ids[index], -1))
    return out


def heads_with_child_in(candidates: PostingList,
                        required: Sequence[set[int]]) -> PostingList:
    """The ``H(·)`` operator of the bottom-up algorithm (Algorithm 4 line 12).

    Keeps candidates having at least one child in *each* of the ``required``
    head sets.
    """
    if not required:
        return candidates
    entries = [(p, children) for p, children in candidates.entries
               if all(any(c in h for c in children) for h in required)]
    return PostingList(entries)


def heads_with_descendant_in(candidates: PostingList,
                             required_sorted: Sequence[Sequence[int]],
                             max_desc_of) -> PostingList:
    """Homeomorphic ``H(·)``: candidates must have a *descendant* in each
    required set.  ``required_sorted`` holds sorted id lists; ``max_desc_of``
    maps a node id to the end of its preorder interval."""
    if not required_sorted:
        return candidates
    entries = []
    for p, children in candidates.entries:
        end = max_desc_of(p)
        if all(_has_in_interval(ids, p, end) for ids in required_sorted):
            entries.append((p, children))
    return PostingList(entries)


def _has_in_interval(sorted_ids: Sequence[int], start: int, end: int) -> bool:
    """True when some id in ``sorted_ids`` lies in ``(start, end]``."""
    index = bisect_left(sorted_ids, start + 1)
    return index < len(sorted_ids) and sorted_ids[index] <= end
