"""Posting lists and the inverted-list operations of Section 2.

A posting is a pair ``(p, C)``: ``p`` is the integer id of an internal node
that owns a leaf with the list's atom, and ``C`` is the sorted tuple of
``p``'s internal-node children.  :class:`PostingList` wraps a list of
postings sorted on ``p`` and provides

* k-way **intersection** on heads (candidate generation, Algorithm 1 line 1,
  Algorithm 2 line 8, Algorithm 4 line 11),
* **multiset union** with multiplicities (superset and ε-overlap joins of
  Section 4.1),
* the **navigation join** ``L ▷ L'`` used by the top-down algorithm to step
  one nesting level down while remembering the original head of each path.

:class:`PathList` is the navigation-state companion: entries ``(head, C)``
where ``head`` is the original candidate for the query root and ``C`` the
current frontier of children ids (possibly several entries per head).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Sequence

from ..storage.codec import Posting, decode_postings, encode_postings


class PostingList:
    """An immutable posting list sorted on head ids (unique heads)."""

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence[Posting] = ()) -> None:
        self.entries: tuple[Posting, ...] = tuple(entries)

    @classmethod
    def from_unsorted(cls, entries: Iterable[Posting]) -> "PostingList":
        """Build from postings in arbitrary order (sorts on head)."""
        return cls(sorted(entries))

    @classmethod
    def decode(cls, raw: bytes) -> "PostingList":
        """Decode the on-disk representation."""
        return cls(decode_postings(raw))

    def encode(self) -> bytes:
        """Encode to the on-disk representation."""
        return encode_postings(self.entries)

    def heads(self) -> set[int]:
        """The set of head ids ``p``."""
        return {p for p, _ in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def __repr__(self) -> str:
        return f"PostingList({list(self.entries)!r})"


def intersect(lists: Sequence[PostingList]) -> PostingList:
    """Intersect posting lists on their heads.

    This is the candidate-generation primitive: a node is a candidate match
    for query node ``n`` exactly when it appears in the list of *every*
    leaf atom of ``n``.  The intersection probes the smallest list against
    hash sets of the others, keeping each surviving ``(p, C)``.
    """
    if not lists:
        raise ValueError("intersect() needs at least one posting list")
    if len(lists) == 1:
        return lists[0]
    smallest = min(lists, key=len)
    if not smallest:
        return PostingList()
    other_heads = [plist.heads() for plist in lists if plist is not smallest]
    entries = [(p, children) for p, children in smallest.entries
               if all(p in heads for heads in other_heads)]
    return PostingList(entries)


def multiset_union(lists: Sequence[PostingList]) -> list[tuple[int, tuple[int, ...], int]]:
    """Multiset union on heads: ``(p, C, multiplicity)`` per distinct head.

    The multiplicity counts in how many of the input lists ``p`` occurs,
    i.e. how many of the query node's leaf atoms also occur as leaves of
    ``p`` -- the quantity the superset and ε-overlap joins of Section 4.1
    filter on.
    """
    counts: dict[int, int] = {}
    children_of: dict[int, tuple[int, ...]] = {}
    for plist in lists:
        for p, children in plist.entries:
            counts[p] = counts.get(p, 0) + 1
            if p not in children_of:
                children_of[p] = children
    return [(p, children_of[p], counts[p]) for p in sorted(counts)]


class PathList:
    """Navigation paths of the top-down algorithm: ``(head, frontier)``.

    ``head`` is the candidate node for the *query root*; ``frontier`` the
    children ids reachable at the current nesting level via some chain of
    successful ``▷``-joins from ``head``.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence[tuple[int, tuple[int, ...]]] = ()) -> None:
        self.entries: tuple[tuple[int, tuple[int, ...]], ...] = tuple(entries)

    @classmethod
    def from_postings(cls, plist: PostingList) -> "PathList":
        """Initial paths: every root candidate heads its own path."""
        return cls(plist.entries)

    def heads(self) -> set[int]:
        """Set of original root candidates still alive on some path."""
        return {head for head, _ in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        return iter(self.entries)

    def __repr__(self) -> str:
        return f"PathList({list(self.entries)!r})"


def nav_join(paths: PathList, candidates: PostingList) -> PathList:
    """The inverted-list join ``L ▷ L'`` of Section 2.

    Keeps, for every path ``(head, C)`` and candidate ``(p', C')`` with
    ``p' ∈ C``, the extended path ``(head, C')``.  Several paths may share a
    head; duplicates ``(head, C')`` are collapsed.
    """
    if not paths or not candidates:
        return PathList()
    heads_by_child: dict[int, set[int]] = {}
    for head, frontier in paths.entries:
        for child in frontier:
            heads_by_child.setdefault(child, set()).add(head)
    out: list[tuple[int, tuple[int, ...]]] = []
    for p, children in candidates.entries:
        for head in heads_by_child.get(p, ()):
            out.append((head, children))
    return PathList(out)


def nav_join_descendant(paths: Sequence[tuple[int, int, int]],
                        candidates: PostingList
                        ) -> list[tuple[int, int, int]]:
    """Descendant-axis variant of ``▷`` for homeomorphic containment.

    ``paths`` entries are ``(head, node_id, max_desc)``: the query node is
    currently matched at ``node_id`` whose preorder subtree interval is
    ``(node_id, max_desc]``.  A candidate ``(p', C')`` qualifies for a path
    when ``node_id < p' <= max_desc`` (the constant-time interval test of
    Section 4.2).  Returns extended paths ``(head, p', max_desc')`` --
    ``max_desc'`` must be filled by the caller from node metadata, so here
    we return ``(head, p', -1)`` placeholders resolved upstream.
    """
    if not paths or not candidates:
        return []
    cand_ids = [p for p, _ in candidates.entries]
    out: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int]] = set()
    for head, node_id, max_desc in paths:
        lo = bisect_right(cand_ids, node_id)
        hi = bisect_right(cand_ids, max_desc, lo=lo)
        for index in range(lo, hi):
            key = (head, cand_ids[index])
            if key not in seen:
                seen.add(key)
                out.append((head, cand_ids[index], -1))
    return out


def heads_with_child_in(candidates: PostingList,
                        required: Sequence[set[int]]) -> PostingList:
    """The ``H(·)`` operator of the bottom-up algorithm (Algorithm 4 line 12).

    Keeps candidates having at least one child in *each* of the ``required``
    head sets.
    """
    if not required:
        return candidates
    entries = [(p, children) for p, children in candidates.entries
               if all(any(c in h for c in children) for h in required)]
    return PostingList(entries)


def heads_with_descendant_in(candidates: PostingList,
                             required_sorted: Sequence[Sequence[int]],
                             max_desc_of) -> PostingList:
    """Homeomorphic ``H(·)``: candidates must have a *descendant* in each
    required set.  ``required_sorted`` holds sorted id lists; ``max_desc_of``
    maps a node id to the end of its preorder interval."""
    if not required_sorted:
        return candidates
    entries = []
    for p, children in candidates.entries:
        end = max_desc_of(p)
        if all(_has_in_interval(ids, p, end) for ids in required_sorted):
            entries.append((p, children))
    return PostingList(entries)


def _has_in_interval(sorted_ids: Sequence[int], start: int, end: int) -> bool:
    """True when some id in ``sorted_ids`` lies in ``(start, end]``."""
    index = bisect_left(sorted_ids, start + 1)
    return index < len(sorted_ids) and sorted_ids[index] <= end
