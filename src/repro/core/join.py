"""The full containment join ``Q ⋈ S`` of Equation 1, as an executor.

The paper frames the headline operation as a join between two large
collections and then "treats Q as a set of queries over which we
iterate" (Section 2).  This module packages that iteration with the
execution strategies the library provides, so a whole join runs through
one call with one strategy knob:

* ``per-query`` -- the paper's loop: each query evaluated independently
  by the chosen algorithm;
* ``batched``   -- bottom-up with cross-query subquery memoization
  (pays off when Q's members share structure, e.g. Q sampled from S);
* ``naive``     -- the nested-loop baseline, optionally Bloom-prefiltered;
* ``prefix``    -- the PRETTI-style join operator
  (:mod:`repro.core.prefixjoin`): one prefix tree over Q's atom sets,
  each distinct trie node's posting-list intersection evaluated once
  and shared by every query containing that prefix;
* ``adaptive``  -- dispatch between ``per-query`` and ``prefix`` from
  live collection statistics (workload size and df-weighted sharing
  ratio); the decision and its evidence land in ``extra["dispatch"]``.

The compiled strategies run their plans on one shared execution
context; the prefix strategy runs the workload through one shared
candidate provider.  Either way the join observes a single pinned
snapshot (one per shard under a sharded fan-out, all pinned at the
same committed base version), and the context counters feed the
:class:`JoinResult` statistics.  Results are ``(q_key, s_key)`` pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from .engine import NestedSetIndex
from .exec.compiler import compile_query
from .matchspec import QuerySpec
from .model import NestedSet, as_nested_set
from .prefixjoin import choose_strategy, prefix_join_lists

STRATEGIES = ("per-query", "batched", "naive", "prefix", "adaptive")


@dataclass
class JoinResult:
    """Pairs plus execution statistics."""

    pairs: list[tuple[str, str]]
    strategy: str
    n_queries: int
    elapsed_seconds: float
    extra: dict[str, object] = field(default_factory=dict)
    #: Every query key of the join, in query order (so :meth:`grouped`
    #: can report queries with zero matches).
    query_keys: list[str] = field(default_factory=list)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def grouped(self) -> dict[str, list[str]]:
        """Pairs regrouped as query key -> matching record keys.

        Every key of the join appears, including queries with zero
        matches (empty list); results built by hand without
        ``query_keys`` degrade to grouping the pairs alone.
        """
        out: dict[str, list[str]] = {qkey: [] for qkey in self.query_keys}
        for qkey, skey in self.pairs:
            out.setdefault(qkey, []).append(skey)
        return out

    def describe(self) -> str:
        """One line per statistic: the join-level EXPLAIN summary."""
        lines = [f"strategy: {self.strategy}",
                 f"queries:  {self.n_queries}",
                 f"pairs:    {self.n_pairs}",
                 f"elapsed:  {self.elapsed_seconds * 1000:.1f} ms"]
        for key, value in self.extra.items():
            if isinstance(value, dict):
                detail = ", ".join(f"{k}={v}" for k, v in value.items())
                lines.append(f"{key}: {detail}")
            else:
                lines.append(f"{key}: {value}")
        return "\n".join(lines)


def containment_join(index: NestedSetIndex,
                     queries: Iterable[tuple[str, object]], *,
                     strategy: str = "per-query",
                     algorithm: str = "bottomup",
                     spec: QuerySpec = QuerySpec(),
                     use_bloom: bool = False,
                     workers: int | None = None) -> JoinResult:
    """Evaluate ``Q ⋈ S`` over an indexed collection ``S``.

    ``queries`` supplies Q as ``(key, nested set)`` pairs; pairs are
    returned in query order, record keys sorted within each query.
    ``use_bloom`` applies to the naive algorithm only (as everywhere
    else in the library); requesting it for a strategy that cannot
    honor it raises :class:`ValueError` rather than silently running
    without the prefilter.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    materialized = [(qkey, as_nested_set(value))
                    for qkey, value in queries]
    query_keys = [qkey for qkey, _query in materialized]
    dispatch: dict[str, object] | None = None
    effective = strategy
    if strategy == "adaptive":
        effective, dispatch = choose_strategy(
            [query for _qkey, query in materialized],
            index.collection_stats())
    if effective == "prefix":
        if use_bloom:
            raise ValueError(
                "Bloom prefiltering applies to the naive algorithm only; "
                "the prefix strategy cannot honor use_bloom=True")
        pairs, counters, elapsed = _run_prefix(index, materialized, spec,
                                               workers)
        extra: dict[str, object] = {
            "prefix_nodes": counters.prefix_nodes,
            "prefix_streams": counters.prefix_streams,
            "prefix_reused": counters.prefix_reused,
            "subqueries_evaluated": counters.subqueries_evaluated,
            "subqueries_reused": counters.subqueries_reused,
        }
        if dispatch is not None:
            extra["dispatch"] = dispatch
        return JoinResult(pairs=pairs, strategy=strategy,
                          n_queries=len(materialized),
                          elapsed_seconds=elapsed, extra=extra,
                          query_keys=query_keys)
    if effective == "batched":
        plan_algorithm, memo = "bottomup", {}
    elif effective == "naive":
        plan_algorithm, memo = "naive", None
    else:
        plan_algorithm, memo = algorithm, None
    # compile_query itself rejects use_bloom for non-naive algorithms
    # (PlanError is a ValueError), so the caller's option is never
    # silently dropped.
    plans = [compile_query(query, spec, algorithm=plan_algorithm,
                           use_bloom=use_bloom)
             for _qkey, query in materialized]
    from .shard import ShardedIndex
    start = time.perf_counter()
    pairs = []
    if isinstance(index, ShardedIndex):
        # Sharded collection: one context (and memo) per shard, counters
        # merged across the fan-out.
        results, counters = index.run_plans(plans,
                                            memoize=memo is not None,
                                            workers=workers)
        for (qkey, _query), result in zip(materialized, results):
            for skey in result:
                pairs.append((qkey, skey))
    else:
        # One snapshot for the whole join: every pair reflects the same
        # committed version even while writers land concurrently.
        with index._pinned() as snap:
            ctx = snap.execution_context(memo=memo)
            for (qkey, _query), plan in zip(materialized, plans):
                for skey in plan.run(ctx):
                    pairs.append((qkey, skey))
            counters = ctx.counters
    elapsed = time.perf_counter() - start
    extra = {}
    if effective == "batched":
        extra["subqueries_evaluated"] = counters.subqueries_evaluated
        extra["subqueries_reused"] = counters.subqueries_reused
    elif effective == "naive":
        extra["records_tested"] = counters.records_tested
        extra["records_skipped"] = counters.records_skipped
    if dispatch is not None:
        extra["dispatch"] = dispatch
    return JoinResult(pairs=pairs, strategy=strategy,
                      n_queries=len(materialized),
                      elapsed_seconds=elapsed, extra=extra,
                      query_keys=query_keys)


def _run_prefix(index: NestedSetIndex,
                materialized: list[tuple[str, NestedSet]],
                spec: QuerySpec, workers: int | None):
    """The prefix-tree execution path, monolithic or sharded."""
    from .shard import ShardedIndex
    queries = [query for _qkey, query in materialized]
    start = time.perf_counter()
    if isinstance(index, ShardedIndex):
        # One trie and one memo per shard (node ids and frequencies are
        # shard-local) over one pinned snapshot group.
        results, counters = index.run_prefix_join(queries, spec,
                                                  workers=workers)
    else:
        with index._pinned() as snap:
            ctx = snap.execution_context(memo={})
            results = prefix_join_lists(queries, ctx, spec)
            counters = ctx.counters
    pairs = [(qkey, skey)
             for (qkey, _query), result in zip(materialized, results)
             for skey in result]
    return pairs, counters, time.perf_counter() - start


def self_join(index: NestedSetIndex, *,
              strategy: str = "batched",
              algorithm: str = "bottomup",
              spec: QuerySpec = QuerySpec(),
              use_bloom: bool = False) -> JoinResult:
    """``S ⋈ S``: every record queried against the collection.

    Under subset semantics every record matches at least itself, so the
    result size is at least |S|; the batched and prefix strategies shine
    here because Q literally *is* S (total structural sharing).  All of
    :func:`containment_join`'s knobs thread through.
    """
    queries = [(key, tree) for key, tree in _iter_records(index)]
    return containment_join(index, queries, strategy=strategy,
                            algorithm=algorithm, spec=spec,
                            use_bloom=use_bloom)


def _iter_records(index: NestedSetIndex
                  ) -> Iterable[tuple[str, NestedSet]]:
    yield from index.records()
