"""The full containment join ``Q ⋈ S`` of Equation 1, as an executor.

The paper frames the headline operation as a join between two large
collections and then "treats Q as a set of queries over which we
iterate" (Section 2).  This module packages that iteration with the
execution strategies the library provides, so a whole join runs through
one call with one strategy knob:

* ``per-query`` -- the paper's loop: each query evaluated independently
  by the chosen algorithm;
* ``batched``   -- bottom-up with cross-query subquery memoization
  (pays off when Q's members share structure, e.g. Q sampled from S);
* ``naive``     -- the nested-loop baseline, optionally Bloom-prefiltered.

Results are ``(q_key, s_key)`` pairs; :class:`JoinResult` carries the
pairs plus execution counters for experiment write-ups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .batch import BatchEvaluator
from .engine import NestedSetIndex, as_nested_set
from .matchspec import QuerySpec
from .model import NestedSet
from .naive import NaiveScanner

STRATEGIES = ("per-query", "batched", "naive")


@dataclass
class JoinResult:
    """Pairs plus execution statistics."""

    pairs: list[tuple[str, str]]
    strategy: str
    n_queries: int
    elapsed_seconds: float
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def grouped(self) -> dict[str, list[str]]:
        """Pairs regrouped as query key -> matching record keys."""
        out: dict[str, list[str]] = {}
        for qkey, skey in self.pairs:
            out.setdefault(qkey, []).append(skey)
        return out


def containment_join(index: NestedSetIndex,
                     queries: Iterable[tuple[str, object]], *,
                     strategy: str = "per-query",
                     algorithm: str = "bottomup",
                     spec: QuerySpec = QuerySpec(),
                     use_bloom: bool = False) -> JoinResult:
    """Evaluate ``Q ⋈ S`` over an indexed collection ``S``.

    ``queries`` supplies Q as ``(key, nested set)`` pairs; pairs are
    returned in query order, record keys sorted within each query.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    materialized = [(qkey, as_nested_set(value))
                    for qkey, value in queries]
    start = time.perf_counter()
    pairs: list[tuple[str, str]] = []
    extra: dict[str, object] = {}
    if strategy == "batched":
        evaluator = BatchEvaluator(index.inverted_file, spec)
        for qkey, query in materialized:
            for skey in evaluator.query(query):
                pairs.append((qkey, skey))
        extra["subqueries_evaluated"] = evaluator.subqueries_evaluated
        extra["subqueries_reused"] = evaluator.subqueries_reused
    elif strategy == "naive":
        bloom = index.bloom_index if use_bloom else None
        scanner = NaiveScanner(index.inverted_file, bloom_index=bloom)
        for qkey, query in materialized:
            for skey in scanner.query(query, spec):
                pairs.append((qkey, skey))
        extra["records_tested"] = scanner.records_tested
        extra["records_skipped"] = scanner.records_skipped
    else:
        for qkey, query in materialized:
            for skey in index.query(
                    query, algorithm=algorithm, semantics=spec.semantics,
                    join=spec.join, epsilon=spec.epsilon, mode=spec.mode):
                pairs.append((qkey, skey))
    elapsed = time.perf_counter() - start
    return JoinResult(pairs=pairs, strategy=strategy,
                      n_queries=len(materialized),
                      elapsed_seconds=elapsed, extra=extra)


def self_join(index: NestedSetIndex, *,
              strategy: str = "batched",
              spec: QuerySpec = QuerySpec()) -> JoinResult:
    """``S ⋈ S``: every record queried against the collection.

    Under subset semantics every record matches at least itself, so the
    result size is at least |S|; the batched strategy shines here because
    Q literally *is* S (total structural sharing).
    """
    queries = [(key, tree) for key, tree in _iter_records(index)]
    return containment_join(index, queries, strategy=strategy, spec=spec)


def _iter_records(index: NestedSetIndex
                  ) -> Iterable[tuple[str, NestedSet]]:
    yield from index.records()
