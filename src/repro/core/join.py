"""The full containment join ``Q ⋈ S`` of Equation 1, as an executor.

The paper frames the headline operation as a join between two large
collections and then "treats Q as a set of queries over which we
iterate" (Section 2).  This module packages that iteration with the
execution strategies the library provides, so a whole join runs through
one call with one strategy knob:

* ``per-query`` -- the paper's loop: each query evaluated independently
  by the chosen algorithm;
* ``batched``   -- bottom-up with cross-query subquery memoization
  (pays off when Q's members share structure, e.g. Q sampled from S);
* ``naive``     -- the nested-loop baseline, optionally Bloom-prefiltered.

Every strategy compiles its queries through
:func:`repro.core.exec.compiler.compile_query` and runs the plans on one
shared execution context, whose counters feed the :class:`JoinResult`
statistics.  Results are ``(q_key, s_key)`` pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from .engine import NestedSetIndex
from .exec.compiler import compile_query
from .matchspec import QuerySpec
from .model import NestedSet, as_nested_set

STRATEGIES = ("per-query", "batched", "naive")


@dataclass
class JoinResult:
    """Pairs plus execution statistics."""

    pairs: list[tuple[str, str]]
    strategy: str
    n_queries: int
    elapsed_seconds: float
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def grouped(self) -> dict[str, list[str]]:
        """Pairs regrouped as query key -> matching record keys."""
        out: dict[str, list[str]] = {}
        for qkey, skey in self.pairs:
            out.setdefault(qkey, []).append(skey)
        return out


def containment_join(index: NestedSetIndex,
                     queries: Iterable[tuple[str, object]], *,
                     strategy: str = "per-query",
                     algorithm: str = "bottomup",
                     spec: QuerySpec = QuerySpec(),
                     use_bloom: bool = False) -> JoinResult:
    """Evaluate ``Q ⋈ S`` over an indexed collection ``S``.

    ``queries`` supplies Q as ``(key, nested set)`` pairs; pairs are
    returned in query order, record keys sorted within each query.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    materialized = [(qkey, as_nested_set(value))
                    for qkey, value in queries]
    if strategy == "batched":
        plan_algorithm, memo = "bottomup", {}
    elif strategy == "naive":
        plan_algorithm, memo = "naive", None
    else:
        plan_algorithm, memo = algorithm, None
    plans = [compile_query(query, spec, algorithm=plan_algorithm,
                           use_bloom=use_bloom if plan_algorithm == "naive"
                           else False)
             for _qkey, query in materialized]
    from .shard import ShardedIndex
    start = time.perf_counter()
    pairs: list[tuple[str, str]] = []
    if isinstance(index, ShardedIndex):
        # Sharded collection: one context (and memo) per shard, counters
        # merged across the fan-out.
        results, counters = index.run_plans(plans,
                                            memoize=memo is not None)
        for (qkey, _query), result in zip(materialized, results):
            for skey in result:
                pairs.append((qkey, skey))
    else:
        # One snapshot for the whole join: every pair reflects the same
        # committed version even while writers land concurrently.
        with index._pinned() as snap:
            ctx = snap.execution_context(memo=memo)
            for (qkey, _query), plan in zip(materialized, plans):
                for skey in plan.run(ctx):
                    pairs.append((qkey, skey))
            counters = ctx.counters
    elapsed = time.perf_counter() - start
    extra: dict[str, object] = {}
    if strategy == "batched":
        extra["subqueries_evaluated"] = counters.subqueries_evaluated
        extra["subqueries_reused"] = counters.subqueries_reused
    elif strategy == "naive":
        extra["records_tested"] = counters.records_tested
        extra["records_skipped"] = counters.records_skipped
    return JoinResult(pairs=pairs, strategy=strategy,
                      n_queries=len(materialized),
                      elapsed_seconds=elapsed, extra=extra)


def self_join(index: NestedSetIndex, *,
              strategy: str = "batched",
              spec: QuerySpec = QuerySpec()) -> JoinResult:
    """``S ⋈ S``: every record queried against the collection.

    Under subset semantics every record matches at least itself, so the
    result size is at least |S|; the batched strategy shines here because
    Q literally *is* S (total structural sharing).
    """
    queries = [(key, tree) for key, tree in _iter_records(index)]
    return containment_join(index, queries, strategy=strategy, spec=spec)


def _iter_records(index: NestedSetIndex
                  ) -> Iterable[tuple[str, NestedSet]]:
    yield from index.records()
