"""Public facade: build, open, and query a nested-set containment index.

:class:`NestedSetIndex` wires together the inverted file, the list cache
(Section 3.3), the Bloom prefilters (Section 3.3), the two containment
algorithms (Section 3) and their extensions (Section 4) behind a small
surface::

    from repro import NestedSetIndex

    index = NestedSetIndex.build(records)           # in-memory
    index.query("{USA, {UK, {A, motorbike}}}")      # -> ['tim']
    index.query(q, algorithm="topdown", semantics="homeo")
    index.query(q, join="overlap", epsilon=2)

Disk-resident indexes (``storage="diskhash"`` or ``"btree"``) persist and
reopen via :meth:`NestedSetIndex.open`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Sequence

from ..storage import KVStore
from .bloom import BloomIndex
from .cache import PAPER_BUDGET, make_cache
from .exec.compiler import ALGORITHMS, compile_query
from .exec.context import ExecutionContext
from .exec.observer import ExplainResult, run_explained
from .exec.plan import ExecutionPlan
from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet, as_nested_set
from .parallel import RWLock
from .resultcache import ResultCache
from .stats import CollectionStats
from .updates import IndexWriter

if TYPE_CHECKING:
    from .shard import ShardedIndex

__all__ = ["ALGORITHMS", "NestedSetIndex", "as_nested_set"]


class NestedSetIndex:
    """A queryable containment index over a collection of nested sets.

    Thread-safety: public query entry points (``query``, ``query_batch``,
    ``explain``, ``match_nodes``) take the read side of a
    :class:`~repro.core.parallel.RWLock` and may run concurrently;
    mutations (``insert``, ``delete``, ``compact``, ``set_cache``) take
    the write side, so readers never observe a half-applied update and
    every cache-invalidation hook fires inside the exclusive section.
    Internal helpers are lock-free and must only be reached from a
    locked entry point or a single-threaded context.
    """

    def __init__(self, ifile: InvertedFile,
                 bloom_index: BloomIndex | None = None) -> None:
        self._ifile = ifile
        self._bloom = bloom_index
        self._stats: CollectionStats | None = None
        self._writer: IndexWriter | None = None
        self._result_cache: ResultCache | None = None
        self._rwlock = RWLock()
        #: Serializes deferred-statistics flushes triggered from read
        #: paths (two concurrent readers may both observe a dirty writer).
        self._writer_mutex = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[tuple[str, object]], *,
              storage: str = "memory", path: str | None = None,
              cache: str | None = None, cache_budget: int = PAPER_BUDGET,
              bloom: str | None = None, bloom_bits: int = 512,
              segment_size: int = 0, block_size: int | None = None,
              shards: int = 1, workers: int = 1,
              shard_policy: object = "hash",
              **store_options: object) -> "NestedSetIndex | ShardedIndex":
        """Index ``(key, nested-set)`` records.

        ``cache``: None/"none", "frequency" (the paper's policy) or "lru".
        ``bloom``: None, "flat", "breadth" or "depth" -- builds per-record
        prefilters consumed by the naive algorithm.
        ``segment_size``: > 0 stores long posting lists as range-tagged
        segments and enables segment-skipping intersections.
        ``block_size``: postings per block of the block-compressed list
        format (default when segmentation is off); ``0`` writes the
        legacy plain format.
        ``shards``: > 1 partitions the records across that many
        independent inverted files inside one store and returns a
        :class:`~repro.core.shard.ShardedIndex` (same query surface;
        ``workers`` threads fan queries out, ``shard_policy`` picks the
        partitioner).
        """
        if shards > 1:
            from .shard import ShardedIndex
            return ShardedIndex.build(
                records, shards=shards, workers=workers,
                policy=shard_policy, storage=storage, path=path,
                cache=cache, cache_budget=cache_budget, bloom=bloom,
                bloom_bits=bloom_bits, segment_size=segment_size,
                block_size=block_size, **store_options)
        prepared = ((key, as_nested_set(value)) for key, value in records)
        ifile = InvertedFile.build(prepared, storage=storage, path=path,
                                   segment_size=segment_size,
                                   block_size=block_size,
                                   **store_options)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        bloom_index = None
        if bloom is not None:
            bloom_index = BloomIndex(bloom, n_bits=bloom_bits)
            for _ordinal, _key, _root, tree in ifile.iter_records():
                bloom_index.add_record(tree)
            bloom_index.save(ifile.store)
        return cls(ifile, bloom_index)

    @classmethod
    def build_external(cls, records, *,
                       storage: str = "memory", path: str | None = None,
                       memory_budget: int | None = None,
                       cache: str | None = None,
                       cache_budget: int = PAPER_BUDGET,
                       segment_size: int = 0,
                       block_size: int | None = None,
                       shards: int = 1, workers: int = 1,
                       shard_policy: object = "hash",
                       **store_options: object
                       ) -> "NestedSetIndex | ShardedIndex":
        """Bulk-load with a bounded posting buffer (run-merge build).

        Use for collections whose posting lists don't fit in memory; see
        :mod:`repro.core.bulkload`.  ``memory_budget`` counts buffered
        postings (default 500k entries).  ``shards > 1`` splits both the
        records and the budget across that many shard builds and returns
        a :class:`~repro.core.shard.ShardedIndex`.
        """
        if shards > 1:
            from .shard import ShardedIndex
            return ShardedIndex.build_external(
                records, shards=shards, workers=workers,
                policy=shard_policy, storage=storage, path=path,
                memory_budget=memory_budget, cache=cache,
                cache_budget=cache_budget, segment_size=segment_size,
                block_size=block_size, **store_options)
        from .bulkload import DEFAULT_MEMORY_BUDGET, build_external
        prepared = ((key, as_nested_set(value)) for key, value in records)
        ifile = build_external(
            prepared, storage=storage, path=path,
            memory_budget=(memory_budget if memory_budget is not None
                           else DEFAULT_MEMORY_BUDGET),
            segment_size=segment_size, block_size=block_size,
            **store_options)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        return cls(ifile)

    @classmethod
    def open(cls, storage: str, path: str, *,
             cache: str | None = None, cache_budget: int = PAPER_BUDGET,
             bloom: str | None = None, bloom_bits: int = 512,
             workers: int = 1,
             **store_options: object) -> "NestedSetIndex | ShardedIndex":
        """Reopen a disk-resident index built earlier.

        A store carrying a shard manifest reopens as a
        :class:`~repro.core.shard.ShardedIndex` automatically (``workers``
        sizes its fan-out pool; it is ignored for monolithic indexes).
        Bloom filters persisted at build time reload directly when their
        kind matches; otherwise they are rebuilt from the record table
        (one sequential scan).
        """
        from ..storage import open_store
        from .shard import ShardedIndex, read_manifest
        store = open_store(storage, path, create=False, **store_options)
        if read_manifest(store) is not None:
            return ShardedIndex.from_base_store(
                store, workers=workers, cache=cache,
                cache_budget=cache_budget, bloom=bloom,
                bloom_bits=bloom_bits)
        return cls.from_store(store, cache=cache, cache_budget=cache_budget,
                              bloom=bloom, bloom_bits=bloom_bits)

    @classmethod
    def from_store(cls, store: KVStore, *,
                   cache: str | None = None,
                   cache_budget: int = PAPER_BUDGET,
                   bloom: str | None = None,
                   bloom_bits: int = 512) -> "NestedSetIndex":
        """Wrap an already-open store holding one inverted file.

        The sharded index uses this to bring up each shard over its
        namespaced view of the shared store.
        """
        ifile = InvertedFile(store)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        bloom_index = None
        if bloom is not None:
            stored = BloomIndex.load(ifile.store)
            if stored is not None and stored.kind == bloom and \
                    stored.n_bits == bloom_bits:
                bloom_index = stored
            else:
                bloom_index = BloomIndex(bloom, n_bits=bloom_bits)
                for _ordinal, _key, _root, tree in ifile.iter_records():
                    bloom_index.add_record(tree)
                bloom_index.save(ifile.store)
        return cls(ifile, bloom_index)

    # -- querying -----------------------------------------------------------

    def query(self, query: object, *, algorithm: str = "bottomup",
              semantics: str = "hom", join: str = "subset",
              epsilon: int = 1, mode: str = "root",
              use_bloom: bool = False,
              planner: str | None = None) -> list[str]:
        """Evaluate ``query ⋉ S``; returns sorted matching record keys.

        ``planner`` ("selective-first" / "bulky-first" / "text") installs
        a sibling-ordering strategy for the top-down algorithm; see
        :mod:`repro.core.planner`.  The query is compiled into an
        :class:`~repro.core.exec.plan.ExecutionPlan` and run against
        this index's execution context; use :meth:`compile` to inspect
        the plan and :meth:`explain` for a full evaluation trace.
        """
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom)
        with self._rwlock.read_locked():
            return plan.run(self.execution_context())

    def compile(self, query: object, *, algorithm: str = "bottomup",
                semantics: str = "hom", join: str = "subset",
                epsilon: int = 1, mode: str = "root",
                use_bloom: bool = False, planner: str | None = None,
                cacheable: bool = True) -> ExecutionPlan:
        """Compile a query without running it (validation + plan)."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        return compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom,
                             cacheable=cacheable)

    def execution_context(self, *, observer=None,
                          memo: dict | None = None) -> ExecutionContext:
        """A fresh execution context bound to this index's state.

        Single queries use a throwaway context; batches and joins share
        one so the subquery memo and counters span the workload.
        """
        return ExecutionContext(
            ifile=self._ifile, bloom_index=self._bloom,
            result_cache=self._result_cache,
            stats_provider=self.collection_stats,
            observer=observer, memo=memo)

    def explain(self, query: object, *, algorithm: str = "bottomup",
                semantics: str = "hom", join: str = "subset",
                epsilon: int = 1, mode: str = "root",
                use_bloom: bool = False,
                planner: str | None = None) -> ExplainResult:
        """Trace one query's evaluation (works for every algorithm).

        The trace observes the real execution through the context, so
        ``explain(...).matches`` always equals ``query(...)`` with the
        same options; the result cache is bypassed so the trace reflects
        a full evaluation.
        """
        plan = self.compile(query, algorithm=algorithm,
                            semantics=semantics, join=join,
                            epsilon=epsilon, mode=mode,
                            use_bloom=use_bloom, planner=planner,
                            cacheable=False)
        with self._rwlock.read_locked():
            return run_explained(plan, self.execution_context())

    def enable_result_cache(self, capacity: int = 1024) -> ResultCache:
        """Cache whole query results (invalidated on any index mutation).

        Returns the cache so callers can read its hit statistics; call
        :meth:`disable_result_cache` to turn it off.
        """
        self._result_cache = ResultCache(capacity)
        return self._result_cache

    def disable_result_cache(self) -> None:
        self._result_cache = None

    @property
    def result_cache(self) -> ResultCache | None:
        """The active result cache, if enabled (for stats inspection)."""
        return self._result_cache

    def match_nodes(self, query: object, *, algorithm: str = "bottomup",
                    spec: QuerySpec = QuerySpec(),
                    planner: str | None = None) -> set[int]:
        """Raw node-level result: ids at which the query embeds."""
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, cacheable=False)
        with self._rwlock.read_locked():
            return plan.match_nodes(self.execution_context())

    def collection_stats(self) -> CollectionStats:
        """Frequency statistics over the indexed collection (memoized)."""
        if self._stats is None:
            self._flush_writer()
            self._stats = CollectionStats.from_inverted_file(self._ifile)
        return self._stats

    # -- updates ----------------------------------------------------------------

    def _index_writer(self) -> IndexWriter:
        if self._writer is None:
            self._writer = IndexWriter(self._ifile)
        return self._writer

    def _flush_writer(self) -> None:
        """Persist deferred statistics before anything reads them."""
        with self._writer_mutex:
            if self._writer is not None:
                self._writer.flush()

    def insert(self, key: str, value: object) -> int:
        """Add one record to the live index; returns its ordinal.

        On journaled stores the whole insert -- postings, metadata,
        record table, frequency table, and the Bloom filter append --
        commits as one write-ahead-log group, so a crash at any point
        leaves the index wholly pre- or post-insert.  The write lock
        excludes every concurrent reader for the duration, including
        the cache invalidations below.
        """
        with self._rwlock.write_locked():
            with self._ifile.store.transaction(b"insert"):
                ordinal = self._index_writer().insert(key, value)
                if self._bloom is not None:
                    self._bloom.append_persisted(self._ifile.store,
                                                 as_nested_set(value))
            self._stats = None
            if self._result_cache is not None:
                self._result_cache.invalidate_all()
            return ordinal

    def delete(self, key: str) -> bool:
        """Tombstone the record with ``key``; see repro.core.updates."""
        with self._rwlock.write_locked():
            deleted = self._index_writer().delete(key)
            if deleted:
                # Dead counts change live frequencies: the memoized
                # collection statistics (planner input) must be recomputed.
                self._stats = None
                if self._result_cache is not None:
                    self._result_cache.invalidate_all()
            return deleted

    def compact(self, *, storage: str = "memory",
                path: str | None = None,
                store: KVStore | None = None) -> None:
        """Rebuild the index from live records, dropping tombstones.

        The engine swaps to the fresh index in place; disk targets need a
        new ``path`` (a store cannot be rebuilt into its own open file).
        ``store`` accepts a pre-opened destination (used by the sharded
        index to compact each shard into one fresh shared store).
        """
        with self._rwlock.write_locked():
            fresh = self._index_writer().compact(storage=storage, path=path,
                                                 store=store)
            self._writer = None
            if self._result_cache is not None:
                self._result_cache.invalidate_all()
            old_bloom_kind = self._bloom.kind if self._bloom else None
            self._ifile.close()
            self._ifile = fresh
            self._stats = None
            if old_bloom_kind is not None:
                self._bloom = BloomIndex(old_bloom_kind)
                for _ordinal, _key, _root, tree in fresh.iter_records():
                    self._bloom.add_record(tree)
                self._bloom.save(fresh.store)

    def query_batch(self, queries: Sequence[object], *,
                    share_subqueries: bool = True,
                    algorithm: str = "bottomup", semantics: str = "hom",
                    join: str = "subset", epsilon: int = 1,
                    mode: str = "root", use_bloom: bool = False,
                    planner: str | None = None,
                    workers: int | None = None) -> list[list[str]]:
        """Evaluate a workload of queries (the paper times 100 at a time).

        All plans share one execution context.  When every plan supports
        it (the memoized evaluation is bottom-up, so ``bottomup`` only),
        a cross-query subquery memo is attached so structurally shared
        subtrees are evaluated once per batch; pass
        ``share_subqueries=False`` to opt out and run a plain per-query
        loop.  Results are identical either way (tested property).
        ``workers`` exists for facade symmetry with
        :class:`~repro.core.shard.ShardedIndex`; a monolithic index has
        a single execution context and always evaluates sequentially.
        """
        del workers  # single index: nothing to fan out over
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plans = [compile_query(query, spec, algorithm=algorithm,
                               planner=planner, use_bloom=use_bloom)
                 for query in queries]
        memo: dict | None = None
        if share_subqueries and plans and \
                all(plan.match.memoizable for plan in plans):
            memo = {}
        with self._rwlock.read_locked():
            ctx = self.execution_context(memo=memo)
            return [plan.run(ctx) for plan in plans]

    def containment_join(self, queries: Iterable[tuple[str, object]],
                         **options: object) -> list[tuple[str, str]]:
        """Equation 1: all pairs ``(q.key, s.key)`` with ``q ⊆ s``.

        Accepts the same options as :meth:`query_batch` (including
        ``share_subqueries``); the whole join runs through one compiled
        batch.  See :func:`repro.core.join.containment_join` for the
        strategy-level executor with counters.
        """
        materialized = [(qkey, query) for qkey, query in queries]
        results = self.query_batch([query for _qkey, query in materialized],
                                   **options)
        return [(qkey, skey)
                for (qkey, _query), result in zip(materialized, results)
                for skey in result]

    def self_check(self, query: object, *, semantics: str = "hom",
                   join: str = "subset", epsilon: int = 1,
                   mode: str = "root") -> dict[str, list[str]]:
        """Run every applicable algorithm on one query (diagnostics)."""
        out: dict[str, list[str]] = {}
        for algorithm in ALGORITHMS:
            if algorithm == "topdown-paper" and (
                    semantics == "iso" or join == "superset"):
                continue
            out[algorithm] = self.query(
                query, algorithm=algorithm, semantics=semantics,
                join=join, epsilon=epsilon, mode=mode)
        return out

    def set_cache(self, policy: str | None,
                  budget: int = PAPER_BUDGET) -> None:
        """Swap the inverted-list cache policy in place.

        The experiment harness runs each configuration with and without
        caching on the *same* built index; swapping the cache (rather than
        rebuilding) is what makes that cheap.
        """
        with self._rwlock.write_locked():
            self._flush_writer()
            self._ifile.cache = make_cache(
                policy, frequencies=self._ifile.frequencies(),
                budget=budget)

    # -- introspection ----------------------------------------------------------

    @property
    def rwlock(self) -> RWLock:
        """The reader/writer lock coordinating queries with mutations."""
        return self._rwlock

    @property
    def n_records(self) -> int:
        return self._ifile.n_records

    @property
    def n_nodes(self) -> int:
        return self._ifile.n_nodes

    @property
    def inverted_file(self) -> InvertedFile:
        return self._ifile

    @property
    def bloom_index(self) -> BloomIndex | None:
        return self._bloom

    def records(self) -> Iterable[tuple[str, NestedSet]]:
        """Iterate ``(key, tree)`` over the indexed collection."""
        for _ordinal, key, _root, tree in self._ifile.iter_records():
            yield key, tree

    def stats(self) -> dict[str, dict[str, object]]:
        """Index / cache / store counters, for reports and experiments."""
        out: dict[str, dict[str, object]] = {
            "index": {
                "records": self.n_records,
                "nodes": self.n_nodes,
                "postings_requests": self._ifile.stats.postings_requests,
                "cache_hits": self._ifile.stats.cache_hits,
                "lists_decoded": self._ifile.stats.lists_decoded,
                "meta_block_reads": self._ifile.stats.meta_block_reads,
                "blocks_read": self._ifile.stats.blocks_read,
                "blocks_skipped": self._ifile.stats.blocks_skipped,
                "bytes_decoded": self._ifile.stats.bytes_decoded,
            },
            "cache": {
                "policy": self._ifile.cache.name,
                "hits": self._ifile.cache.stats.hits,
                "misses": self._ifile.cache.stats.misses,
                "hit_rate": self._ifile.cache.stats.hit_rate,
            },
            "store": self._ifile.store.stats.snapshot(),
        }
        wal = self._ifile.store.wal_info()
        if wal is not None:
            out["wal"] = wal
        return out

    def reset_stats(self) -> None:
        """Zero all query-time counters (between experiment runs)."""
        self._ifile.reset_stats()

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        self._flush_writer()
        self._ifile.close()

    def __enter__(self) -> "NestedSetIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
