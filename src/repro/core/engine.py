"""Public facade: build, open, and query a nested-set containment index.

:class:`NestedSetIndex` wires together the inverted file, the list cache
(Section 3.3), the Bloom prefilters (Section 3.3), the two containment
algorithms (Section 3) and their extensions (Section 4) behind a small
surface::

    from repro import NestedSetIndex

    index = NestedSetIndex.build(records)           # in-memory
    index.query("{USA, {UK, {A, motorbike}}}")      # -> ['tim']
    index.query(q, algorithm="topdown", semantics="homeo")
    index.query(q, join="overlap", epsilon=2)

Disk-resident indexes (``storage="diskhash"`` or ``"btree"``) persist and
reopen via :meth:`NestedSetIndex.open`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Iterable, Sequence

from ..storage import KVStore
from .bloom import BloomIndex
from .cache import PAPER_BUDGET, make_cache
from .exec.compiler import ALGORITHMS, compile_query
from .exec.context import ExecutionContext
from .exec.observer import ExplainResult, run_explained
from .exec.plan import ExecutionPlan
from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet, as_nested_set
from .parallel import RWLock
from .resultcache import ResultCache
from .snapshot import ModEpochs, SharedIndexState, SnapshotInvertedFile, \
    SnapshotListCache
from .stats import CollectionStats
from .updates import IndexWriter

if TYPE_CHECKING:
    from .shard import ShardedIndex

__all__ = ["ALGORITHMS", "NestedSetIndex", "Snapshot", "as_nested_set"]

#: Reserved epoch token bumped by *every* mutation of one engine
#: (inserts and deletes alike).  Its floor at a pinned version counts
#: the mutations of this engine visible there, and scopes the result
#: cache and statistics memo: two versions with an equal floor saw the
#: identical index state, so commits elsewhere in a shared store (e.g.
#: sibling shards) do not thrash this engine's cached results.
_RESULT_EPOCH = "\x00index"


class _SharedPin:
    """A refcounted :class:`Snapshot` shared by every query at one
    committed version (guarded by the engine's ``_pin_lock``)."""

    __slots__ = ("snap", "version", "generation", "refs", "retired")

    def __init__(self, snap: "Snapshot", version: int | None,
                 generation: "InvertedFile") -> None:
        self.snap = snap
        self.version = version
        self.generation = generation
        self.refs = 1
        self.retired = False


class Snapshot:
    """A consistent read view of one index, pinned at one version.

    Obtained from :meth:`NestedSetIndex.snapshot`; every read method
    runs entirely against the pinned version, so writers commit freely
    while this handle is open and the answers never mix two states.
    Close it (or use it as a context manager) to release the pin.

    On a store without MVCC support the view is live (``version`` is
    ``None``) and each read briefly takes the engine's read lock
    instead -- prefer the built-in stores, which all support pinning.
    """

    def __init__(self, engine: "NestedSetIndex",
                 ifile: SnapshotInvertedFile, version: int | None,
                 generation: InvertedFile) -> None:
        self._engine = engine
        self._ifile = ifile
        self.version = version
        self._generation = generation
        self._bloom = engine._bloom
        result_cache = engine._result_cache
        if result_cache is not None and version is not None:
            # Scope entries to (generation, mutation floor): a commit
            # starts a fresh key space instead of invalidating, and a
            # slow reader can only re-populate its own floor's entries.
            floor = engine._epochs.floor(_RESULT_EPOCH, version)
            result_cache = result_cache.at_version((id(generation), floor))
        self._result_cache = result_cache
        self._closed = False

    # -- introspection -----------------------------------------------------

    @property
    def inverted_file(self) -> SnapshotInvertedFile:
        return self._ifile

    @property
    def n_records(self) -> int:
        return self._ifile.n_records

    @property
    def n_nodes(self) -> int:
        return self._ifile.n_nodes

    # -- reads -------------------------------------------------------------

    def execution_context(self, *, observer=None,
                          memo: dict | None = None) -> ExecutionContext:
        """An execution context bound to this pinned view."""
        engine = self._engine
        return ExecutionContext(
            ifile=self._ifile, bloom_index=self._bloom,
            result_cache=self._result_cache,
            stats_provider=lambda: engine._snapshot_stats(
                self._ifile, self._generation),
            observer=observer, memo=memo)

    def query(self, query: object, *, algorithm: str = "bottomup",
              semantics: str = "hom", join: str = "subset",
              epsilon: int = 1, mode: str = "root",
              use_bloom: bool = False,
              planner: str | None = None) -> list[str]:
        """Evaluate one query against the pinned version."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom)
        with self._engine._read_guard():
            return plan.run(self.execution_context())

    def query_batch(self, queries: Sequence[object], *,
                    share_subqueries: bool = True,
                    algorithm: str = "bottomup", semantics: str = "hom",
                    join: str = "subset", epsilon: int = 1,
                    mode: str = "root", use_bloom: bool = False,
                    planner: str | None = None) -> list[list[str]]:
        """Evaluate a workload; every answer reflects the same version."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plans = [compile_query(query, spec, algorithm=algorithm,
                               planner=planner, use_bloom=use_bloom)
                 for query in queries]
        memo: dict | None = None
        if share_subqueries and plans and \
                all(plan.match.memoizable for plan in plans):
            memo = {}
        with self._engine._read_guard():
            ctx = self.execution_context(memo=memo)
            return [plan.run(ctx) for plan in plans]

    def explain(self, query: object, *, algorithm: str = "bottomup",
                semantics: str = "hom", join: str = "subset",
                epsilon: int = 1, mode: str = "root",
                use_bloom: bool = False,
                planner: str | None = None) -> ExplainResult:
        """Trace one query's evaluation against the pinned version."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom,
                             cacheable=False)
        with self._engine._read_guard():
            return run_explained(plan, self.execution_context())

    def match_nodes(self, query: object, *, algorithm: str = "bottomup",
                    spec: QuerySpec = QuerySpec(),
                    planner: str | None = None) -> set[int]:
        """Raw node-level result at the pinned version."""
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, cacheable=False)
        with self._engine._read_guard():
            return plan.match_nodes(self.execution_context())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the version pin (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._ifile.close()
        self._engine._release_generation(self._generation)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NestedSetIndex:
    """A queryable containment index over a collection of nested sets.

    Thread-safety: reads are **version-based, not lock-based**.  Every
    public query entry point (``query``, ``query_batch``, ``explain``,
    ``match_nodes``) opens a :class:`Snapshot` pinned at the store's
    committed version and runs against it without blocking -- or being
    blocked by -- mutations, which serialize among themselves on a
    writer mutex and commit through the store's MVCC machinery.  The
    shared caches are epoch-scoped (:mod:`repro.core.snapshot`), so a
    commit invalidates nothing for in-flight readers.  On a store
    without MVCC support (``mvcc_info() is None``) the engine falls
    back to its classic reader/writer lock.
    """

    def __init__(self, ifile: InvertedFile,
                 bloom_index: BloomIndex | None = None) -> None:
        self._ifile = ifile
        self._bloom = bloom_index
        self._stats: CollectionStats | None = None
        self._writer: IndexWriter | None = None
        self._result_cache: ResultCache | None = None
        self._rwlock = RWLock()
        #: Serializes mutations (and deferred-statistics flushes): with
        #: MVCC reads the write lock is gone, so this mutex is the only
        #: writer-writer coordination.
        self._writer_mutex = threading.Lock()
        self._mvcc = ifile.store.mvcc_info() is not None
        self._wire_generation(ifile, ModEpochs(), SharedIndexState())
        #: Snapshot refcounts per index generation; a compact retires
        #: the old generation and its store closes when the last pinned
        #: snapshot over it drains.
        self._gen_lock = threading.Lock()
        self._gen_counts: dict[InvertedFile, int] = {}
        self._retired: set[InvertedFile] = set()
        self._memo_lock = threading.Lock()
        self._stats_memo: dict[tuple[int, int], CollectionStats] = {}
        #: One shared snapshot per committed version (see :meth:`_pinned`):
        #: queries refcount it on a dedicated lock instead of opening a
        #: pin per call, keeping reader traffic off the locks the
        #: writer's put path needs (per-query pin churn convoys with the
        #: GIL and can starve writers almost completely).
        self._pin_lock = threading.Lock()
        self._shared_pin: _SharedPin | None = None

    def _wire_generation(self, ifile: InvertedFile, epochs: ModEpochs,
                         shared: SharedIndexState) -> None:
        """Attach the epoch/shared-cache plumbing to a live ifile."""
        self._epochs = epochs
        self._shared = shared
        inner = ifile.cache
        if isinstance(inner, SnapshotListCache):
            inner = inner.inner
        self._list_cache = inner
        ifile.cache = SnapshotListCache(inner, epochs, None)
        ifile._epochs = epochs
        ifile._key_cache = shared.key_cache

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[tuple[str, object]], *,
              storage: str = "memory", path: str | None = None,
              cache: str | None = None, cache_budget: int = PAPER_BUDGET,
              bloom: str | None = None, bloom_bits: int = 512,
              segment_size: int = 0, block_size: int | None = None,
              shards: int = 1, workers: int = 1,
              shard_policy: object = "hash",
              **store_options: object) -> "NestedSetIndex | ShardedIndex":
        """Index ``(key, nested-set)`` records.

        ``cache``: None/"none", "frequency" (the paper's policy) or "lru".
        ``bloom``: None, "flat", "breadth" or "depth" -- builds per-record
        prefilters consumed by the naive algorithm.
        ``segment_size``: > 0 stores long posting lists as range-tagged
        segments and enables segment-skipping intersections.
        ``block_size``: postings per block of the block-compressed list
        format (default when segmentation is off); ``0`` writes the
        legacy plain format.
        ``shards``: > 1 partitions the records across that many
        independent inverted files inside one store and returns a
        :class:`~repro.core.shard.ShardedIndex` (same query surface;
        ``workers`` threads fan queries out, ``shard_policy`` picks the
        partitioner).
        """
        if shards > 1:
            from .shard import ShardedIndex
            return ShardedIndex.build(
                records, shards=shards, workers=workers,
                policy=shard_policy, storage=storage, path=path,
                cache=cache, cache_budget=cache_budget, bloom=bloom,
                bloom_bits=bloom_bits, segment_size=segment_size,
                block_size=block_size, **store_options)
        prepared = ((key, as_nested_set(value)) for key, value in records)
        ifile = InvertedFile.build(prepared, storage=storage, path=path,
                                   segment_size=segment_size,
                                   block_size=block_size,
                                   **store_options)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        bloom_index = None
        if bloom is not None:
            bloom_index = BloomIndex(bloom, n_bits=bloom_bits)
            for _ordinal, _key, _root, tree in ifile.iter_records():
                bloom_index.add_record(tree)
            bloom_index.save(ifile.store)
        return cls(ifile, bloom_index)

    @classmethod
    def build_external(cls, records, *,
                       storage: str = "memory", path: str | None = None,
                       memory_budget: int | None = None,
                       cache: str | None = None,
                       cache_budget: int = PAPER_BUDGET,
                       segment_size: int = 0,
                       block_size: int | None = None,
                       shards: int = 1, workers: int = 1,
                       shard_policy: object = "hash",
                       **store_options: object
                       ) -> "NestedSetIndex | ShardedIndex":
        """Bulk-load with a bounded posting buffer (run-merge build).

        Use for collections whose posting lists don't fit in memory; see
        :mod:`repro.core.bulkload`.  ``memory_budget`` counts buffered
        postings (default 500k entries).  ``shards > 1`` splits both the
        records and the budget across that many shard builds and returns
        a :class:`~repro.core.shard.ShardedIndex`.
        """
        if shards > 1:
            from .shard import ShardedIndex
            return ShardedIndex.build_external(
                records, shards=shards, workers=workers,
                policy=shard_policy, storage=storage, path=path,
                memory_budget=memory_budget, cache=cache,
                cache_budget=cache_budget, segment_size=segment_size,
                block_size=block_size, **store_options)
        from .bulkload import DEFAULT_MEMORY_BUDGET, build_external
        prepared = ((key, as_nested_set(value)) for key, value in records)
        ifile = build_external(
            prepared, storage=storage, path=path,
            memory_budget=(memory_budget if memory_budget is not None
                           else DEFAULT_MEMORY_BUDGET),
            segment_size=segment_size, block_size=block_size,
            **store_options)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        return cls(ifile)

    @classmethod
    def open(cls, storage: str, path: str, *,
             cache: str | None = None, cache_budget: int = PAPER_BUDGET,
             bloom: str | None = None, bloom_bits: int = 512,
             workers: int = 1,
             **store_options: object) -> "NestedSetIndex | ShardedIndex":
        """Reopen a disk-resident index built earlier.

        A store carrying a shard manifest reopens as a
        :class:`~repro.core.shard.ShardedIndex` automatically (``workers``
        sizes its fan-out pool; it is ignored for monolithic indexes).
        Bloom filters persisted at build time reload directly when their
        kind matches; otherwise they are rebuilt from the record table
        (one sequential scan).
        """
        from ..storage import open_store
        from .shard import ShardedIndex, read_manifest
        store = open_store(storage, path, create=False, **store_options)
        if read_manifest(store) is not None:
            return ShardedIndex.from_base_store(
                store, workers=workers, cache=cache,
                cache_budget=cache_budget, bloom=bloom,
                bloom_bits=bloom_bits)
        return cls.from_store(store, cache=cache, cache_budget=cache_budget,
                              bloom=bloom, bloom_bits=bloom_bits)

    @classmethod
    def from_store(cls, store: KVStore, *,
                   cache: str | None = None,
                   cache_budget: int = PAPER_BUDGET,
                   bloom: str | None = None,
                   bloom_bits: int = 512) -> "NestedSetIndex":
        """Wrap an already-open store holding one inverted file.

        The sharded index uses this to bring up each shard over its
        namespaced view of the shared store.
        """
        ifile = InvertedFile(store)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        bloom_index = None
        if bloom is not None:
            stored = BloomIndex.load(ifile.store)
            if stored is not None and stored.kind == bloom and \
                    stored.n_bits == bloom_bits:
                bloom_index = stored
            else:
                bloom_index = BloomIndex(bloom, n_bits=bloom_bits)
                for _ordinal, _key, _root, tree in ifile.iter_records():
                    bloom_index.add_record(tree)
                bloom_index.save(ifile.store)
        return cls(ifile, bloom_index)

    # -- snapshots ---------------------------------------------------------

    def _read_guard(self):
        """Reader-side coordination: a no-op under MVCC (readers are
        isolated by their pinned version), the classic read lock on
        stores without snapshot support."""
        return nullcontext() if self._mvcc else self._rwlock.read_locked()

    def _write_guard(self):
        return nullcontext() if self._mvcc else self._rwlock.write_locked()

    def open_snapshot(self, store: KVStore | None = None,
                      version: int | None = None) -> Snapshot:
        """Open a pinned read view (no locking; see :meth:`snapshot`).

        ``store`` lets a coordinator supply an already-pinned store view
        -- the sharded index pins its base store *once* per fan-out and
        hands each shard engine a namespaced view of that one pin; the
        snapshot then does not own the base pin.  Callers on non-MVCC
        stores must coordinate with mutations themselves.
        """
        with self._gen_lock:
            generation = self._ifile
            self._gen_counts[generation] = \
                self._gen_counts.get(generation, 0) + 1
        try:
            snap_store = store if store is not None \
                else generation.store.snapshot()
            if not self._mvcc:
                pinned = None
            elif version is not None:
                pinned = version
            else:
                pinned = getattr(snap_store, "version", None)
            ifile = SnapshotInvertedFile(
                snap_store, list_cache=self._list_cache,
                block_cache=generation.block_cache, shared=self._shared,
                epochs=self._epochs, version=pinned,
                stats=generation.stats)
        except BaseException:
            self._release_generation(generation)
            raise
        return Snapshot(self, ifile, pinned, generation)

    def snapshot(self) -> Snapshot:
        """Pin the current committed version and return a read handle.

        The handle's ``query``/``query_batch``/``explain`` answer from
        that version no matter how many commits land meanwhile; close
        it to release the pin (and, after a concurrent ``compact``, the
        retired generation's store).
        """
        with self._read_guard():
            return self.open_snapshot()

    def _release_generation(self, generation: InvertedFile) -> None:
        with self._gen_lock:
            count = self._gen_counts.get(generation, 0) - 1
            if count > 0:
                self._gen_counts[generation] = count
                return
            self._gen_counts.pop(generation, None)
            close_now = generation in self._retired
            self._retired.discard(generation)
        if close_now:
            generation.close()

    # -- shared pin ---------------------------------------------------------
    # One-shot queries do not open a private snapshot each: under MVCC
    # they share a single refcounted snapshot of the latest committed
    # version, re-pinned only when the version advances.  Steady-state
    # readers then touch exactly one lock (``_pin_lock``), which the
    # writer's put path never takes -- per-query pin/unpin churn through
    # writer-shared locks convoys with the GIL badly enough to starve a
    # background writer thread outright.

    @contextmanager
    def _pinned(self):
        """Context manager yielding a shared snapshot of the latest
        committed version (non-MVCC stores fall back to a private
        snapshot under the read lock)."""
        if not self._mvcc:
            with self._read_guard(), self.open_snapshot() as snap:
                yield snap
            return
        pin = self._acquire_pin()
        try:
            yield pin.snap
        finally:
            self._release_pin(pin)

    def _acquire_pin(self) -> "_SharedPin":
        # Lock-free committed-version read: a racing commit publishes
        # its bump as one atomic attribute store, so we see either the
        # old or the new version -- both servable (read-your-writes for
        # the committing thread holds because the bump happens-before
        # its next query under the GIL).
        version = self._ifile.store.current_version()
        close_old = None
        with self._pin_lock:
            cur = self._shared_pin
            if cur is not None and not cur.retired \
                    and version is not None and cur.version == version \
                    and cur.generation is self._ifile:
                cur.refs += 1
                return cur
            snap = self.open_snapshot()
            pin = _SharedPin(snap, snap.version, self._ifile)
            self._shared_pin = pin
            if cur is not None:
                cur.retired = True
                if cur.refs == 0:
                    close_old = cur.snap
        if close_old is not None:
            close_old.close()
        return pin

    def _release_pin(self, pin: "_SharedPin") -> None:
        with self._pin_lock:
            pin.refs -= 1
            close_now = pin.refs == 0 and pin.retired
        if close_now:
            pin.snap.close()

    def _retire_shared_pin(self) -> None:
        """Drop the cached shared pin (compact/close): the next reader
        re-pins against the current generation."""
        with self._pin_lock:
            cur = self._shared_pin
            self._shared_pin = None
            if cur is None:
                return
            cur.retired = True
            close_now = cur.refs == 0
        if close_now:
            cur.snap.close()

    def _snapshot_stats(self, ifile: SnapshotInvertedFile,
                        generation: InvertedFile) -> CollectionStats:
        """Collection statistics at a snapshot's version (memoized)."""
        if ifile.version is None:
            return self.collection_stats()
        key = (id(generation),
               self._epochs.floor(_RESULT_EPOCH, ifile.version))
        memo = self._stats_memo.get(key)
        if memo is None:
            memo = CollectionStats.from_inverted_file(ifile)
            with self._memo_lock:
                self._stats_memo[key] = memo
                while len(self._stats_memo) > 8:
                    self._stats_memo.pop(next(iter(self._stats_memo)))
        return memo

    def _note_mutation(self, tokens: set[str],
                       postings_changed: bool) -> None:
        """Writer hook: advance modification epochs pre-commit.

        Called inside the mutation's open transaction, stamped with the
        *upcoming* commit version: a reader pinning the new version
        after the commit lands always computes a post-bump floor, while
        readers at older versions are unaffected (their floors count
        only bumps at or below their pinned version).  Deletes change
        no posting bytes, so they bump only the engine-level
        ``_RESULT_EPOCH`` (tombstones change answers, not lists).
        """
        info = self._ifile.store.mvcc_info()
        upcoming = None if info is None \
            else int(info["snapshot_version"]) + 1
        if postings_changed:
            self._epochs.bump(tokens, upcoming)
        self._epochs.bump((_RESULT_EPOCH,), upcoming)

    # -- querying -----------------------------------------------------------

    def query(self, query: object, *, algorithm: str = "bottomup",
              semantics: str = "hom", join: str = "subset",
              epsilon: int = 1, mode: str = "root",
              use_bloom: bool = False,
              planner: str | None = None) -> list[str]:
        """Evaluate ``query ⋉ S``; returns sorted matching record keys.

        ``planner`` ("selective-first" / "bulky-first" / "text") installs
        a sibling-ordering strategy for the top-down algorithm; see
        :mod:`repro.core.planner`.  The query is compiled into an
        :class:`~repro.core.exec.plan.ExecutionPlan` and run against a
        snapshot pinned for the duration; use :meth:`compile` to inspect
        the plan and :meth:`explain` for a full evaluation trace.
        """
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom)
        with self._pinned() as snap:
            return plan.run(snap.execution_context())

    def compile(self, query: object, *, algorithm: str = "bottomup",
                semantics: str = "hom", join: str = "subset",
                epsilon: int = 1, mode: str = "root",
                use_bloom: bool = False, planner: str | None = None,
                cacheable: bool = True) -> ExecutionPlan:
        """Compile a query without running it (validation + plan)."""
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        return compile_query(query, spec, algorithm=algorithm,
                             planner=planner, use_bloom=use_bloom,
                             cacheable=cacheable)

    def execution_context(self, *, observer=None,
                          memo: dict | None = None) -> ExecutionContext:
        """A context bound to the *live* index state (legacy surface).

        Prefer :meth:`snapshot` -- a live context offers no isolation
        from concurrent mutations on MVCC stores.  Kept for callers
        that coordinate externally (single-threaded experiments).
        """
        return ExecutionContext(
            ifile=self._ifile, bloom_index=self._bloom,
            result_cache=self._result_cache,
            stats_provider=self.collection_stats,
            observer=observer, memo=memo)

    def explain(self, query: object, *, algorithm: str = "bottomup",
                semantics: str = "hom", join: str = "subset",
                epsilon: int = 1, mode: str = "root",
                use_bloom: bool = False,
                planner: str | None = None) -> ExplainResult:
        """Trace one query's evaluation (works for every algorithm).

        The trace observes the real execution through the context, so
        ``explain(...).matches`` always equals ``query(...)`` with the
        same options; the result cache is bypassed so the trace reflects
        a full evaluation.
        """
        with self._pinned() as snap:
            plan = self.compile(query, algorithm=algorithm,
                                semantics=semantics, join=join,
                                epsilon=epsilon, mode=mode,
                                use_bloom=use_bloom, planner=planner,
                                cacheable=False)
            return run_explained(plan, snap.execution_context())

    def enable_result_cache(self, capacity: int = 1024) -> ResultCache:
        """Cache whole query results.

        Entries are scoped to the snapshot version they were computed
        at, so mutations need not (and do not) invalidate them under
        MVCC; on non-MVCC stores any mutation still drops everything.
        Returns the cache so callers can read its hit statistics; call
        :meth:`disable_result_cache` to turn it off.
        """
        self._result_cache = ResultCache(capacity)
        # The cached shared pin was wired without the cache; drop it so
        # the next query re-wires (same below on disable).
        self._retire_shared_pin()
        return self._result_cache

    def disable_result_cache(self) -> None:
        self._result_cache = None
        self._retire_shared_pin()

    @property
    def result_cache(self) -> ResultCache | None:
        """The active result cache, if enabled (for stats inspection)."""
        return self._result_cache

    def match_nodes(self, query: object, *, algorithm: str = "bottomup",
                    spec: QuerySpec = QuerySpec(),
                    planner: str | None = None) -> set[int]:
        """Raw node-level result: ids at which the query embeds."""
        plan = compile_query(query, spec, algorithm=algorithm,
                             planner=planner, cacheable=False)
        with self._pinned() as snap:
            return plan.match_nodes(snap.execution_context())

    def collection_stats(self) -> CollectionStats:
        """Frequency statistics over the indexed collection (memoized)."""
        if self._stats is None:
            self._flush_writer()
            self._stats = CollectionStats.from_inverted_file(self._ifile)
        return self._stats

    # -- updates ----------------------------------------------------------------

    def _index_writer(self) -> IndexWriter:
        if self._writer is None:
            self._writer = IndexWriter(self._ifile,
                                       on_mutate=self._note_mutation)
        return self._writer

    def _flush_writer_locked(self) -> None:
        if self._writer is not None:
            self._writer.flush()

    def _flush_writer(self) -> None:
        """Persist deferred statistics before anything reads them."""
        with self._writer_mutex:
            self._flush_writer_locked()

    def _after_mutation(self) -> None:
        self._stats = None
        if self._result_cache is not None and not self._mvcc:
            self._result_cache.invalidate_all()
        # The commit advanced the version, so the cached shared pin can
        # never be reused -- retire it now rather than letting a stale
        # pin force pre-image capture on every subsequent page write
        # (unbounded history growth under write-only workloads).
        self._retire_shared_pin()

    def note_replicated_apply(self, version: int | None = None) -> None:
        """Replica-side pre-apply hook: shipped groups are about to land.

        Log replay bypasses the writer path entirely (no ``_note_mutation``
        with per-atom tokens), so the epochs get one *global* bump at the
        ``version`` about to be applied -- called *before* the pager
        rewrites pages, exactly as ``_note_mutation`` bumps before a
        local commit: a reader that pins the new version can never
        compute a pre-bump floor, while readers pinned below it keep
        hitting their still-correct entries.  Nothing is cleared, which
        keeps the invalidation race-free.
        """
        self._epochs.bump_all(version)
        self._epochs.bump((_RESULT_EPOCH,), version)

    def finish_replicated_apply(self) -> None:
        """Replica-side post-apply hook: refresh live-object state.

        The inverted-file config, tombstones, bloom filters and
        memoized statistics were all computed from pages that the
        replicated apply just rewrote; refreshing them here keeps the
        engine answering correctly the moment it serves -- including
        right after a promotion turns mutations back on.
        """
        self._ifile.reload_config()
        if self._bloom is not None:
            self._bloom.refresh_persisted(self._ifile.store)
        self._stats = None
        with self._memo_lock:
            self._stats_memo.clear()
        if self._result_cache is not None and not self._mvcc:
            self._result_cache.invalidate_all()
        self._retire_shared_pin()

    def insert(self, key: str, value: object) -> int:
        """Add one record to the live index; returns its ordinal.

        On journaled stores the whole insert -- postings, metadata,
        record table, frequency table, and the Bloom filter append --
        commits as one write-ahead-log group, so a crash at any point
        leaves the index wholly pre- or post-insert.  Mutations
        serialize on the writer mutex; concurrent readers keep running
        against their pinned versions throughout.
        """
        with self._writer_mutex, self._write_guard():
            return self._insert_locked(key, value)

    def _insert_locked(self, key: str, value: object) -> int:
        with self._ifile.store.transaction(b"insert"):
            ordinal = self._index_writer().insert(key, value)
            if self._bloom is not None:
                self._bloom.append_persisted(self._ifile.store,
                                             as_nested_set(value))
        self._after_mutation()
        return ordinal

    def insert_batch(self, records: Iterable[tuple[str, object]]
                     ) -> list[int]:
        """Insert several records as **one** WAL commit group.

        The streaming ingestor uses this to amortize the commit fsync
        across a batch: readers observe either none of the batch or all
        of it, and the store version advances once.
        """
        with self._writer_mutex, self._write_guard():
            ordinals: list[int] = []
            writer = self._index_writer()
            with self._ifile.store.transaction(b"ingest"):
                for key, value in records:
                    ordinal = writer.insert(key, value, flush_stats=False)
                    if self._bloom is not None:
                        self._bloom.append_persisted(self._ifile.store,
                                                     as_nested_set(value))
                    ordinals.append(ordinal)
                # One frequency-table rewrite for the whole group: each
                # per-record rewrite would fully supersede the previous
                # anyway, and the encode is O(vocabulary) -- paying it
                # once per batch instead of once per record is most of
                # the streaming path's ingest throughput.
                writer.flush()
            self._after_mutation()
            return ordinals

    def delete(self, key: str) -> bool:
        """Tombstone the record with ``key``; see repro.core.updates."""
        with self._writer_mutex, self._write_guard():
            deleted = self._index_writer().delete(key)
            if deleted:
                # Dead counts change live frequencies: the memoized
                # collection statistics (planner input) must be recomputed.
                self._after_mutation()
            return deleted

    def compact(self, *, storage: str = "memory",
                path: str | None = None,
                store: KVStore | None = None) -> None:
        """Rebuild the index from live records, dropping tombstones.

        The engine swaps to the fresh index in place; disk targets need a
        new ``path`` (a store cannot be rebuilt into its own open file).
        ``store`` accepts a pre-opened destination (used by the sharded
        index to compact each shard into one fresh shared store).
        Snapshots pinned on the old generation keep answering from it;
        its store closes when the last of them is released.
        """
        with self._writer_mutex, self._write_guard():
            fresh = self._index_writer().compact(storage=storage, path=path,
                                                 store=store)
            self._writer = None
            if self._result_cache is not None:
                # Version numbering restarts with the fresh store;
                # generation-scoped keys prevent collisions, but the old
                # entries can never hit again -- drop them.
                self._result_cache.invalidate_all()
            old_bloom_kind = self._bloom.kind if self._bloom else None
            # Drop the cached shared pin first: it holds a generation
            # refcount, and closing it here (when idle) lets the old
            # store close immediately below instead of deferring.
            self._retire_shared_pin()
            with self._gen_lock:
                old = self._ifile
                defer = self._gen_counts.get(old, 0) > 0
                if defer:
                    self._retired.add(old)
            if not defer:
                old.close()
            self._list_cache.clear()
            self._wire_generation(fresh, ModEpochs(), SharedIndexState())
            self._ifile = fresh
            self._mvcc = fresh.store.mvcc_info() is not None
            self._stats = None
            with self._memo_lock:
                self._stats_memo.clear()
            if old_bloom_kind is not None:
                self._bloom = BloomIndex(old_bloom_kind)
                for _ordinal, _key, _root, tree in fresh.iter_records():
                    self._bloom.add_record(tree)
                self._bloom.save(fresh.store)

    def query_batch(self, queries: Sequence[object], *,
                    share_subqueries: bool = True,
                    algorithm: str = "bottomup", semantics: str = "hom",
                    join: str = "subset", epsilon: int = 1,
                    mode: str = "root", use_bloom: bool = False,
                    planner: str | None = None,
                    workers: int | None = None) -> list[list[str]]:
        """Evaluate a workload of queries (the paper times 100 at a time).

        All plans share one execution context over one pinned snapshot,
        so every answer in the batch reflects the same index version
        even while writers commit concurrently.  When every plan
        supports it (the memoized evaluation is bottom-up, so
        ``bottomup`` only), a cross-query subquery memo is attached so
        structurally shared subtrees are evaluated once per batch; pass
        ``share_subqueries=False`` to opt out and run a plain per-query
        loop.  Results are identical either way (tested property).
        ``workers`` exists for facade symmetry with
        :class:`~repro.core.shard.ShardedIndex`; a monolithic index has
        a single execution context and always evaluates sequentially.
        """
        del workers  # single index: nothing to fan out over
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        plans = [compile_query(query, spec, algorithm=algorithm,
                               planner=planner, use_bloom=use_bloom)
                 for query in queries]
        memo: dict | None = None
        if share_subqueries and plans and \
                all(plan.match.memoizable for plan in plans):
            memo = {}
        with self._pinned() as snap:
            ctx = snap.execution_context(memo=memo)
            return [plan.run(ctx) for plan in plans]

    def containment_join(self, queries: Iterable[tuple[str, object]],
                         **options: object) -> list[tuple[str, str]]:
        """Equation 1: all pairs ``(q.key, s.key)`` with ``q ⊆ s``.

        Accepts the same options as :meth:`query_batch` (including
        ``share_subqueries``); the whole join runs through one compiled
        batch against one pinned snapshot.  See
        :func:`repro.core.join.containment_join` for the strategy-level
        executor with counters.
        """
        materialized = [(qkey, query) for qkey, query in queries]
        results = self.query_batch([query for _qkey, query in materialized],
                                   **options)
        return [(qkey, skey)
                for (qkey, _query), result in zip(materialized, results)
                for skey in result]

    def self_check(self, query: object, *, semantics: str = "hom",
                   join: str = "subset", epsilon: int = 1,
                   mode: str = "root") -> dict[str, list[str]]:
        """Run every applicable algorithm on one query (diagnostics)."""
        out: dict[str, list[str]] = {}
        for algorithm in ALGORITHMS:
            if algorithm == "topdown-paper" and (
                    semantics == "iso" or join == "superset"):
                continue
            out[algorithm] = self.query(
                query, algorithm=algorithm, semantics=semantics,
                join=join, epsilon=epsilon, mode=mode)
        return out

    def set_cache(self, policy: str | None,
                  budget: int = PAPER_BUDGET) -> None:
        """Swap the inverted-list cache policy in place.

        The experiment harness runs each configuration with and without
        caching on the *same* built index; swapping the cache (rather than
        rebuilding) is what makes that cheap.  Open snapshots keep the
        cache they were wired with.
        """
        with self._writer_mutex, self._write_guard():
            self._flush_writer_locked()
            inner = make_cache(policy,
                               frequencies=self._ifile.frequencies(),
                               budget=budget)
            self._list_cache = inner
            self._ifile.cache = SnapshotListCache(inner, self._epochs, None)
        # One-shot queries must pick up the new cache immediately.
        self._retire_shared_pin()

    # -- introspection ----------------------------------------------------------

    @property
    def rwlock(self) -> RWLock:
        """The fallback reader/writer lock (only engaged on stores
        without MVCC support; see the class docstring)."""
        return self._rwlock

    @property
    def mvcc(self) -> bool:
        """True when reads are version-based (store supports snapshots)."""
        return self._mvcc

    @property
    def n_records(self) -> int:
        return self._ifile.n_records

    @property
    def n_nodes(self) -> int:
        return self._ifile.n_nodes

    @property
    def inverted_file(self) -> InvertedFile:
        return self._ifile

    @property
    def bloom_index(self) -> BloomIndex | None:
        return self._bloom

    def records(self) -> Iterable[tuple[str, NestedSet]]:
        """Iterate ``(key, tree)`` over the indexed collection."""
        for _ordinal, key, _root, tree in self._ifile.iter_records():
            yield key, tree

    def stats(self) -> dict[str, dict[str, object]]:
        """Index / cache / store counters, for reports and experiments."""
        out: dict[str, dict[str, object]] = {
            "index": {
                "records": self.n_records,
                "nodes": self.n_nodes,
                "postings_requests": self._ifile.stats.postings_requests,
                "cache_hits": self._ifile.stats.cache_hits,
                "lists_decoded": self._ifile.stats.lists_decoded,
                "meta_block_reads": self._ifile.stats.meta_block_reads,
                "blocks_read": self._ifile.stats.blocks_read,
                "blocks_skipped": self._ifile.stats.blocks_skipped,
                "bytes_decoded": self._ifile.stats.bytes_decoded,
                "intersects_vectorized":
                    self._ifile.stats.intersects_vectorized,
                "intersects_scalar": self._ifile.stats.intersects_scalar,
                "decode_path": self._ifile.stats.decode_path,
            },
            "cache": {
                "policy": self._ifile.cache.name,
                "hits": self._ifile.cache.stats.hits,
                "misses": self._ifile.cache.stats.misses,
                "hit_rate": self._ifile.cache.stats.hit_rate,
            },
            "store": self._ifile.store.stats.snapshot(),
        }
        wal = self._ifile.store.wal_info()
        if wal is not None:
            out["wal"] = wal
        mvcc = self._ifile.store.mvcc_info()
        if mvcc is not None:
            with self._gen_lock:
                mvcc["open_snapshots"] = sum(self._gen_counts.values())
                mvcc["retired_generations"] = len(self._retired)
            out["mvcc"] = mvcc
        return out

    def reset_stats(self) -> None:
        """Zero all query-time counters (between experiment runs)."""
        self._ifile.reset_stats()

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        self._flush_writer()
        self._retire_shared_pin()
        with self._gen_lock:
            live = self._ifile
            defer = self._gen_counts.get(live, 0) > 0
            if defer:
                self._retired.add(live)
        if not defer:
            live.close()

    def __enter__(self) -> "NestedSetIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
