"""Public facade: build, open, and query a nested-set containment index.

:class:`NestedSetIndex` wires together the inverted file, the list cache
(Section 3.3), the Bloom prefilters (Section 3.3), the two containment
algorithms (Section 3) and their extensions (Section 4) behind a small
surface::

    from repro import NestedSetIndex

    index = NestedSetIndex.build(records)           # in-memory
    index.query("{USA, {UK, {A, motorbike}}}")      # -> ['tim']
    index.query(q, algorithm="topdown", semantics="homeo")
    index.query(q, join="overlap", epsilon=2)

Disk-resident indexes (``storage="diskhash"`` or ``"btree"``) persist and
reopen via :meth:`NestedSetIndex.open`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .bloom import BloomIndex
from .bottomup import bottomup_match_nodes
from .cache import PAPER_BUDGET, make_cache
from .invfile import InvertedFile
from .matchspec import QuerySpec
from .model import NestedSet
from .naive import NaiveScanner
from .planner import make_planner
from .resultcache import ResultCache, make_key
from .stats import CollectionStats
from .updates import IndexWriter
from .topdown import topdown_match_nodes, topdown_paper_match_nodes

#: Algorithm names accepted by :meth:`NestedSetIndex.query`.
ALGORITHMS = ("bottomup", "topdown", "topdown-paper", "naive")

_MATCHERS = {
    "bottomup": bottomup_match_nodes,
    "topdown": topdown_match_nodes,
    "topdown-paper": topdown_paper_match_nodes,
}


def as_nested_set(query: object) -> NestedSet:
    """Coerce a query given as text, Python nest, or NestedSet."""
    if isinstance(query, NestedSet):
        return query
    if isinstance(query, str):
        return NestedSet.parse(query)
    return NestedSet.from_obj(query)


class NestedSetIndex:
    """A queryable containment index over a collection of nested sets."""

    def __init__(self, ifile: InvertedFile,
                 bloom_index: BloomIndex | None = None) -> None:
        self._ifile = ifile
        self._bloom = bloom_index
        self._stats: CollectionStats | None = None
        self._writer: IndexWriter | None = None
        self._result_cache: ResultCache | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[tuple[str, object]], *,
              storage: str = "memory", path: str | None = None,
              cache: str | None = None, cache_budget: int = PAPER_BUDGET,
              bloom: str | None = None, bloom_bits: int = 512,
              segment_size: int = 0,
              **store_options: object) -> "NestedSetIndex":
        """Index ``(key, nested-set)`` records.

        ``cache``: None/"none", "frequency" (the paper's policy) or "lru".
        ``bloom``: None, "flat", "breadth" or "depth" -- builds per-record
        prefilters consumed by the naive algorithm.
        ``segment_size``: > 0 stores long posting lists as range-tagged
        segments and enables segment-skipping intersections.
        """
        prepared = ((key, as_nested_set(value)) for key, value in records)
        ifile = InvertedFile.build(prepared, storage=storage, path=path,
                                   segment_size=segment_size,
                                   **store_options)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        bloom_index = None
        if bloom is not None:
            bloom_index = BloomIndex(bloom, n_bits=bloom_bits)
            for _ordinal, _key, _root, tree in ifile.iter_records():
                bloom_index.add_record(tree)
            bloom_index.save(ifile.store)
        return cls(ifile, bloom_index)

    @classmethod
    def build_external(cls, records, *,
                       storage: str = "memory", path: str | None = None,
                       memory_budget: int | None = None,
                       cache: str | None = None,
                       cache_budget: int = PAPER_BUDGET,
                       segment_size: int = 0,
                       **store_options: object) -> "NestedSetIndex":
        """Bulk-load with a bounded posting buffer (run-merge build).

        Use for collections whose posting lists don't fit in memory; see
        :mod:`repro.core.bulkload`.  ``memory_budget`` counts buffered
        postings (default 500k entries).
        """
        from .bulkload import DEFAULT_MEMORY_BUDGET, build_external
        prepared = ((key, as_nested_set(value)) for key, value in records)
        ifile = build_external(
            prepared, storage=storage, path=path,
            memory_budget=(memory_budget if memory_budget is not None
                           else DEFAULT_MEMORY_BUDGET),
            segment_size=segment_size, **store_options)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        return cls(ifile)

    @classmethod
    def open(cls, storage: str, path: str, *,
             cache: str | None = None, cache_budget: int = PAPER_BUDGET,
             bloom: str | None = None, bloom_bits: int = 512,
             **store_options: object) -> "NestedSetIndex":
        """Reopen a disk-resident index built earlier.

        Bloom filters persisted at build time reload directly when their
        kind matches; otherwise they are rebuilt from the record table
        (one sequential scan).
        """
        ifile = InvertedFile.open(storage, path, **store_options)
        ifile.cache = make_cache(cache, frequencies=ifile.frequencies(),
                                 budget=cache_budget)
        bloom_index = None
        if bloom is not None:
            stored = BloomIndex.load(ifile.store)
            if stored is not None and stored.kind == bloom and \
                    stored.n_bits == bloom_bits:
                bloom_index = stored
            else:
                bloom_index = BloomIndex(bloom, n_bits=bloom_bits)
                for _ordinal, _key, _root, tree in ifile.iter_records():
                    bloom_index.add_record(tree)
                bloom_index.save(ifile.store)
        return cls(ifile, bloom_index)

    # -- querying -----------------------------------------------------------

    def query(self, query: object, *, algorithm: str = "bottomup",
              semantics: str = "hom", join: str = "subset",
              epsilon: int = 1, mode: str = "root",
              use_bloom: bool = False,
              planner: str | None = None) -> list[str]:
        """Evaluate ``query ⋉ S``; returns sorted matching record keys.

        ``planner`` ("selective-first" / "bulky-first" / "text") installs
        a sibling-ordering strategy for the top-down algorithm; see
        :mod:`repro.core.planner`.
        """
        spec = QuerySpec(semantics=semantics, join=join, epsilon=epsilon,
                         mode=mode)
        tree = as_nested_set(query)
        cache_key = None
        if self._result_cache is not None and not use_bloom \
                and planner is None:
            cache_key = make_key(tree, algorithm, semantics, join,
                                 epsilon, mode)
            cached = self._result_cache.get(cache_key)
            if cached is not None:
                return cached
        if algorithm == "naive":
            bloom = self._bloom if use_bloom else None
            scanner = NaiveScanner(self._ifile, bloom_index=bloom)
            result = scanner.query(tree, spec)
        else:
            if use_bloom:
                raise ValueError("Bloom prefiltering applies to the naive "
                                 "algorithm only")
            heads = self.match_nodes(tree, algorithm=algorithm, spec=spec,
                                     planner=planner)
            result = self._ifile.heads_to_keys(heads, mode=spec.mode)
        if cache_key is not None:
            self._result_cache.put(cache_key, result)
        return result

    def enable_result_cache(self, capacity: int = 1024) -> ResultCache:
        """Cache whole query results (invalidated on any index mutation).

        Returns the cache so callers can read its hit statistics; call
        :meth:`disable_result_cache` to turn it off.
        """
        self._result_cache = ResultCache(capacity)
        return self._result_cache

    def disable_result_cache(self) -> None:
        self._result_cache = None

    def match_nodes(self, query: object, *, algorithm: str = "bottomup",
                    spec: QuerySpec = QuerySpec(),
                    planner: str | None = None) -> set[int]:
        """Raw node-level result: ids at which the query embeds."""
        matcher = _MATCHERS.get(algorithm)
        if matcher is None:
            raise ValueError(f"unknown algorithm {algorithm!r}; "
                             f"expected one of {ALGORITHMS}")
        if planner is not None:
            if algorithm != "topdown":
                raise ValueError("evaluation-order planning applies to "
                                 "the strict top-down algorithm only")
            plan = make_planner(planner, self.collection_stats())
            return topdown_match_nodes(as_nested_set(query), self._ifile,
                                       spec,
                                       child_order=plan.as_child_order())
        return matcher(as_nested_set(query), self._ifile, spec)

    def collection_stats(self) -> CollectionStats:
        """Frequency statistics over the indexed collection (memoized)."""
        if self._stats is None:
            self._flush_writer()
            self._stats = CollectionStats.from_inverted_file(self._ifile)
        return self._stats

    # -- updates ----------------------------------------------------------------

    def _index_writer(self) -> IndexWriter:
        if self._writer is None:
            self._writer = IndexWriter(self._ifile)
        return self._writer

    def _flush_writer(self) -> None:
        """Persist deferred statistics before anything reads them."""
        if self._writer is not None:
            self._writer.flush()

    def insert(self, key: str, value: object) -> int:
        """Add one record to the live index; returns its ordinal.

        The document-frequency table is updated lazily (flushed before
        statistics reads, cache swaps, compaction, and close) so a burst
        of inserts does not rewrite it per record.
        """
        ordinal = self._index_writer().insert(key, value)
        self._stats = None
        if self._result_cache is not None:
            self._result_cache.invalidate_all()
        if self._bloom is not None:
            self._bloom.append_persisted(self._ifile.store,
                                         as_nested_set(value))
        return ordinal

    def delete(self, key: str) -> bool:
        """Tombstone the record with ``key``; see repro.core.updates."""
        deleted = self._index_writer().delete(key)
        if deleted and self._result_cache is not None:
            self._result_cache.invalidate_all()
        return deleted

    def compact(self, *, storage: str = "memory",
                path: str | None = None) -> None:
        """Rebuild the index from live records, dropping tombstones.

        The engine swaps to the fresh index in place; disk targets need a
        new ``path`` (a store cannot be rebuilt into its own open file).
        """
        fresh = self._index_writer().compact(storage=storage, path=path)
        self._writer = None
        if self._result_cache is not None:
            self._result_cache.invalidate_all()
        old_bloom_kind = self._bloom.kind if self._bloom else None
        self._ifile.close()
        self._ifile = fresh
        self._stats = None
        if old_bloom_kind is not None:
            self._bloom = BloomIndex(old_bloom_kind)
            for _ordinal, _key, _root, tree in fresh.iter_records():
                self._bloom.add_record(tree)
            self._bloom.save(fresh.store)

    def query_batch(self, queries: Sequence[object],
                    **options: object) -> list[list[str]]:
        """Evaluate a workload of queries (the paper times 100 at a time)."""
        return [self.query(query, **options) for query in queries]

    def containment_join(self, queries: Iterable[tuple[str, object]],
                         **options: object) -> list[tuple[str, str]]:
        """Equation 1: all pairs ``(q.key, s.key)`` with ``q ⊆ s``."""
        pairs: list[tuple[str, str]] = []
        for qkey, query in queries:
            for skey in self.query(query, **options):
                pairs.append((qkey, skey))
        return pairs

    def self_check(self, query: object, *, semantics: str = "hom",
                   join: str = "subset", epsilon: int = 1,
                   mode: str = "root") -> dict[str, list[str]]:
        """Run every applicable algorithm on one query (diagnostics)."""
        out: dict[str, list[str]] = {}
        for algorithm in ALGORITHMS:
            if algorithm == "topdown-paper" and (
                    semantics == "iso" or join == "superset"):
                continue
            out[algorithm] = self.query(
                query, algorithm=algorithm, semantics=semantics,
                join=join, epsilon=epsilon, mode=mode)
        return out

    def set_cache(self, policy: str | None,
                  budget: int = PAPER_BUDGET) -> None:
        """Swap the inverted-list cache policy in place.

        The experiment harness runs each configuration with and without
        caching on the *same* built index; swapping the cache (rather than
        rebuilding) is what makes that cheap.
        """
        self._flush_writer()
        self._ifile.cache = make_cache(
            policy, frequencies=self._ifile.frequencies(), budget=budget)

    # -- introspection ----------------------------------------------------------

    @property
    def n_records(self) -> int:
        return self._ifile.n_records

    @property
    def n_nodes(self) -> int:
        return self._ifile.n_nodes

    @property
    def inverted_file(self) -> InvertedFile:
        return self._ifile

    @property
    def bloom_index(self) -> BloomIndex | None:
        return self._bloom

    def records(self) -> Iterable[tuple[str, NestedSet]]:
        """Iterate ``(key, tree)`` over the indexed collection."""
        for _ordinal, key, _root, tree in self._ifile.iter_records():
            yield key, tree

    def stats(self) -> dict[str, dict[str, object]]:
        """Index / cache / store counters, for reports and experiments."""
        return {
            "index": {
                "records": self.n_records,
                "nodes": self.n_nodes,
                "postings_requests": self._ifile.stats.postings_requests,
                "cache_hits": self._ifile.stats.cache_hits,
                "lists_decoded": self._ifile.stats.lists_decoded,
                "meta_block_reads": self._ifile.stats.meta_block_reads,
            },
            "cache": {
                "policy": self._ifile.cache.name,
                "hits": self._ifile.cache.stats.hits,
                "misses": self._ifile.cache.stats.misses,
                "hit_rate": self._ifile.cache.stats.hit_rate,
            },
            "store": self._ifile.store.stats.snapshot(),
        }

    def reset_stats(self) -> None:
        """Zero all query-time counters (between experiment runs)."""
        self._ifile.reset_stats()

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        self._flush_writer()
        self._ifile.close()

    def __enter__(self) -> "NestedSetIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
