"""Bloom-filter pruning for nested sets (Section 3.3, "Bloom filters").

The paper points to hierarchical Bloom filters (Breadth and Depth Bloom
filters of Koloniari & Pitoura [21]) as pruning devices: build a filter
over (a subset of) the leaf values of each tree, place it at the root, and
compare query filter against data filter bitwise before descending into
internal structure.  A failed comparison proves non-containment.

Three filter shapes are implemented:

* :class:`BloomFilter` -- a flat filter over every atom of the tree,
* :class:`BreadthBloom` -- one filter per nesting level (level-aligned
  subsumption is sound for homomorphic containment, which preserves depth),
* :class:`DepthBloom` -- a filter over *parent-child atom pairs*.  The
  original Depth Bloom filter hashes label paths; nested sets have
  unlabeled internal nodes, so we adapt it to the pairs ``(a, b)`` where a
  set containing leaf ``a`` directly contains a set with leaf ``b`` -- a
  relation every homomorphic embedding preserves (DESIGN.md, substitutions).

:class:`BloomIndex` stores one filter per record and yields the candidate
record ordinals for a query.  Subsumption-based pruning is *sound* for the
``subset`` and ``equality`` joins under ``hom``/``iso`` semantics, and for
``superset`` with the comparison reversed; for ``homeo`` and ``overlap``
pruning is disabled (the index returns ``None`` = "no pruning").
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

from ..storage.codec import fnv1a_64
from .invfile import atom_token
from .matchspec import QuerySpec
from .model import Atom, NestedSet

#: Default filter width in bits (power of two) and hash count.
DEFAULT_BITS = 512
DEFAULT_HASHES = 3


class BloomFilter:
    """A classic Bloom filter over atom tokens, stored as a Python int."""

    __slots__ = ("n_bits", "n_hashes", "bits")

    def __init__(self, n_bits: int = DEFAULT_BITS,
                 n_hashes: int = DEFAULT_HASHES, bits: int = 0) -> None:
        if n_bits < 8:
            raise ValueError("n_bits must be at least 8")
        if n_hashes < 1:
            raise ValueError("n_hashes must be at least 1")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self.bits = bits

    def _positions(self, item: str) -> Iterator[int]:
        # Double hashing: h_i = h1 + i*h2, the standard Kirsch-Mitzenmacher
        # construction.
        raw = item.encode("utf-8")
        h1 = fnv1a_64(raw)
        h2 = fnv1a_64(raw + b"\x00") | 1
        for index in range(self.n_hashes):
            yield (h1 + index * h2) % self.n_bits

    def add(self, item: str) -> None:
        for position in self._positions(item):
            self.bits |= 1 << position

    def add_atom(self, atom: Atom) -> None:
        self.add(atom_token(atom))

    def __contains__(self, item: str) -> bool:
        return all(self.bits >> position & 1
                   for position in self._positions(item))

    def might_subsume(self, other: "BloomFilter") -> bool:
        """True unless some bit of ``self`` is missing from ``other``.

        ``query.might_subsume(data)`` False proves the query's items are
        not all present in the data -- the bitwise pre-check of Section 3.3.
        """
        self._check_compatible(other)
        return self.bits & other.bits == self.bits

    def union(self, other: "BloomFilter") -> "BloomFilter":
        self._check_compatible(other)
        return BloomFilter(self.n_bits, self.n_hashes,
                           self.bits | other.bits)

    def _check_compatible(self, other: "BloomFilter") -> None:
        if (self.n_bits, self.n_hashes) != (other.n_bits, other.n_hashes):
            raise ValueError("incompatible Bloom filter parameters")

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits (a saturation diagnostic)."""
        return bin(self.bits).count("1") / self.n_bits

    def encode(self) -> bytes:
        width = (self.n_bits + 7) // 8
        return struct.pack("<IH", self.n_bits, self.n_hashes) + \
            self.bits.to_bytes(width, "little")

    @classmethod
    def decode(cls, raw: bytes) -> "BloomFilter":
        n_bits, n_hashes = struct.unpack_from("<IH", raw, 0)
        bits = int.from_bytes(raw[6:6 + (n_bits + 7) // 8], "little")
        return cls(n_bits, n_hashes, bits)

    @classmethod
    def for_tree(cls, tree: NestedSet, n_bits: int = DEFAULT_BITS,
                 n_hashes: int = DEFAULT_HASHES) -> "BloomFilter":
        """Flat filter over every atom at any nesting level."""
        bloom = cls(n_bits, n_hashes)
        for atom in tree.all_atoms():
            bloom.add_atom(atom)
        return bloom


class BreadthBloom:
    """One Bloom filter per nesting level (Breadth Bloom Filter of [21]).

    Level 0 covers the root's atoms, level 1 its children's atoms, and so
    on.  A homomorphic embedding maps level ``i`` of the query into level
    ``i`` of the data, so level-wise subsumption is a sound prune.
    """

    __slots__ = ("levels", "n_bits", "n_hashes")

    def __init__(self, levels: list[BloomFilter],
                 n_bits: int = DEFAULT_BITS,
                 n_hashes: int = DEFAULT_HASHES) -> None:
        self.levels = levels
        self.n_bits = n_bits
        self.n_hashes = n_hashes

    @classmethod
    def for_tree(cls, tree: NestedSet, n_bits: int = DEFAULT_BITS,
                 n_hashes: int = DEFAULT_HASHES) -> "BreadthBloom":
        levels: list[BloomFilter] = []
        frontier = [tree]
        while frontier:
            bloom = BloomFilter(n_bits, n_hashes)
            next_frontier: list[NestedSet] = []
            for node in frontier:
                for atom in node.atoms:
                    bloom.add_atom(atom)
                next_frontier.extend(node.children)
            levels.append(bloom)
            frontier = next_frontier
        return cls(levels, n_bits, n_hashes)

    def might_subsume(self, other: "BreadthBloom") -> bool:
        """Level-aligned subsumption: query deeper than data prunes."""
        if len(self.levels) > len(other.levels):
            return False
        return all(mine.might_subsume(theirs)
                   for mine, theirs in zip(self.levels, other.levels))


class DepthBloom:
    """Parent-child atom-pair filter (our Depth Bloom Filter adaptation).

    Adds ``a>b`` whenever a set with leaf ``a`` directly contains a set
    with leaf ``b``.  A flat companion filter over all atoms is kept so the
    pair filter never *loses* pruning power versus the flat filter.
    """

    __slots__ = ("pairs", "flat")

    def __init__(self, pairs: BloomFilter, flat: BloomFilter) -> None:
        self.pairs = pairs
        self.flat = flat

    @classmethod
    def for_tree(cls, tree: NestedSet, n_bits: int = DEFAULT_BITS,
                 n_hashes: int = DEFAULT_HASHES) -> "DepthBloom":
        pairs = BloomFilter(n_bits, n_hashes)
        for node in tree.iter_sets():
            for child in node.children:
                for parent_atom in node.atoms:
                    for child_atom in child.atoms:
                        pairs.add(f"{atom_token(parent_atom)}>"
                                  f"{atom_token(child_atom)}")
        return cls(pairs, BloomFilter.for_tree(tree, n_bits, n_hashes))

    def might_subsume(self, other: "DepthBloom") -> bool:
        return self.flat.might_subsume(other.flat) and \
            self.pairs.might_subsume(other.pairs)


def _encode_with_length(bloom: BloomFilter) -> bytes:
    raw = bloom.encode()
    return struct.pack("<I", len(raw)) + raw


def _decode_with_length(raw: bytes, offset: int) -> tuple[BloomFilter, int]:
    (length,) = struct.unpack_from("<I", raw, offset)
    start = offset + 4
    return BloomFilter.decode(raw[start:start + length]), start + length


def encode_filter(obj: "BloomFilter | BreadthBloom | DepthBloom") -> bytes:
    """Serialize any filter shape (kind-tagged) for index persistence."""
    if isinstance(obj, BloomFilter):
        return b"f" + _encode_with_length(obj)
    if isinstance(obj, BreadthBloom):
        out = bytearray(b"b") + struct.pack("<H", len(obj.levels))
        for level in obj.levels:
            out += _encode_with_length(level)
        return bytes(out)
    if isinstance(obj, DepthBloom):
        return b"d" + _encode_with_length(obj.pairs) + \
            _encode_with_length(obj.flat)
    raise TypeError(f"not a bloom filter: {type(obj).__name__}")


def decode_filter(raw: bytes) -> "BloomFilter | BreadthBloom | DepthBloom":
    """Inverse of :func:`encode_filter`."""
    tag = raw[:1]
    if tag == b"f":
        bloom, _pos = _decode_with_length(raw, 1)
        return bloom
    if tag == b"b":
        (n_levels,) = struct.unpack_from("<H", raw, 1)
        pos = 3
        levels = []
        for _ in range(n_levels):
            level, pos = _decode_with_length(raw, pos)
            levels.append(level)
        n_bits = levels[0].n_bits if levels else DEFAULT_BITS
        n_hashes = levels[0].n_hashes if levels else DEFAULT_HASHES
        return BreadthBloom(levels, n_bits, n_hashes)
    if tag == b"d":
        pairs, pos = _decode_with_length(raw, 1)
        flat, _pos = _decode_with_length(raw, pos)
        return DepthBloom(pairs, flat)
    raise ValueError(f"unknown bloom filter tag {tag!r}")


#: Filter shapes accepted by :class:`BloomIndex`.
BLOOM_KINDS = ("flat", "breadth", "depth")


class BloomIndex:
    """Per-record Bloom filters plus query-time candidate generation."""

    def __init__(self, kind: str = "flat", n_bits: int = DEFAULT_BITS,
                 n_hashes: int = DEFAULT_HASHES) -> None:
        if kind not in BLOOM_KINDS:
            raise ValueError(f"unknown bloom kind {kind!r}; "
                             f"expected one of {BLOOM_KINDS}")
        self.kind = kind
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._filters: list[object] = []

    @classmethod
    def build(cls, records: Iterable[tuple[str, NestedSet]],
              kind: str = "flat", n_bits: int = DEFAULT_BITS,
              n_hashes: int = DEFAULT_HASHES) -> "BloomIndex":
        index = cls(kind, n_bits, n_hashes)
        for _key, tree in records:
            index.add_record(tree)
        return index

    def add_record(self, tree: NestedSet) -> None:
        self._filters.append(self._make(tree))

    def _make(self, tree: NestedSet) -> object:
        if self.kind == "flat":
            return BloomFilter.for_tree(tree, self.n_bits, self.n_hashes)
        if self.kind == "breadth":
            return BreadthBloom.for_tree(tree, self.n_bits, self.n_hashes)
        return DepthBloom.for_tree(tree, self.n_bits, self.n_hashes)

    def __len__(self) -> int:
        return len(self._filters)

    # -- persistence -------------------------------------------------------

    def save(self, store) -> None:
        """Persist every filter (plus configuration) into a KVStore.

        Keys: ``B:cfg`` for the configuration, ``B:<ordinal>`` per
        record; shares the index's store, so the filters travel with it.
        """
        store.put(b"B:cfg",
                  f"{self.kind}:{self.n_bits}:{self.n_hashes}:"
                  f"{len(self._filters)}".encode())
        for ordinal, obj in enumerate(self._filters):
            store.put(b"B:" + str(ordinal).encode(),
                      encode_filter(obj))  # type: ignore[arg-type]

    @classmethod
    def load(cls, store) -> "BloomIndex | None":
        """Reload a persisted index; None when the store holds none."""
        raw = store.get(b"B:cfg")
        if raw is None:
            return None
        kind, n_bits, n_hashes, count = raw.decode().split(":")
        index = cls(kind, n_bits=int(n_bits), n_hashes=int(n_hashes))
        for ordinal in range(int(count)):
            blob = store.get(b"B:" + str(ordinal).encode())
            if blob is None:
                raise ValueError(f"missing persisted bloom filter "
                                 f"{ordinal}")
            index._filters.append(decode_filter(blob))
        return index

    def refresh_persisted(self, store) -> None:
        """Pull filters persisted by another process (replica replay).

        Filters are append-only per ordinal, so catching up means
        loading only the ordinals past the ones already held.
        """
        raw = store.get(b"B:cfg")
        if raw is None:
            return
        _kind, _bits, _hashes, count = raw.decode().split(":")
        for ordinal in range(len(self._filters), int(count)):
            blob = store.get(b"B:" + str(ordinal).encode())
            if blob is None:
                break
            self._filters.append(decode_filter(blob))

    def append_persisted(self, store, tree: NestedSet) -> None:
        """Add one record's filter and keep the persisted copy current."""
        self.add_record(tree)
        ordinal = len(self._filters) - 1
        store.put(b"B:" + str(ordinal).encode(),
                  encode_filter(self._filters[ordinal]))  # type: ignore[arg-type]
        store.put(b"B:cfg",
                  f"{self.kind}:{self.n_bits}:{self.n_hashes}:"
                  f"{len(self._filters)}".encode())

    def candidates(self, query: NestedSet,
                   spec: QuerySpec = QuerySpec()) -> list[int] | None:
        """Ordinals surviving the bitwise pre-check, or None = no pruning.

        Pruning is applied only where it is sound (module docstring).
        """
        if spec.semantics == "homeo" or spec.join == "overlap":
            return None
        if spec.join == "superset" and self.kind != "flat":
            return None  # hierarchical shapes are built for the ⊆ direction
        if spec.mode == "anywhere" and self.kind == "breadth":
            return None  # level alignment breaks when embedding below root
        qfilter = self._make(query)
        if spec.join == "superset":
            return [ordinal for ordinal, sfilter in enumerate(self._filters)
                    if sfilter.might_subsume(qfilter)]  # type: ignore[attr-defined]
        return [ordinal for ordinal, sfilter in enumerate(self._filters)
                if qfilter.might_subsume(sfilter)]  # type: ignore[attr-defined]
