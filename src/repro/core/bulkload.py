"""External-memory index construction (bounded-memory bulk load).

The paper's problem statement assumes "both Q and S are too large to fit
in internal memory"; :meth:`InvertedFile.build` nevertheless accumulates
all posting lists in memory before writing them (fine at benchmark
scale, documented as such).  This module is the honest alternative: a
two-phase run-merge build whose resident posting buffer never exceeds a
configurable budget.

Phase 1 (ingest).  Records stream through once.  Sequential structures
are finalized on the fly -- node ids are handed out monotonically, so the
ALL/ZERO lists and the node-metadata blocks can be appended as each
record completes, and record blobs/key map entries are written
immediately.  Postings accumulate in a buffer; whenever the buffer
exceeds ``memory_budget`` entries it is flushed as a *run*: one store
value per (run, atom), postings sorted.

Phase 2 (merge).  Because ids only grow, an atom's lists in successive
runs are already in global order -- merging is concatenation in run
order, one atom at a time, so peak memory during the merge is one atom's
full list (the same assumption queries make; enable ``segment_size`` to
bound the written value too).  Run values are deleted as they are
consumed.

The result is byte-for-byte the same index layout the in-memory builder
produces (integrity-checked in the tests).
"""

from __future__ import annotations

from typing import Iterable

from ..storage import open_store
from ..storage.codec import (
    DEFAULT_BLOCK_SIZE,
    encode_blocked,
    encode_str,
    encode_varint,
)
from .invfile import (
    InvertedFile,
    META_BLOCK,
    atom_token,
)
from .invfile import (
    _ALL_PREFIX,
    _ATOM_PREFIX,
    _CONFIG_KEY,
    _FLAG_ROOT,
    _FREQ_KEY,
    _KEYMAP_PREFIX,
    _META_ENTRY,
    _META_PREFIX,
    _RECORD_PREFIX,
    _SEGMENT_PREFIX,
    _ZERO_PREFIX,
)
from .model import Atom, NestedSet
from .invfile import LIST_BLOCK
from .postings import PostingList
from .segments import encode_plain, encode_segmented

_RUN_PREFIX = b"T:"

#: Default resident posting budget (entries, not bytes).
DEFAULT_MEMORY_BUDGET = 500_000


def build_external(records: Iterable[tuple[str, NestedSet]], *,
                   storage: str = "memory", path: str | None = None,
                   memory_budget: int = DEFAULT_MEMORY_BUDGET,
                   segment_size: int = 0,
                   block_size: int | None = None,
                   store=None,
                   **store_options: object) -> InvertedFile:
    """Bulk-load an index with a bounded posting buffer.

    ``store`` accepts a pre-opened store (e.g. one shard's namespaced
    view of a shared store); ``storage``/``path`` are ignored then.
    ``block_size`` follows :meth:`InvertedFile.build`: block-compressed
    values (the packed ``0x03`` format, bulk-decodable with numpy) by
    default when segmentation is off, ``0`` for the legacy plain format.
    """
    if memory_budget < 1:
        raise ValueError("memory_budget must be >= 1")
    if block_size is None:
        block_size = 0 if segment_size else DEFAULT_BLOCK_SIZE
    if segment_size and block_size:
        raise ValueError("segment_size and block_size are exclusive")
    if store is None:
        store = open_store(storage, path, create=True, **store_options)

    buffer: dict[Atom, list[tuple[int, tuple[int, ...]]]] = {}
    buffered = 0
    run_count = 0
    #: atom -> [run numbers containing it] (runs are globally ordered).
    atom_runs: dict[Atom, list[int]] = {}
    df: dict[Atom, int] = {}

    next_id = 0
    n_records = 0

    # Sequential structures buffer at most one block before writing it
    # whole -- no read-modify-write of tail blocks on the hot path.
    all_writer = _BlockWriter(store, _ALL_PREFIX, LIST_BLOCK)
    zero_writer = _BlockWriter(store, _ZERO_PREFIX, LIST_BLOCK)
    meta_writer = _MetaWriter(store)

    def flush_run() -> None:
        nonlocal buffered, run_count
        if not buffer:
            return
        for atom, entries in buffer.items():
            entries.sort()
            key = _RUN_PREFIX + encode_varint(run_count) + b":" + \
                atom_token(atom).encode("utf-8")
            store.put(key, PostingList(entries).encode())
            atom_runs.setdefault(atom, []).append(run_count)
        buffer.clear()
        buffered = 0
        run_count += 1

    for key, value in records:
        tree = value if isinstance(value, NestedSet) \
            else NestedSet.from_obj(value)
        ordinal = n_records
        n_records += 1
        first_id = next_id
        record_all: list[tuple[int, tuple[int, ...]]] = []
        record_zero: list[tuple[int, tuple[int, ...]]] = []
        meta_entries: list[bytes] = []

        def walk(node: NestedSet, is_root: bool) -> int:
            nonlocal next_id, buffered
            node_id = next_id
            next_id += 1
            meta_entries.append(b"")
            child_ids = tuple(
                walk(child, False)
                for child in sorted(node.children,
                                    key=lambda c: c.to_text()))
            meta_entries[node_id - first_id] = _META_ENTRY.pack(
                ordinal, len(node.atoms), next_id - 1,
                _FLAG_ROOT if is_root else 0)
            posting = (node_id, child_ids)
            for atom in node.atoms:
                buffer.setdefault(atom, []).append(posting)
                df[atom] = df.get(atom, 0) + 1
                buffered += 1
            record_all.append(posting)
            if not node.atoms:
                record_zero.append(posting)
            return node_id

        root_id = walk(tree, True)
        # Sequential structures finalize per record, in id order.
        all_writer.extend(sorted(record_all))
        zero_writer.extend(sorted(record_zero))
        meta_writer.extend(meta_entries)
        blob = encode_str(key) + encode_varint(root_id) + \
            encode_str(tree.to_text())
        store.put(_RECORD_PREFIX + encode_varint(ordinal), blob)
        store.put(_KEYMAP_PREFIX + key.encode("utf-8"),
                  encode_varint(ordinal))
        if buffered > memory_budget:
            flush_run()
    n_all_blocks = all_writer.finish()
    n_zero_blocks = zero_writer.finish()
    meta_writer.finish()
    flush_run()

    # Phase 2: per-atom merge.  Runs were flushed in id order, so the
    # concatenation of an atom's run lists is already globally sorted.
    for atom, runs in atom_runs.items():
        token = atom_token(atom).encode("utf-8")
        entries: list[tuple[int, tuple[int, ...]]] = []
        for run_no in runs:
            run_key = _RUN_PREFIX + encode_varint(run_no) + b":" + token
            raw = store.get(run_key)
            entries.extend(PostingList.decode(raw).entries)
            store.delete(run_key)
        if segment_size and len(entries) > segment_size:
            header, blobs = encode_segmented(entries, segment_size)
            store.put(_ATOM_PREFIX + token, header)
            for seg_no, blob in enumerate(blobs):
                store.put(_SEGMENT_PREFIX + token + b":" +
                          encode_varint(seg_no), blob)
        elif block_size:
            store.put(_ATOM_PREFIX + token,
                      encode_blocked(entries, block_size))
        else:
            store.put(_ATOM_PREFIX + token, encode_plain(entries))

    freq_blob = bytearray(encode_varint(len(df)))
    for atom, count in sorted(df.items(),
                              key=lambda item: (-item[1],
                                                atom_token(item[0]))):
        freq_blob += encode_str(atom_token(atom))
        freq_blob += encode_varint(count)
    store.put(_FREQ_KEY, bytes(freq_blob))
    config = encode_varint(n_records) + encode_varint(next_id) + \
        encode_varint(n_all_blocks) + encode_varint(n_zero_blocks) + \
        encode_varint(segment_size) + encode_varint(block_size)
    store.put(_CONFIG_KEY, config)
    store.sync()
    return InvertedFile(store)


class _BlockWriter:
    """Append-only blocked posting-list writer (full blocks, no rewrites
    except the final partial tail)."""

    def __init__(self, store, prefix: bytes, block_size: int) -> None:
        self._store = store
        self._prefix = prefix
        self._block_size = block_size
        self._tail: list[tuple[int, tuple[int, ...]]] = []
        self._blocks = 0

    def extend(self, entries) -> None:
        self._tail.extend(entries)
        while len(self._tail) >= self._block_size:
            chunk = self._tail[:self._block_size]
            del self._tail[:self._block_size]
            self._store.put(self._prefix + encode_varint(self._blocks),
                            PostingList(chunk).encode())
            self._blocks += 1

    def finish(self) -> int:
        if self._tail:
            self._store.put(self._prefix + encode_varint(self._blocks),
                            PostingList(self._tail).encode())
            self._blocks += 1
            self._tail = []
        return self._blocks


class _MetaWriter:
    """Append-only node-metadata writer with the same full-block policy."""

    def __init__(self, store) -> None:
        self._store = store
        self._tail: list[bytes] = []
        self._blocks = 0

    def extend(self, entries) -> None:
        self._tail.extend(entries)
        while len(self._tail) >= META_BLOCK:
            chunk = b"".join(self._tail[:META_BLOCK])
            del self._tail[:META_BLOCK]
            self._store.put(_META_PREFIX + encode_varint(self._blocks),
                            chunk)
            self._blocks += 1

    def finish(self) -> None:
        if self._tail:
            self._store.put(_META_PREFIX + encode_varint(self._blocks),
                            b"".join(self._tail))
            self._tail = []
