"""Structural match conditions shared by the two algorithms.

Given the candidate postings for a query node and the already-computed
match sets of its internal children, decide which candidates actually cover
the node.  This is the ``H(·)`` operator of the bottom-up algorithm
(Algorithm 4 line 12) generalized over the paper's extension matrix:

===========  =====================================================
semantics    edge condition between a candidate and a child match
===========  =====================================================
``hom``      some *child* of the candidate lies in every child set
``homeo``    some *descendant* (preorder interval test, Section 4.2)
``iso``      an *injective* assignment children -> candidate children
===========  =====================================================

===========  =====================================================
join         additional condition (Section 4.1)
===========  =====================================================
``subset``   none
``overlap``  none (the leaf relaxation lives in candidate generation)
``equality`` candidate child count equals query child count
``superset`` every candidate child is covered by *some* query child
===========  =====================================================
"""

from __future__ import annotations

from typing import Sequence

from .candidates import node_candidates
from .invfile import InvertedFile
from .matchspec import QuerySpec
from .observe import NULL_OBSERVER, PlanObserver
from .postings import (
    PostingList,
    _has_in_interval,
    heads_with_child_in,
    heads_with_descendant_in,
)


def evaluate_node(qnode, child_sets: Sequence[set[int]],
                  ifile: InvertedFile, spec: QuerySpec,
                  observer: PlanObserver = NULL_OBSERVER) -> set[int]:
    """One query node of the shared pipeline: candidates, then filter.

    This is the ``H(·)`` evaluation step used verbatim by the bottom-up
    algorithm and the batch evaluator's memoized variant: generate the
    node's candidates from the inverted lists and keep those covering
    every child match set.  An unsatisfiable child short-circuits
    without touching the index (harmless -- and therefore skipped --
    under the superset join, where data children only need to be
    covered by *some* query child).
    """
    if spec.join != "superset" and any(not hits for hits in child_sets):
        observer.record_candidates(0)
        return set()
    cand = node_candidates(qnode, ifile, spec)
    observer.record_candidates(len(cand))
    return filter_candidates(cand, child_sets, ifile, spec).heads()


def filter_candidates(cand: PostingList, child_sets: Sequence[set[int]],
                      ifile: InvertedFile, spec: QuerySpec) -> PostingList:
    """Keep the candidates that structurally cover the query node.

    ``child_sets`` holds, for each internal child of the query node, the
    set of data node ids at which that child's subtree embeds.
    """
    if spec.join == "superset":
        allowed: set[int] = set().union(*child_sets) if child_sets else set()
        return PostingList([(p, children) for p, children in cand
                            if all(c in allowed for c in children)])
    if spec.join == "equality":
        want = len(child_sets)
        # Children of distinct query subtrees have disjoint equality-match
        # sets, so "every child set hit + equal counts" forces a bijection.
        return PostingList([
            (p, children) for p, children in cand
            if len(children) == want
            and all(any(c in hits for c in children) for hits in child_sets)])
    # subset / overlap
    if not child_sets:
        return cand
    if spec.semantics == "hom":
        return heads_with_child_in(cand, child_sets)
    if spec.semantics == "homeo":
        sorted_sets = [sorted(hits) for hits in child_sets]
        return heads_with_descendant_in(cand, sorted_sets, ifile.max_desc)
    if spec.semantics == "iso":
        return PostingList([(p, children) for p, children in cand
                            if injective_cover(child_sets, children)])
    raise ValueError(f"unknown semantics {spec.semantics!r}")


def injective_cover(child_sets: Sequence[set[int]],
                    children: Sequence[int]) -> bool:
    """Bipartite matching: can every query child claim a *distinct*
    candidate child lying in its match set?  (Isomorphic semantics.)"""
    match_right: dict[int, int] = {}

    def assign(index: int, visited: set[int]) -> bool:
        hits = child_sets[index]
        for c in children:
            if c in visited or c not in hits:
                continue
            visited.add(c)
            holder = match_right.get(c)
            if holder is None or assign(holder, visited):
                match_right[c] = index
                return True
        return False

    for index in range(len(child_sets)):
        if not assign(index, set()):
            return False
    return True


def prefilter_survivors(survivors: PostingList, ok_set: set[int],
                        ifile: InvertedFile, spec: QuerySpec) -> PostingList:
    """Drop survivors with no edge into ``ok_set`` (one query child).

    Used by the strict top-down algorithm after each child recursion.  For
    ``iso`` this is a necessary-but-not-sufficient prefilter; the final
    injective check runs via :func:`filter_candidates`.
    """
    if spec.semantics == "homeo":
        sorted_ok = sorted(ok_set)
        return PostingList([
            (p, children) for p, children in survivors
            if _has_in_interval(sorted_ok, p, ifile.max_desc(p))])
    return PostingList([(p, children) for p, children in survivors
                        if any(c in ok_set for c in children)])


def frontier_of(survivors: PostingList, ifile: InvertedFile,
                spec: QuerySpec) -> "Frontier":
    """The set of data nodes reachable one query level below ``survivors``."""
    if spec.semantics == "homeo":
        intervals = _merge_intervals(
            [(p, ifile.max_desc(p)) for p, _ in survivors])
        return Frontier(intervals=intervals)
    ids: set[int] = set()
    for _p, children in survivors:
        ids.update(children)
    return Frontier(ids=ids)


class Frontier:
    """Either an id set (child axis) or merged intervals (descendant axis)."""

    __slots__ = ("ids", "intervals")

    def __init__(self, ids: set[int] | None = None,
                 intervals: list[tuple[int, int]] | None = None) -> None:
        self.ids = ids
        self.intervals = intervals

    def restrict(self, plist: PostingList) -> PostingList:
        """Keep only postings whose head lies in the frontier."""
        if self.ids is not None:
            return PostingList([(p, children) for p, children in plist
                                if p in self.ids])
        assert self.intervals is not None
        out = []
        index = 0
        intervals = self.intervals
        for p, children in plist:
            while index < len(intervals) and intervals[index][1] < p:
                index += 1
            if index < len(intervals) and intervals[index][0] < p:
                out.append((p, children))
        return PostingList(out)


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge half-open preorder intervals ``(start, end]`` (laminar family)."""
    merged: list[tuple[int, int]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
