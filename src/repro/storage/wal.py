"""Write-ahead log: crash-safe commit groups for the paged stores.

The paper's storage layer (Tokyo Cabinet) assumes clean shutdowns: indexes
are built offline and only read at query time.  Online mutations
(:mod:`repro.core.updates`) break that assumption -- one logical insert
touches posting lists, node metadata, the record table, the key map, the
frequency table and the config record, and a crash between any two of
those writes leaves a torn index with no way to detect or repair it.

This module provides the durability primitive the pager builds
transactions on: an append-only log of *commit groups*.  Each group is a
checksummed, length-prefixed batch of opaque records (the pager logs
post-image pages) tagged with the logical mutation that produced it::

    file   := [magic "NCWL"][version u16] group*
    group  := [magic "G1"][body_len u32][crc32(body) u32] body
    body   := [label_len u16][label][n_records u32] record*
    record := [length u32][payload]

Commit protocol (see :meth:`WriteAheadLog.commit`):

1. the whole group is appended with a **single write** and one fsync --
   this is the commit point; the main file has not been touched yet;
2. the buffered pages are then applied to the main file (crash-unsafe,
   but redone from the log on recovery);
3. a later checkpoint (on ``sync``/``close`` or when the log grows past
   a threshold) fsyncs the main file and truncates the log.

Recovery (:meth:`WriteAheadLog.recover`) scans the log front to back,
re-applies every complete group whose checksum verifies (idempotent:
records are physical post-images), and discards the torn tail, if any.
An index is therefore always either pre- or post-mutation, never
in between -- the property the crash-consistency suite in
``tests/storage/test_crash.py`` sweeps for.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Callable

from .errors import CorruptionError
from .faults import wrap_file

MAGIC = b"NCWL"
VERSION = 1
GROUP_MAGIC = b"G1"
_FILE_HEADER = struct.Struct("<4sH")
_GROUP_HEADER = struct.Struct("<2sII")  # magic, body length, crc32(body)

#: Default log size (bytes) past which the owning pager checkpoints.
DEFAULT_CHECKPOINT_BYTES = 4 << 20

#: Leading byte of a version-stamped commit-group label.
_VERSION_STAMP = b"@"
_VERSION_STAMP_LEN = 1 + 8  # marker + u64


def stamp_version_label(label: bytes, version: int) -> bytes:
    """Prefix a commit-group label with the version the commit produces.

    The stamp rides inside the (opaque, variable-length) label field, so
    the group format is unchanged and unstamped logs remain readable.
    Recovery uses the stamp to land the pager's version counter exactly
    on the last committed version.
    """
    return _VERSION_STAMP + struct.pack("<Q", version) + label


def split_version_label(label: bytes) -> tuple[int | None, bytes]:
    """Split a stamped label into ``(version, original_label)``.

    Labels written before version stamping (or by non-pager clients)
    come back as ``(None, label)`` untouched.
    """
    if len(label) >= _VERSION_STAMP_LEN and label[:1] == _VERSION_STAMP:
        version = struct.unpack_from("<Q", label, 1)[0]
        return version, label[_VERSION_STAMP_LEN:]
    return None, label


def fsync_file(handle) -> None:
    """Flush and fsync a (possibly fault-wrapped) file handle."""
    handle.flush()
    sync = getattr(handle, "fsync", None)
    if sync is not None:
        sync()
    else:
        os.fsync(handle.fileno())


@dataclass
class WALStats:
    """Lifetime counters of one log (surfaced by ``nestcontain info``)."""

    commits: int = 0
    records_logged: int = 0
    bytes_logged: int = 0
    syncs: int = 0
    checkpoints: int = 0
    recovered_groups: int = 0
    discarded_groups: int = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}


class WriteAheadLog:
    """Append-only commit-group log beside one paged store file."""

    def __init__(self, path: str, *, create: bool = False,
                 sync: bool = True) -> None:
        self.path = path
        self.sync = sync
        self.stats = WALStats()
        self._pending_groups = 0
        if create and os.path.exists(path):
            os.remove(path)
        if not os.path.exists(path):
            with open(path, "wb") as handle:
                handle.write(_FILE_HEADER.pack(MAGIC, VERSION))
        self._file = wrap_file(open(path, "r+b"), role="wal")
        self._file.seek(0)
        header = self._file.read(_FILE_HEADER.size)
        if len(header) < _FILE_HEADER.size:
            # A crash can tear even the 6-byte header of a brand-new log:
            # nothing was ever committed, so an empty log is the truth.
            self._reset()
            return
        magic, version = _FILE_HEADER.unpack(header)
        if magic != MAGIC:
            raise CorruptionError(f"bad WAL magic in {path!r}")
        if version != VERSION:
            raise CorruptionError(f"unsupported WAL version {version}")

    # -- commit ------------------------------------------------------------

    def commit(self, label: bytes, records: list[bytes]) -> None:
        """Durably append one commit group (single write + fsync)."""
        body = bytearray(struct.pack("<H", len(label)))
        body += label
        body += struct.pack("<I", len(records))
        for record in records:
            body += struct.pack("<I", len(record))
            body += record
        group = _GROUP_HEADER.pack(GROUP_MAGIC, len(body),
                                   zlib.crc32(body)) + bytes(body)
        self._file.seek(0, os.SEEK_END)
        self._file.write(group)
        if self.sync:
            fsync_file(self._file)
            self.stats.syncs += 1
        else:
            self._file.flush()
        self._pending_groups += 1
        self.stats.commits += 1
        self.stats.records_logged += len(records)
        self.stats.bytes_logged += len(group)

    # -- recovery / iteration ----------------------------------------------

    @property
    def header_size(self) -> int:
        """Byte offset of the first group (right after the file header)."""
        return _FILE_HEADER.size

    def read_group_at(self, offset: int
                      ) -> tuple[bytes, list[bytes], int] | None:
        """Read and decode the single group at byte ``offset``.

        Returns ``(label, records, next_offset)``, or ``None`` when the
        offset is at (or past) the end of the log, or the group there is
        torn or fails its checksum.  Only this group's bytes are read,
        so callers can walk logs of any size in bounded memory -- the
        shared primitive under both :meth:`recover` and the replication
        tailing path.
        """
        self._file.seek(offset)
        header = self._file.read(_GROUP_HEADER.size)
        if len(header) < _GROUP_HEADER.size:
            return None
        magic, body_len, crc = _GROUP_HEADER.unpack(header)
        if magic != GROUP_MAGIC:
            return None
        body = self._file.read(body_len)
        if len(body) < body_len or zlib.crc32(body) != crc:
            return None
        label, records = self._parse_body(body)
        return label, records, offset + _GROUP_HEADER.size + body_len

    def iter_groups(self, offset: int | None = None):
        """Yield ``(offset, label, records, next_offset)`` from ``offset``.

        Starts at the first group when ``offset`` is ``None``.  Stops at
        the first torn/invalid group (the crash tail) or at end of log.
        Groups are decoded one at a time -- memory use is bounded by the
        largest single group, not the log size.
        """
        pos = _FILE_HEADER.size if offset is None else offset
        while True:
            group = self.read_group_at(pos)
            if group is None:
                return
            label, records, next_pos = group
            yield pos, label, records, next_pos
            pos = next_pos

    def recover(self, apply: Callable[[bytes, list[bytes]], None]
                ) -> tuple[int, int]:
        """Re-apply committed groups; drop the torn tail.

        ``apply(label, records)`` is invoked once per complete group, in
        commit order.  Returns ``(replayed, discarded)`` group counts.
        The caller must fsync the main file and then :meth:`checkpoint`;
        until it does, the replayed groups stay pending in the log, so a
        crash *during recovery* simply replays them again (idempotent --
        the records are physical post-images).  Groups stream through
        one at a time, so replaying a multi-GB log needs memory for only
        the largest single group.
        """
        end = self.size
        replayed = 0
        stopped_at = _FILE_HEADER.size
        for pos, label, records, next_pos in self.iter_groups():
            apply(label, records)
            replayed += 1
            stopped_at = next_pos
        discarded = 1 if stopped_at < end else 0
        self._pending_groups = replayed
        self.stats.recovered_groups += replayed
        self.stats.discarded_groups += discarded
        return replayed, discarded

    @staticmethod
    def _parse_body(body: bytes) -> tuple[bytes, list[bytes]]:
        """Split a checksummed group body into ``(label, records)``."""
        cursor = 0
        label_len = struct.unpack_from("<H", body, cursor)[0]
        cursor += 2
        label = body[cursor:cursor + label_len]
        cursor += label_len
        n_records = struct.unpack_from("<I", body, cursor)[0]
        cursor += 4
        records: list[bytes] = []
        for _ in range(n_records):
            length = struct.unpack_from("<I", body, cursor)[0]
            cursor += 4
            records.append(body[cursor:cursor + length])
            cursor += length
        return label, records

    @classmethod
    def _parse_group(cls, raw: bytes, pos: int
                     ) -> tuple[bytes, list[bytes], int] | None:
        """Decode one group at ``pos`` of a byte blob; ``None`` if torn."""
        if pos + _GROUP_HEADER.size > len(raw):
            return None
        magic, body_len, crc = _GROUP_HEADER.unpack_from(raw, pos)
        if magic != GROUP_MAGIC:
            return None
        body_start = pos + _GROUP_HEADER.size
        body = raw[body_start:body_start + body_len]
        if len(body) < body_len or zlib.crc32(body) != crc:
            return None
        label, records = cls._parse_body(body)
        return label, records, body_start + body_len

    # -- checkpoint --------------------------------------------------------

    def checkpoint(self) -> None:
        """Truncate the log to its header (main file must be durable)."""
        self._file.seek(_FILE_HEADER.size)
        self._file.truncate()
        if self.sync:
            fsync_file(self._file)
        self._pending_groups = 0
        self.stats.checkpoints += 1

    def _reset(self) -> None:
        self._file.seek(0)
        self._file.write(_FILE_HEADER.pack(MAGIC, VERSION))
        self._file.truncate()
        self._file.flush()

    # -- introspection -----------------------------------------------------

    @property
    def pending_groups(self) -> int:
        """Groups committed (or replayed) since the last checkpoint."""
        return self._pending_groups

    @property
    def size(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    def describe(self) -> dict[str, object]:
        """WAL state for ``nestcontain info`` / engine stats."""
        out: dict[str, object] = {
            "path": self.path,
            "size_bytes": self.size,
            "pending_groups": self.pending_groups,
            "synchronous": self.sync,
        }
        out.update(self.stats.snapshot())
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
