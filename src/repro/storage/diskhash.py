"""External-memory hash table over the paged file.

This is the stand-in for Tokyo Cabinet's disk hash table, which the paper
used as the inverted-file storage engine with caching disabled
(Section 5.1).  Design:

* a fixed bucket directory (``n_buckets`` chosen at creation) stored in
  dedicated directory pages right after the header,
* each bucket heads a chain of record pages,
* records are appended into chain pages; replaced/deleted records are
  excised in place (the page tail shifts left), so update-heavy
  workloads reuse page space instead of growing the chain without bound,
* values larger than the in-page threshold spill into overflow chains.

Record page layout::

    [next u64][used u16][records ...]

Record layout::

    [flag u8][klen varint][vlen varint][key][value-or-overflow-ref]

``flag``: 0 = live inline, 1 = tombstone (read compatibility with files
written before deletes excised records), 2 = live with overflow value
(the in-page value is then ``[head u64][length u32]``).

Durability: mutations wrapped in :meth:`~repro.storage.kvstore.KVStore.
transaction` commit through the pager's write-ahead log and are replayed
on reopen after a crash; unwrapped writes keep the original
flush-on-:meth:`sync`/:meth:`close` behaviour (offline builds).
"""

from __future__ import annotations

import struct
from typing import Iterator

from .codec import decode_varint, encode_varint, fnv1a_64
from .errors import CorruptionError, KeyTooLargeError
from .kvstore import KVStore, ReadOnlySnapshot
from .pager import DEFAULT_PAGE_SIZE, PageReader, Pager

_PAGE_HEADER = struct.Struct("<QH")
_OVERFLOW_REF = struct.Struct("<QI")
_META = struct.Struct("<IQIQ")  # n_buckets, dir_first, n_dir_pages, count

_FLAG_LIVE = 0
_FLAG_DEAD = 1
_FLAG_OVERFLOW = 2

DEFAULT_BUCKETS = 1024


def _scan_page_raw(raw: bytes) -> Iterator[tuple[int, int, bytes, bytes, int]]:
    """Yield ``(offset, flag, key, stored_value, record_end)`` per record."""
    next_page, used = _PAGE_HEADER.unpack_from(raw, 0)
    del next_page
    pos = _PAGE_HEADER.size
    end = _PAGE_HEADER.size + used
    while pos < end:
        start = pos
        flag = raw[pos]
        pos += 1
        klen, pos = decode_varint(raw, pos)
        vlen, pos = decode_varint(raw, pos)
        key = raw[pos:pos + klen]
        pos += klen
        value = raw[pos:pos + vlen]
        pos += vlen
        yield start, flag, key, value, pos


class DiskHashTable(KVStore):
    """Disk-backed hash table implementing the :class:`KVStore` interface."""

    def __init__(self, path: str, *, create: bool = False,
                 n_buckets: int = DEFAULT_BUCKETS,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 wal: bool = True, use_mmap: bool = True,
                 wal_factory=None) -> None:
        super().__init__()
        if create:
            self._pager = Pager(path, page_size=page_size, create=True,
                                wal=wal, use_mmap=use_mmap,
                                wal_factory=wal_factory)
            self._n_buckets = n_buckets
            per_page = self._pager.page_size // 8
            self._n_dir_pages = (n_buckets + per_page - 1) // per_page
            self._dir_pages = [self._pager.allocate()
                               for _ in range(self._n_dir_pages)]
            self._directory = [0] * n_buckets
            self._count = 0
            self._flush_directory()
            self._write_meta()
        else:
            self._pager = Pager(path, wal=wal, use_mmap=use_mmap,
                                wal_factory=wal_factory)
            meta = self._pager.meta
            if len(meta) < _META.size:
                raise CorruptionError("hash table metadata missing")
            self._absorb_meta(meta)
        self._payload = self._pager.page_size - _PAGE_HEADER.size
        self._max_key = self._payload // 4
        self._overflow_threshold = self._payload // 2

    # -- metadata / directory ---------------------------------------------

    def _absorb_meta(self, meta: bytes) -> None:
        n_buckets, dir_first, n_dir_pages, count = _META.unpack(
            meta[:_META.size])
        self._n_buckets = n_buckets
        self._n_dir_pages = n_dir_pages
        self._dir_pages = list(range(dir_first, dir_first + n_dir_pages))
        self._count = count
        self._directory = self._load_directory()

    def reload_meta(self) -> None:
        """Re-read cached table state from the pager (replica replay).

        Replicated apply rewrites pages underneath the live table; the
        in-memory directory and counters must be refreshed before the
        table serves unversioned reads or (after promotion) mutations.
        """
        meta = self._pager.meta
        if len(meta) < _META.size:
            raise CorruptionError("hash table metadata missing")
        self._absorb_meta(meta)

    def _write_meta(self) -> None:
        self._pager.set_meta(_META.pack(
            self._n_buckets, self._dir_pages[0], self._n_dir_pages,
            self._count))

    def _flush_directory(self) -> None:
        per_page = self._pager.page_size // 8
        for index, page_id in enumerate(self._dir_pages):
            chunk = self._directory[index * per_page:(index + 1) * per_page]
            raw = struct.pack(f"<{len(chunk)}Q", *chunk)
            self._pager.write(page_id, raw)

    def _load_directory(self) -> list[int]:
        per_page = self._pager.page_size // 8
        directory: list[int] = []
        for page_id in self._dir_pages:
            raw = self._pager.read(page_id)
            directory.extend(struct.unpack_from(f"<{per_page}Q", raw, 0))
        return directory[:self._n_buckets]

    def _set_bucket(self, bucket: int, page_id: int) -> None:
        self._directory[bucket] = page_id
        per_page = self._pager.page_size // 8
        dir_page = self._dir_pages[bucket // per_page]
        raw = bytearray(self._pager.read(dir_page))
        struct.pack_into("<Q", raw, (bucket % per_page) * 8, page_id)
        self._pager.write(dir_page, bytes(raw))

    def _bucket_of(self, key: bytes) -> int:
        return fnv1a_64(key) % self._n_buckets

    # -- record scanning -----------------------------------------------------

    def _scan_page(self, raw: bytes) -> Iterator[tuple[int, int, bytes, bytes, int]]:
        """Yield ``(offset, flag, key, stored_value, record_end)`` per record."""
        return _scan_page_raw(raw)

    def _resolve_value(self, flag: int, stored: bytes) -> bytes:
        if flag == _FLAG_OVERFLOW:
            head, length = _OVERFLOW_REF.unpack(stored)
            data = self._pager.read_overflow(head, length)
            self.stats.page_reads += 1
            return data
        return stored

    # -- KVStore API -----------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        if len(key) > self._max_key:
            raise KeyTooLargeError(f"key of {len(key)} bytes too large")
        page_id = self._directory[self._bucket_of(key)]
        while page_id:
            raw = self._pager.read(page_id)
            self.stats.page_reads += 1
            for _offset, flag, rec_key, stored, _end in self._scan_page(raw):
                if flag != _FLAG_DEAD and rec_key == key:
                    value = self._resolve_value(flag, stored)
                    self.stats.hits += 1
                    self.stats.bytes_read += len(value)
                    return value
            page_id = _PAGE_HEADER.unpack_from(raw, 0)[0]
        self.stats.misses += 1
        return None

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self.stats.bytes_written += len(value)
        if len(key) > self._max_key:
            raise KeyTooLargeError(f"key of {len(key)} bytes too large")
        self.delete(key, _internal=True)  # tombstone any previous version
        record = self._build_record(key, value)
        bucket = self._bucket_of(key)
        page_id = self._directory[bucket]
        while page_id:
            raw = self._pager.read(page_id)
            next_page, used = _PAGE_HEADER.unpack_from(raw, 0)
            if used + len(record) <= self._payload:
                patched = bytearray(raw)
                start = _PAGE_HEADER.size + used
                patched[start:start + len(record)] = record
                _PAGE_HEADER.pack_into(patched, 0, next_page,
                                       used + len(record))
                self._pager.write(page_id, bytes(patched))
                self.stats.page_writes += 1
                self._count += 1
                return
            page_id = next_page
        # No room anywhere in the chain: new page becomes the bucket head.
        new_page = self._pager.allocate()
        old_head = self._directory[bucket]
        header = _PAGE_HEADER.pack(old_head, len(record))
        self._pager.write(new_page, header + record)
        self.stats.page_writes += 1
        self._set_bucket(bucket, new_page)
        self._count += 1

    def _build_record(self, key: bytes, value: bytes) -> bytes:
        if len(value) > self._overflow_threshold:
            head = self._pager.write_overflow(value)
            stored = _OVERFLOW_REF.pack(head, len(value))
            flag = _FLAG_OVERFLOW
        else:
            stored = value
            flag = _FLAG_LIVE
        record = bytes([flag]) + encode_varint(len(key)) + \
            encode_varint(len(stored)) + key + stored
        if len(record) > self._payload:
            raise KeyTooLargeError("record exceeds page payload")
        return record

    def delete(self, key: bytes, _internal: bool = False) -> bool:
        self._check_open()
        if not _internal:
            self.stats.deletes += 1
        page_id = self._directory[self._bucket_of(key)]
        while page_id:
            raw = self._pager.read(page_id)
            next_page, used = _PAGE_HEADER.unpack_from(raw, 0)
            for offset, flag, rec_key, stored, end in self._scan_page(raw):
                if flag != _FLAG_DEAD and rec_key == key:
                    if flag == _FLAG_OVERFLOW:
                        head, length = _OVERFLOW_REF.unpack(stored)
                        self._pager.free_overflow(head, length)
                    # Excise the record: shift the page tail left so the
                    # space is reusable.  (Tombstoning instead leaked
                    # page space without bound under same-key churn.)
                    patched = bytearray(raw)
                    del patched[offset:end]
                    _PAGE_HEADER.pack_into(patched, 0, next_page,
                                           used - (end - offset))
                    self._pager.write(page_id, bytes(patched))
                    self.stats.page_writes += 1
                    self._count -= 1
                    return True
            page_id = next_page
        return False

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        for head in self._directory:
            page_id = head
            while page_id:
                raw = self._pager.read(page_id)
                for _offset, flag, key, stored, _end in self._scan_page(raw):
                    if flag != _FLAG_DEAD:
                        yield bytes(key), self._resolve_value(flag, stored)
                page_id = _PAGE_HEADER.unpack_from(raw, 0)[0]

    def __len__(self) -> int:
        self._check_open()
        return self._count

    def sync(self) -> None:
        self._check_open()
        self._write_meta()
        self._pager.sync()

    # -- transactions ------------------------------------------------------

    def begin(self, label: bytes = b"") -> None:
        self._check_open()
        if self._pager.txn_depth == 0:
            # Meta may lag the in-memory count (bulk loads defer it to
            # sync/close); make the pre-image current before snapshot.
            self._write_meta()
        self._pager.begin(label)

    def commit(self) -> None:
        self._check_open()
        if self._pager.txn_depth == 1:
            self._write_meta()  # count lands inside the commit group
        self._pager.commit()

    def abort(self) -> None:
        self._check_open()
        if self._pager.txn_depth == 0:
            return
        self._pager.abort()
        meta = self._pager.meta
        self._count = _META.unpack(meta[:_META.size])[3]
        self._directory = self._load_directory()

    def wal_info(self) -> dict[str, object] | None:
        return self._pager.wal_info()

    @property
    def pager(self):
        return self._pager

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> KVStore:
        self._check_open()
        return DiskHashSnapshot(self)

    def mvcc_info(self) -> dict[str, object]:
        return self._pager.mvcc_info()

    def current_version(self) -> int:
        return self._pager.current_version()

    def close(self) -> None:
        if not self._closed:
            self._write_meta()
            self._pager.close()
        super().close()


class DiskHashSnapshot(ReadOnlySnapshot):
    """Read-only view of a :class:`DiskHashTable` pinned at one version.

    Directory, chain, and overflow pages are all read through the pinned
    :class:`~repro.storage.pager.PageReader`, so bucket chains stay
    coherent no matter how many record excisions, page reuses, or
    directory rewrites later commits perform.
    """

    def __init__(self, table: DiskHashTable) -> None:
        super().__init__()
        self._reader: PageReader = table._pager.reader()
        self.version = self._reader.version
        self.stats = table.stats
        meta = self._reader.meta
        if len(meta) < _META.size:
            self._reader.close()
            raise CorruptionError("hash table metadata missing in snapshot")
        n_buckets, dir_first, n_dir_pages, count = _META.unpack(
            meta[:_META.size])
        self._n_buckets = n_buckets
        self._count = count
        per_page = self._reader.page_size // 8
        directory: list[int] = []
        for page_id in range(dir_first, dir_first + n_dir_pages):
            raw = self._reader.read(page_id)
            directory.extend(struct.unpack_from(f"<{per_page}Q", raw, 0))
        self._directory = directory[:n_buckets]
        self._released = False

    def _resolve_value(self, flag: int, stored: bytes) -> bytes:
        if flag == _FLAG_OVERFLOW:
            head, length = _OVERFLOW_REF.unpack(stored)
            data = self._reader.read_overflow(head, length)
            self.stats.page_reads += 1
            return data
        return stored

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        page_id = self._directory[fnv1a_64(key) % self._n_buckets]
        while page_id:
            raw = self._reader.read(page_id)
            self.stats.page_reads += 1
            for _offset, flag, rec_key, stored, _end in _scan_page_raw(raw):
                if flag != _FLAG_DEAD and rec_key == key:
                    value = self._resolve_value(flag, stored)
                    self.stats.hits += 1
                    self.stats.bytes_read += len(value)
                    return value
            page_id = _PAGE_HEADER.unpack_from(raw, 0)[0]
        self.stats.misses += 1
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        for head in self._directory:
            page_id = head
            while page_id:
                raw = self._reader.read(page_id)
                for _offset, flag, key, stored, _end in _scan_page_raw(raw):
                    if flag != _FLAG_DEAD:
                        yield bytes(key), self._resolve_value(flag, stored)
                page_id = _PAGE_HEADER.unpack_from(raw, 0)[0]

    def __len__(self) -> int:
        self._check_open()
        return self._count

    def close(self) -> None:
        if not self._released:
            self._released = True
            self._reader.close()
        super().close()
