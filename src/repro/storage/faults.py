"""Fault injection for the crash-consistency test suite.

Simulates process-kill crashes at the file layer beneath the pager and
the write-ahead log: a :class:`FaultPlan` counts durability-relevant
events (writes, truncates, fsyncs) and, when armed, aborts the process's
I/O at a chosen event by raising :class:`CrashError` -- optionally after
*tearing* the fatal write (only its first K bytes reach the file, the
classic torn-page failure).  ``fail_fsync`` makes the next fsync raise
instead, modeling a device that lies about durability.

Crash model: everything written before the crash event survives
(process kill, not power loss -- the page cache is assumed intact), the
crashing write may be torn, and nothing after it happens.  The WAL's
single-write-plus-fsync commit groups are exactly what make this model
recoverable; ``tests/storage/test_crash.py`` sweeps the event counter
through every mutation and asserts pre-or-post recovery.

Three injection surfaces, coarsest to finest:

* :func:`inject` -- a context manager that wraps every file the storage
  layer opens while active (pager files, WAL files, including stores a
  ``compact`` creates mid-operation);
* :class:`FaultyPager` -- wraps one already-open pager (and its WAL);
* :class:`FaultyStore` -- logical-level wrapper crashing at the Nth
  ``put``/``delete``, for torn multi-key update tests above the pager.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .errors import StorageError
from .kvstore import KVStore


class CrashError(StorageError):
    """The simulated crash: all I/O after this point is dead."""


class FaultPlan:
    """Shared event counter + crash schedule for a set of wrapped files.

    ``crash_at`` is the 1-based event number to die on (``None`` = count
    only); ``tear_bytes`` keeps that many bytes of the fatal write (when
    it is a write); ``fail_fsync`` turns the fatal event's fsync -- or,
    when ``crash_at`` is None, every fsync -- into a failure.  The plan
    starts disarmed so a harness can open an index without consuming
    events; call :meth:`arm` right before the mutation under test.
    """

    def __init__(self, crash_at: int | None = None, *,
                 tear_bytes: int = 0, fail_fsync: bool = False) -> None:
        self.crash_at = crash_at
        self.tear_bytes = tear_bytes
        self.fail_fsync = fail_fsync
        self.events = 0
        self.armed = False
        self.crashed = False
        self.log: list[tuple[str, str, int]] = []

    def arm(self) -> None:
        self.events = 0
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def _tick(self, kind: str, role: str, size: int) -> bool:
        """Count one event; True when this event is the crash point."""
        if not self.armed or self.crashed:
            return False
        self.events += 1
        self.log.append((kind, role, size))
        return self.crash_at is not None and self.events >= self.crash_at

    def _die(self) -> None:
        self.crashed = True
        raise CrashError(f"injected crash at event {self.events}")


class FaultyFile:
    """File wrapper routing writes/fsyncs through a :class:`FaultPlan`.

    Reads, seeks and closes pass straight through (closing flushes the
    buffered layer -- pre-crash writes survive a process kill).  After
    the plan has crashed, every further write or fsync raises again:
    a dead process cannot keep writing.
    """

    def __init__(self, handle, plan: FaultPlan, role: str = "") -> None:
        self._file = handle
        self._plan = plan
        self._role = role

    def write(self, data: bytes) -> int:
        plan = self._plan
        if plan.crashed and plan.armed:
            raise CrashError("write after simulated crash")
        if plan._tick("write", self._role, len(data)):
            torn = data[:max(0, min(plan.tear_bytes, len(data) - 1))]
            if torn:
                self._file.write(torn)
            self._file.flush()
            plan._die()
        return self._file.write(data)

    def truncate(self, size: int | None = None) -> int:
        plan = self._plan
        if plan.crashed and plan.armed:
            raise CrashError("truncate after simulated crash")
        if plan._tick("truncate", self._role, size or 0):
            plan._die()
        return self._file.truncate() if size is None \
            else self._file.truncate(size)

    def fsync(self) -> None:
        plan = self._plan
        if plan.crashed and plan.armed:
            raise CrashError("fsync after simulated crash")
        fatal = plan._tick("fsync", self._role, 0)
        if fatal or (plan.armed and plan.fail_fsync
                     and plan.crash_at is None):
            plan._die()
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- passthrough -------------------------------------------------------

    def read(self, size: int = -1) -> bytes:
        return self._file.read(size)

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._file.seek(offset, whence)

    def tell(self) -> int:
        return self._file.tell()

    def flush(self) -> None:
        self._file.flush()

    def fileno(self) -> int:
        return self._file.fileno()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def close(self) -> None:
        self._file.close()


#: Active plan installed by :func:`inject`; the pager/WAL open path asks
#: :func:`wrap_file` so stores created *during* a faulted operation (a
#: compact's fresh destination) are wrapped too.
_ACTIVE_PLAN: FaultPlan | None = None


def wrap_file(handle, role: str = ""):
    """Wrap ``handle`` with the active plan, if fault injection is on."""
    if _ACTIVE_PLAN is None:
        return handle
    return FaultyFile(handle, _ACTIVE_PLAN, role)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Route every storage file opened in this block through ``plan``."""
    global _ACTIVE_PLAN
    if _ACTIVE_PLAN is not None:
        raise StorageError("fault injection is not reentrant")
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = None


class FaultyPager:
    """Instrument one open pager (and its WAL) with a fault plan.

    For targeted unit tests where the store is already open; the sweep
    harness prefers :func:`inject`, which also catches files opened
    mid-operation.
    """

    def __init__(self, pager, plan: FaultPlan) -> None:
        self.pager = pager
        self.plan = plan
        pager._file = FaultyFile(pager._file, plan, role="pager")
        wal = getattr(pager, "_wal", None)
        if wal is not None:
            wal._file = FaultyFile(wal._file, plan, role="wal")

    def __getattr__(self, name: str):
        return getattr(self.pager, name)


class FaultyStore(KVStore):
    """Crash a wrapped store at the Nth logical mutation.

    Coarser than the file-level plan: ``crash_at`` counts ``put`` and
    ``delete`` calls, so a multi-key logical update (an engine insert)
    can be torn *between* store operations without reasoning about page
    layouts.  Reads pass through; after the crash every operation
    raises.
    """

    def __init__(self, base: KVStore, *, crash_at: int | None = None) -> None:
        super().__init__()
        self._base = base
        self.crash_at = crash_at
        self.mutations = 0
        self.crashed = False

    @property
    def base(self) -> KVStore:
        return self._base

    def _mutate(self) -> None:
        if self.crashed:
            raise CrashError("mutation after simulated crash")
        self.mutations += 1
        if self.crash_at is not None and self.mutations >= self.crash_at:
            self.crashed = True
            raise CrashError(
                f"injected crash at mutation {self.mutations}")

    def get(self, key: bytes) -> bytes | None:
        if self.crashed:
            raise CrashError("read after simulated crash")
        return self._base.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._mutate()
        self._base.put(key, value)

    def delete(self, key: bytes) -> bool:
        self._mutate()
        return self._base.delete(key)

    def items(self):
        if self.crashed:
            raise CrashError("read after simulated crash")
        return self._base.items()

    def __len__(self) -> int:
        return len(self._base)

    def sync(self) -> None:
        if self.crashed:
            raise CrashError("sync after simulated crash")
        self._base.sync()

    def begin(self, label: bytes = b"") -> None:
        self._base.begin(label)

    def commit(self) -> None:
        if self.crashed:
            raise CrashError("commit after simulated crash")
        self._base.commit()

    def abort(self) -> None:
        self._base.abort()

    def wal_info(self) -> dict[str, object] | None:
        return self._base.wal_info()

    def close(self) -> None:
        self._base.close()
        super().close()


def drop_store(store: KVStore) -> None:
    """Release a crashed store's file descriptors without store writes.

    A crashed process never runs ``close()`` -- calling it would flush
    headers and checkpoint the WAL, un-crashing the simulation.  This
    closes the raw handles (buffered pre-crash bytes still reach the OS,
    matching the process-kill model) and marks the store closed.
    """
    base = getattr(store, "base", store)
    pager = getattr(base, "_pager", None)
    if pager is not None:
        wal = getattr(pager, "_wal", None)
        for handle in (pager._file, wal._file if wal is not None else None):
            if handle is None:
                continue
            try:
                handle.close()
            except (OSError, ValueError, CrashError):
                pass
    base._closed = True
    store._closed = True
