"""External-memory B+tree over the paged file.

Tokyo Cabinet offers both hash-table and B+tree indexes; the paper used the
hash table but we provide the B+tree as well so the storage-engine ablation
(experiment ST1 in DESIGN.md) can compare the two, and so range scans over
atoms are possible.

Node layouts::

    leaf:     [type u8=1][n u16][next_leaf u64] { [flag u8][klen][vlen][key][val] }*
    internal: [type u8=2][n u16][child0 u64]    { [klen][key][child u64] }*

Internal-node semantics: keys ``k_1 < ... < k_n`` partition children so that
child ``i`` holds keys in ``[k_i, k_{i+1})`` (child 0 holds keys below
``k_1``).  Values above the overflow threshold spill to overflow chains
(flag 2); deletion is lazy (no rebalancing), which is adequate for the
append-mostly index workloads of the paper.
"""

from __future__ import annotations

import struct
from bisect import bisect_right, insort
from typing import Iterator

from .codec import decode_varint, encode_varint
from .errors import CorruptionError, KeyTooLargeError
from .kvstore import KVStore, ReadOnlySnapshot
from .pager import DEFAULT_PAGE_SIZE, PageReader, Pager

_LEAF = 1
_INTERNAL = 2
_FLAG_INLINE = 0
_FLAG_OVERFLOW = 2
_OVERFLOW_REF = struct.Struct("<QI")
_META = struct.Struct("<QQ")  # root page, count
MAX_KEY = 512


class _Leaf:
    """Decoded leaf node: sorted (key, flag, stored_value) triples."""

    __slots__ = ("next_leaf", "entries")

    def __init__(self, next_leaf: int, entries: list[tuple[bytes, int, bytes]]):
        self.next_leaf = next_leaf
        self.entries = entries


class _Internal:
    """Decoded internal node: children[i] covers keys in [keys[i-1], keys[i])."""

    __slots__ = ("keys", "children")

    def __init__(self, keys: list[bytes], children: list[int]):
        self.keys = keys
        self.children = children


def _decode_node(raw: bytes) -> _Leaf | _Internal:
    """Decode one node page (shared by the live tree and snapshots)."""
    node_type = raw[0]
    n = struct.unpack_from("<H", raw, 1)[0]
    if node_type == _LEAF:
        next_leaf = struct.unpack_from("<Q", raw, 3)[0]
        pos = 11
        entries: list[tuple[bytes, int, bytes]] = []
        for _ in range(n):
            flag = raw[pos]
            pos += 1
            klen, pos = decode_varint(raw, pos)
            vlen, pos = decode_varint(raw, pos)
            key = raw[pos:pos + klen]
            pos += klen
            value = raw[pos:pos + vlen]
            pos += vlen
            entries.append((key, flag, value))
        return _Leaf(next_leaf, entries)
    if node_type == _INTERNAL:
        child0 = struct.unpack_from("<Q", raw, 3)[0]
        pos = 11
        keys: list[bytes] = []
        children = [child0]
        for _ in range(n):
            klen, pos = decode_varint(raw, pos)
            keys.append(raw[pos:pos + klen])
            pos += klen
            children.append(struct.unpack_from("<Q", raw, pos)[0])
            pos += 8
        return _Internal(keys, children)
    raise CorruptionError(f"unknown btree node type {node_type}")


class BPlusTree(KVStore):
    """Disk B+tree implementing the :class:`KVStore` interface."""

    def __init__(self, path: str, *, create: bool = False,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 wal: bool = True, use_mmap: bool = True,
                 wal_factory=None) -> None:
        super().__init__()
        if create:
            self._pager = Pager(path, page_size=page_size, create=True,
                                wal=wal, use_mmap=use_mmap,
                                wal_factory=wal_factory)
            self._payload = self._pager.page_size
            self._overflow_threshold = self._pager.page_size // 4
            self._root = self._pager.allocate()
            self._count = 0
            self._write_leaf(self._root, _Leaf(0, []))
            self._write_meta()
        else:
            self._pager = Pager(path, wal=wal, use_mmap=use_mmap,
                                wal_factory=wal_factory)
            meta = self._pager.meta
            if len(meta) < _META.size:
                raise CorruptionError("btree metadata missing")
            self._root, self._count = _META.unpack(meta[:_META.size])
        self._payload = self._pager.page_size
        self._overflow_threshold = self._pager.page_size // 4

    # -- node (de)serialization ------------------------------------------------

    def _write_meta(self) -> None:
        self._pager.set_meta(_META.pack(self._root, self._count))

    def reload_meta(self) -> None:
        """Re-read the root/count from the pager (replica replay)."""
        meta = self._pager.meta
        if len(meta) < _META.size:
            raise CorruptionError("btree metadata missing")
        self._root, self._count = _META.unpack(meta[:_META.size])

    def _read_node(self, page_id: int) -> _Leaf | _Internal:
        raw = self._pager.read(page_id)
        self.stats.page_reads += 1
        return _decode_node(raw)

    def _leaf_bytes(self, leaf: _Leaf) -> bytes:
        out = bytearray()
        out.append(_LEAF)
        out += struct.pack("<H", len(leaf.entries))
        out += struct.pack("<Q", leaf.next_leaf)
        for key, flag, value in leaf.entries:
            out.append(flag)
            out += encode_varint(len(key))
            out += encode_varint(len(value))
            out += key
            out += value
        return bytes(out)

    def _internal_bytes(self, node: _Internal) -> bytes:
        out = bytearray()
        out.append(_INTERNAL)
        out += struct.pack("<H", len(node.keys))
        out += struct.pack("<Q", node.children[0])
        for key, child in zip(node.keys, node.children[1:]):
            out += encode_varint(len(key))
            out += key
            out += struct.pack("<Q", child)
        return bytes(out)

    def _write_leaf(self, page_id: int, leaf: _Leaf) -> bytes | None:
        raw = self._leaf_bytes(leaf)
        if len(raw) > self._payload:
            return raw
        self._pager.write(page_id, raw)
        self.stats.page_writes += 1
        return None

    def _write_internal(self, page_id: int, node: _Internal) -> bytes | None:
        raw = self._internal_bytes(node)
        if len(raw) > self._payload:
            return raw
        self._pager.write(page_id, raw)
        self.stats.page_writes += 1
        return None

    # -- search ------------------------------------------------------------------

    def _descend(self, key: bytes) -> tuple[list[tuple[int, _Internal]], int, _Leaf]:
        """Walk to the leaf for ``key``; returns (ancestor stack, leaf id, leaf)."""
        stack: list[tuple[int, _Internal]] = []
        page_id = self._root
        node = self._read_node(page_id)
        while isinstance(node, _Internal):
            stack.append((page_id, node))
            index = bisect_right(node.keys, key)
            page_id = node.children[index]
            node = self._read_node(page_id)
        return stack, page_id, node

    def _resolve(self, flag: int, stored: bytes) -> bytes:
        if flag == _FLAG_OVERFLOW:
            head, length = _OVERFLOW_REF.unpack(stored)
            return self._pager.read_overflow(head, length)
        return stored

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        _stack, _leaf_id, leaf = self._descend(key)
        for rec_key, flag, stored in leaf.entries:
            if rec_key == key:
                value = self._resolve(flag, stored)
                self.stats.hits += 1
                self.stats.bytes_read += len(value)
                return value
        self.stats.misses += 1
        return None

    # -- insertion ---------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self.stats.bytes_written += len(value)
        if len(key) > MAX_KEY:
            raise KeyTooLargeError(f"key of {len(key)} bytes exceeds {MAX_KEY}")
        if len(value) > self._overflow_threshold:
            head = self._pager.write_overflow(value)
            stored = _OVERFLOW_REF.pack(head, len(value))
            flag = _FLAG_OVERFLOW
        else:
            stored = value
            flag = _FLAG_INLINE
        stack, leaf_id, leaf = self._descend(key)
        replaced = False
        for index, (rec_key, old_flag, old_stored) in enumerate(leaf.entries):
            if rec_key == key:
                if old_flag == _FLAG_OVERFLOW:
                    ohead, olen = _OVERFLOW_REF.unpack(old_stored)
                    self._pager.free_overflow(ohead, olen)
                leaf.entries[index] = (key, flag, stored)
                replaced = True
                break
        if not replaced:
            insort(leaf.entries, (key, flag, stored))
            self._count += 1
        if self._write_leaf(leaf_id, leaf) is None:
            return
        self._split_leaf(stack, leaf_id, leaf)

    def _split_leaf(self, stack: list[tuple[int, _Internal]],
                    leaf_id: int, leaf: _Leaf) -> None:
        mid = len(leaf.entries) // 2
        right = _Leaf(leaf.next_leaf, leaf.entries[mid:])
        right_id = self._pager.allocate()
        left = _Leaf(right_id, leaf.entries[:mid])
        separator = right.entries[0][0]
        if self._write_leaf(right_id, right) is not None:
            raise CorruptionError("leaf half does not fit a page")
        if self._write_leaf(leaf_id, left) is not None:
            raise CorruptionError("leaf half does not fit a page")
        self._insert_separator(stack, separator, right_id)

    def _insert_separator(self, stack: list[tuple[int, _Internal]],
                          separator: bytes, right_id: int) -> None:
        while stack:
            page_id, node = stack.pop()
            index = bisect_right(node.keys, separator)
            node.keys.insert(index, separator)
            node.children.insert(index + 1, right_id)
            if self._write_internal(page_id, node) is None:
                self._write_meta()
                return
            mid = len(node.keys) // 2
            promote = node.keys[mid]
            right_node = _Internal(node.keys[mid + 1:], node.children[mid + 1:])
            left_node = _Internal(node.keys[:mid], node.children[:mid + 1])
            new_right = self._pager.allocate()
            if self._write_internal(new_right, right_node) is not None:
                raise CorruptionError("internal half does not fit a page")
            if self._write_internal(page_id, left_node) is not None:
                raise CorruptionError("internal half does not fit a page")
            separator, right_id = promote, new_right
        old_root = self._root
        new_root = self._pager.allocate()
        root = _Internal([separator], [old_root, right_id])
        if self._write_internal(new_root, root) is not None:
            raise CorruptionError("fresh root does not fit a page")
        self._root = new_root
        self._write_meta()

    # -- deletion (lazy) --------------------------------------------------------

    def delete(self, key: bytes) -> bool:
        self._check_open()
        self.stats.deletes += 1
        _stack, leaf_id, leaf = self._descend(key)
        for index, (rec_key, flag, stored) in enumerate(leaf.entries):
            if rec_key == key:
                if flag == _FLAG_OVERFLOW:
                    head, length = _OVERFLOW_REF.unpack(stored)
                    self._pager.free_overflow(head, length)
                del leaf.entries[index]
                if self._write_leaf(leaf_id, leaf) is not None:
                    raise CorruptionError("leaf grew on delete")
                self._count -= 1
                self._write_meta()
                return True
        return False

    # -- iteration ----------------------------------------------------------------

    def _leftmost_leaf(self) -> tuple[int, _Leaf]:
        page_id = self._root
        node = self._read_node(page_id)
        while isinstance(node, _Internal):
            page_id = node.children[0]
            node = self._read_node(page_id)
        return page_id, node

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        _page_id, leaf = self._leftmost_leaf()
        while True:
            for key, flag, stored in leaf.entries:
                yield bytes(key), self._resolve(flag, stored)
            if not leaf.next_leaf:
                return
            node = self._read_node(leaf.next_leaf)
            if not isinstance(node, _Leaf):
                raise CorruptionError("leaf chain points at internal node")
            leaf = node

    def range(self, start: bytes, end: bytes | None = None
              ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate pairs with ``start <= key`` and, if given, ``key < end``."""
        self._check_open()
        _stack, _leaf_id, leaf = self._descend(start)
        while True:
            for key, flag, stored in leaf.entries:
                if key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield bytes(key), self._resolve(flag, stored)
            if not leaf.next_leaf:
                return
            node = self._read_node(leaf.next_leaf)
            if not isinstance(node, _Leaf):
                raise CorruptionError("leaf chain points at internal node")
            leaf = node

    def __len__(self) -> int:
        self._check_open()
        return self._count

    def sync(self) -> None:
        self._check_open()
        self._write_meta()
        self._pager.sync()

    # -- transactions ------------------------------------------------------

    def begin(self, label: bytes = b"") -> None:
        self._check_open()
        if self._pager.txn_depth == 0:
            # Keep the header pre-image current before the snapshot (bulk
            # loads defer meta writes to sync/close).
            self._write_meta()
        self._pager.begin(label)

    def commit(self) -> None:
        self._check_open()
        if self._pager.txn_depth == 1:
            self._write_meta()  # root/count land inside the commit group
        self._pager.commit()

    def abort(self) -> None:
        self._check_open()
        if self._pager.txn_depth == 0:
            return
        self._pager.abort()
        self._root, self._count = _META.unpack(
            self._pager.meta[:_META.size])

    def wal_info(self) -> dict[str, object] | None:
        return self._pager.wal_info()

    @property
    def pager(self):
        return self._pager

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> KVStore:
        self._check_open()
        return BTreeSnapshot(self)

    def mvcc_info(self) -> dict[str, object]:
        return self._pager.mvcc_info()

    def current_version(self) -> int:
        return self._pager.current_version()

    def close(self) -> None:
        if not self._closed:
            self._write_meta()
            self._pager.close()
        super().close()


class BTreeSnapshot(ReadOnlySnapshot):
    """Read-only view of a :class:`BPlusTree` pinned at one pager version.

    The root pointer and count come from the versioned header page, and
    every node / overflow read goes through the pinned
    :class:`~repro.storage.pager.PageReader` -- so the traversal is
    immune to concurrent splits, frees, and page reuse by later commits.
    """

    def __init__(self, tree: BPlusTree) -> None:
        super().__init__()
        self._reader: PageReader = tree._pager.reader()
        self.version = self._reader.version
        self.stats = tree.stats
        meta = self._reader.meta
        if len(meta) < _META.size:
            self._reader.close()
            raise CorruptionError("btree metadata missing in snapshot")
        self._root, self._count = _META.unpack(meta[:_META.size])
        self._released = False

    def _read_node(self, page_id: int) -> _Leaf | _Internal:
        raw = self._reader.read(page_id)
        self.stats.page_reads += 1
        return _decode_node(raw)

    def _resolve(self, flag: int, stored: bytes) -> bytes:
        if flag == _FLAG_OVERFLOW:
            head, length = _OVERFLOW_REF.unpack(stored)
            return self._reader.read_overflow(head, length)
        return stored

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        page_id = self._root
        node = self._read_node(page_id)
        while isinstance(node, _Internal):
            page_id = node.children[bisect_right(node.keys, key)]
            node = self._read_node(page_id)
        for rec_key, flag, stored in node.entries:
            if rec_key == key:
                value = self._resolve(flag, stored)
                self.stats.hits += 1
                self.stats.bytes_read += len(value)
                return value
        self.stats.misses += 1
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        node = self._read_node(self._root)
        while isinstance(node, _Internal):
            node = self._read_node(node.children[0])
        leaf = node
        while True:
            for key, flag, stored in leaf.entries:
                yield bytes(key), self._resolve(flag, stored)
            if not leaf.next_leaf:
                return
            nxt = self._read_node(leaf.next_leaf)
            if not isinstance(nxt, _Leaf):
                raise CorruptionError("leaf chain points at internal node")
            leaf = nxt

    def __len__(self) -> int:
        self._check_open()
        return self._count

    def close(self) -> None:
        if not self._released:
            self._released = True
            self._reader.close()
        super().close()
