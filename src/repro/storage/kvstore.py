"""The key-value store interface and the in-memory reference implementation.

The paper's implementation uses Tokyo Cabinet's external-memory hash table as
the storage engine for the inverted file (Section 5.1), with the engine's own
caching explicitly disabled.  We reproduce that design point with a small
family of interchangeable stores:

* :class:`MemoryKVStore` -- a dict-backed store (values still pass through
  the byte codecs, so the access pattern matches the disk stores),
* :class:`~repro.storage.diskhash.DiskHashTable` -- external hash table,
* :class:`~repro.storage.btree.BPlusTree` -- external B+tree.

All stores map ``bytes`` keys to ``bytes`` values and expose the same
mapping-flavored API, plus :class:`AccessStats` counters that the caching
experiments (Section 3.3 / Experiments 1-3) read.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .errors import StoreClosedError


@dataclass
class AccessStats:
    """Operation counters maintained by every store.

    ``bytes_read``/``bytes_written`` count value payload traffic, which is
    the quantity the inverted-list cache of Section 3.3 avoids.
    """

    gets: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    page_reads: int = 0
    page_writes: int = 0

    def reset(self) -> None:
        """Zero all counters in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dict (for reports)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


class KVStore(ABC):
    """Abstract byte-oriented key-value store.

    Concrete stores must implement the five primitive operations; the
    convenience dunder methods are derived.  Stores are context managers and
    close their underlying resources on exit.
    """

    def __init__(self) -> None:
        self.stats = AccessStats()
        self._closed = False

    # -- primitives -------------------------------------------------------

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key`` or ``None`` when absent."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or replace the value for ``key``."""

    @abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when a record was removed."""

    @abstractmethod
    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate over all ``(key, value)`` pairs (unspecified order)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live records."""

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release resources; subsequent operations raise StoreClosedError."""
        self._closed = True

    def sync(self) -> None:
        """Flush buffered writes to durable storage (no-op by default)."""

    # -- transactions ------------------------------------------------------

    def begin(self, label: bytes = b"") -> None:
        """Open (or nest into) an atomic write group (no-op by default).

        Disk stores route the group through their write-ahead log; the
        in-memory store has nothing to make durable, so the default
        implementation accepts and ignores the calls -- callers can wrap
        mutations in :meth:`transaction` against any backend.
        """

    def commit(self) -> None:
        """Durably commit the innermost write group (no-op by default)."""

    def abort(self) -> None:
        """Discard the current write group unapplied (no-op by default)."""

    @contextmanager
    def transaction(self, label: bytes = b"") -> Iterator["KVStore"]:
        """Run a block of mutations as one atomic, recoverable group.

        Commits on normal exit, aborts if the block raises.  A failure
        *inside commit itself* (e.g. an injected crash) is not followed
        by an abort: the group may already be in the log, and recovery
        on reopen -- not rollback -- decides its fate.
        """
        self.begin(label)
        committed = False
        try:
            yield self
            committed = True
            self.commit()
        except BaseException:
            if not committed:
                self.abort()
            raise

    def wal_info(self) -> dict[str, object] | None:
        """Write-ahead-log state, or ``None`` for non-journaled stores."""
        return None

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    # -- derived conveniences ----------------------------------------------

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __getitem__(self, key: bytes) -> bytes:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def __delitem__(self, key: bytes) -> None:
        if not self.delete(key):
            raise KeyError(key)

    def keys(self) -> Iterator[bytes]:
        for key, _ in self.items():
            yield key

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemoryKVStore(KVStore):
    """Dict-backed store.

    Values are stored as the raw bytes handed in, so the cost profile seen
    by the index layer (encode on write, decode on read) is identical to the
    disk stores minus the I/O -- which makes the caching optimization
    measurable on a level playing field.
    """

    def __init__(self) -> None:
        super().__init__()
        self._data: dict[bytes, bytes] = {}

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
            self.stats.bytes_read += len(value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self.stats.bytes_written += len(value)
        self._data[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> bool:
        self._check_open()
        self.stats.deletes += 1
        return self._data.pop(key, None) is not None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        yield from list(self._data.items())

    def __len__(self) -> int:
        self._check_open()
        return len(self._data)
