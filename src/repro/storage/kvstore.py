"""The key-value store interface and the in-memory reference implementation.

The paper's implementation uses Tokyo Cabinet's external-memory hash table as
the storage engine for the inverted file (Section 5.1), with the engine's own
caching explicitly disabled.  We reproduce that design point with a small
family of interchangeable stores:

* :class:`MemoryKVStore` -- a dict-backed store (values still pass through
  the byte codecs, so the access pattern matches the disk stores),
* :class:`~repro.storage.diskhash.DiskHashTable` -- external hash table,
* :class:`~repro.storage.btree.BPlusTree` -- external B+tree.

All stores map ``bytes`` keys to ``bytes`` values and expose the same
mapping-flavored API, plus :class:`AccessStats` counters that the caching
experiments (Section 3.3 / Experiments 1-3) read.

Snapshots: :meth:`KVStore.snapshot` opens a read-only view pinned at the
store's current committed version.  The disk stores implement it over
the pager's page-level copy-on-write history; :class:`MemoryKVStore`
keeps an equivalent key-level pre-image history here.  The default
implementation is an unpinned live passthrough so wrappers without MVCC
support (fault-injection stores, test doubles) keep working -- callers
can detect real snapshot support via :meth:`KVStore.mvcc_info`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .errors import StorageError, StoreClosedError


@dataclass
class AccessStats:
    """Operation counters maintained by every store.

    ``bytes_read``/``bytes_written`` count value payload traffic, which is
    the quantity the inverted-list cache of Section 3.3 avoids.
    """

    gets: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    page_reads: int = 0
    page_writes: int = 0

    def reset(self) -> None:
        """Zero all counters in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dict (for reports)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


class KVStore(ABC):
    """Abstract byte-oriented key-value store.

    Concrete stores must implement the five primitive operations; the
    convenience dunder methods are derived.  Stores are context managers and
    close their underlying resources on exit.
    """

    def __init__(self) -> None:
        self.stats = AccessStats()
        self._closed = False

    # -- primitives -------------------------------------------------------

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key`` or ``None`` when absent."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or replace the value for ``key``."""

    @abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when a record was removed."""

    @abstractmethod
    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate over all ``(key, value)`` pairs (unspecified order)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live records."""

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release resources; subsequent operations raise StoreClosedError."""
        self._closed = True

    def sync(self) -> None:
        """Flush buffered writes to durable storage (no-op by default)."""

    # -- transactions ------------------------------------------------------

    def begin(self, label: bytes = b"") -> None:
        """Open (or nest into) an atomic write group (no-op by default).

        Disk stores route the group through their write-ahead log; the
        in-memory store buffers the group and applies it atomically on
        commit.  The default implementation accepts and ignores the
        calls -- callers can wrap mutations in :meth:`transaction`
        against any backend.
        """

    def commit(self) -> None:
        """Durably commit the innermost write group (no-op by default)."""

    def abort(self) -> None:
        """Discard the current write group unapplied (no-op by default)."""

    @contextmanager
    def transaction(self, label: bytes = b"") -> Iterator["KVStore"]:
        """Run a block of mutations as one atomic, recoverable group.

        Commits on normal exit, aborts if the block raises.  A failure
        *inside commit itself* (e.g. an injected crash) is not followed
        by an abort: the group may already be in the log, and recovery
        on reopen -- not rollback -- decides its fate.
        """
        self.begin(label)
        committed = False
        try:
            yield self
            committed = True
            self.commit()
        except BaseException:
            if not committed:
                self.abort()
            raise

    def wal_info(self) -> dict[str, object] | None:
        """Write-ahead-log state, or ``None`` for non-journaled stores."""
        return None

    @property
    def pager(self):
        """The paged-file manager under this store, or ``None``.

        Replication replays shipped commit groups at the page level, so
        the tier needs the raw pager; memory stores have none.
        """
        return None

    def reload_meta(self) -> None:
        """Refresh in-memory state from persisted metadata.

        No-op by default.  Paged stores re-read their directory/root and
        counters after a replicated apply rewrote pages underneath them.
        """

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "KVStore":
        """Open a read-only view pinned at the current committed version.

        Stores with MVCC support return a view that keeps observing the
        pinned version while later commits land; the view must be
        :meth:`close`\\ d to release its pin.  The default is a live
        passthrough (no isolation) so non-versioned wrappers still
        compose; use :meth:`mvcc_info` to tell the two apart.
        """
        return _LiveView(self)

    def mvcc_info(self) -> dict[str, object] | None:
        """Version bookkeeping for stats, or ``None`` without MVCC."""
        return None

    def current_version(self) -> int | None:
        """The last committed version, or ``None`` without MVCC.

        Unlike :meth:`mvcc_info` this is a hot-path accessor: readers
        call it per query to decide whether a cached snapshot is still
        current, so implementations must keep it near-free (an attribute
        read, not a locked dict build).
        """
        return None

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    # -- derived conveniences ----------------------------------------------

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __getitem__(self, key: bytes) -> bytes:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def __delitem__(self, key: bytes) -> None:
        if not self.delete(key):
            raise KeyError(key)

    def keys(self) -> Iterator[bytes]:
        for key, _ in self.items():
            yield key

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ReadOnlySnapshot(KVStore):
    """Base class for snapshot views: mutations always raise.

    Subclasses implement the read side; ``stats`` is shared with the
    backing store so cache-experiment counters keep aggregating in one
    place no matter how many snapshots served the reads.
    """

    #: The pinned version (``0`` for passthrough views).
    version: int = 0

    def put(self, key: bytes, value: bytes) -> None:
        raise StorageError("snapshot views are read-only")

    def delete(self, key: bytes) -> bool:
        raise StorageError("snapshot views are read-only")

    def begin(self, label: bytes = b"") -> None:
        raise StorageError("snapshot views are read-only")

    def sync(self) -> None:  # nothing buffered, nothing to flush
        pass


class _LiveView(ReadOnlySnapshot):
    """Unpinned read passthrough for stores without MVCC support."""

    def __init__(self, base: KVStore) -> None:
        super().__init__()
        self._base = base
        self.stats = base.stats
        self.version = 0

    def get(self, key: bytes) -> bytes | None:
        return self._base.get(key)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return self._base.items()

    def __len__(self) -> int:
        return len(self._base)

    def wal_info(self) -> dict[str, object] | None:
        return self._base.wal_info()


class MemoryKVStore(KVStore):
    """Dict-backed store.

    Values are stored as the raw bytes handed in, so the cost profile seen
    by the index layer (encode on write, decode on read) is identical to the
    disk stores minus the I/O -- which makes the caching optimization
    measurable on a level playing field.

    Transactions buffer their writes and apply them atomically at the
    outermost commit, bumping the store version; :meth:`snapshot` pins a
    version and keeps serving it from a key-level pre-image history
    (the in-memory analogue of the pager's page-level copy-on-write),
    garbage-collected as pins drain.
    """

    def __init__(self) -> None:
        super().__init__()
        self._data: dict[bytes, bytes] = {}
        self._lock = threading.RLock()
        self._version = 0
        self._pins: dict[int, int] = {}
        # key -> [(as_of_version, value-or-None)] ascending; None = absent.
        self._history: dict[bytes, list[tuple[int, bytes | None]]] = {}
        self._txn_depth = 0
        # key -> buffered value (None = buffered delete), insertion order.
        self._txn_ops: dict[bytes, bytes | None] = {}

    # -- primitives --------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        with self._lock:
            key = bytes(key)
            if self._txn_depth and key in self._txn_ops:
                value = self._txn_ops[key]
            else:
                value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
            self.stats.bytes_read += len(value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self.stats.bytes_written += len(value)
        with self._lock:
            key, value = bytes(key), bytes(value)
            if self._txn_depth:
                self._txn_ops[key] = value
                return
            if self._pins:
                self._capture(key)
            self._data[key] = value

    def delete(self, key: bytes) -> bool:
        self._check_open()
        self.stats.deletes += 1
        with self._lock:
            key = bytes(key)
            if self._txn_depth:
                present = (self._txn_ops[key] is not None
                           if key in self._txn_ops
                           else key in self._data)
                if not present:
                    return False
                self._txn_ops[key] = None
                return True
            if key not in self._data:
                return False
            if self._pins:
                self._capture(key)
            del self._data[key]
            return True

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        with self._lock:
            if self._txn_depth:
                merged = dict(self._data)
                for key, value in self._txn_ops.items():
                    if value is None:
                        merged.pop(key, None)
                    else:
                        merged[key] = value
                snapshot = list(merged.items())
            else:
                snapshot = list(self._data.items())
        yield from snapshot

    def __len__(self) -> int:
        self._check_open()
        with self._lock:
            if not self._txn_depth:
                return len(self._data)
            return sum(1 for _ in self.items())

    # -- transactions ------------------------------------------------------

    def begin(self, label: bytes = b"") -> None:
        self._check_open()
        with self._lock:
            if self._txn_depth == 0:
                self._txn_ops = {}
            self._txn_depth += 1

    def commit(self) -> None:
        self._check_open()
        with self._lock:
            if self._txn_depth == 0:
                raise StorageError("commit outside a transaction")
            if self._txn_depth > 1:
                self._txn_depth -= 1
                return
            ops = self._txn_ops
            self._txn_depth = 0
            self._txn_ops = {}
            if not ops:
                return
            # Capture pre-images, apply the batch, and advance the
            # version in one critical section: a reader pinning
            # concurrently sees either none of the group or all of it.
            if self._pins:
                for key in ops:
                    self._capture(key)
            for key, value in ops.items():
                if value is None:
                    self._data.pop(key, None)
                else:
                    self._data[key] = value
            self._version += 1

    def abort(self) -> None:
        with self._lock:
            if self._txn_depth == 0:
                return
            self._txn_depth = 0
            self._txn_ops = {}

    # -- snapshots ---------------------------------------------------------

    def pin(self) -> int:
        with self._lock:
            version = self._version
            self._pins[version] = self._pins.get(version, 0) + 1
            return version

    def unpin(self, version: int) -> None:
        with self._lock:
            count = self._pins.get(version, 0)
            if count > 1:
                self._pins[version] = count - 1
                return
            self._pins.pop(version, None)
            # Sweep the pre-image history only when the oldest-pin floor
            # actually moved: snapshot-per-query readers unpin thousands
            # of times a second, and an unconditional O(history) sweep
            # under the store lock starves writers.
            if not self._pins:
                self._history.clear()
            elif version < min(self._pins):
                self._gc_history()

    def _capture(self, key: bytes) -> None:
        """Record the live value for pinned readers (lock held)."""
        entries = self._history.setdefault(key, [])
        if entries and entries[-1][0] >= self._version:
            return
        entries.append((self._version, self._data.get(key)))

    def _gc_history(self) -> None:
        if not self._pins:
            if self._history:
                self._history.clear()
            return
        oldest = min(self._pins)
        for key in list(self._history):
            kept = [entry for entry in self._history[key]
                    if entry[0] >= oldest]
            if kept:
                self._history[key] = kept
            else:
                del self._history[key]

    def get_at(self, key: bytes, version: int) -> bytes | None:
        """The value of ``key`` as of pinned ``version``.

        Lock-free optimistic read: snapshot readers call this for every
        key they touch, and taking the store lock here convoys with the
        writer (a barging RLock plus the GIL starves ``put`` almost
        completely under reader pressure).  Safe without the lock
        because history entries are immutable once appended and a commit
        captures pre-images *before* applying its ops: a scan hit is
        always the correct pre-image, and a scan miss is validated by
        re-reading the store version -- if a commit interleaved, retry.
        """
        key = bytes(key)
        while True:
            start = self._version
            entries = self._history.get(key)
            if entries:
                for as_of, value in entries:
                    if as_of >= version:
                        return value
            value = self._data.get(key)
            if self._version == start:
                return value

    def items_at(self, version: int) -> list[tuple[bytes, bytes]]:
        """All live ``(key, value)`` pairs as of pinned ``version``."""
        with self._lock:
            merged = dict(self._data)
            for key, entries in self._history.items():
                for as_of, value in entries:
                    if as_of >= version:
                        if value is None:
                            merged.pop(key, None)
                        else:
                            merged[key] = value
                        break
            return list(merged.items())

    def snapshot(self) -> KVStore:
        self._check_open()
        return MemorySnapshot(self)

    def current_version(self) -> int:
        # Plain attribute read: commits publish the bump last, so a
        # racing reader sees either the old or the new version, both of
        # which are servable snapshots.
        return self._version

    def mvcc_info(self) -> dict[str, object]:
        with self._lock:
            return {
                "snapshot_version": self._version,
                "oldest_pinned_version": (min(self._pins)
                                          if self._pins else None),
                "pinned_readers": sum(self._pins.values()),
                "history_pages": len(self._history),
            }


class MemorySnapshot(ReadOnlySnapshot):
    """Read-only view of a :class:`MemoryKVStore` pinned at one version."""

    def __init__(self, base: MemoryKVStore) -> None:
        super().__init__()
        self._base = base
        self.version = base.pin()
        self.stats = base.stats
        self._released = False

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        value = self._base.get_at(key, self.version)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
            self.stats.bytes_read += len(value)
        return value

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        yield from self._base.items_at(self.version)

    def __len__(self) -> int:
        self._check_open()
        return len(self._base.items_at(self.version))

    def close(self) -> None:
        if not self._released:
            self._released = True
            self._base.unpin(self.version)
        super().close()
