"""Paged-file manager underlying the disk-resident stores.

Provides fixed-size page allocation over a single file, a free list for
recycling pages, a small client metadata area in the header, and overflow
chains for values larger than a page.  Both the external hash table and the
B+tree are built on top of this class, mirroring the role Tokyo Cabinet's
low-level file layer played in the paper's implementation.

File layout::

    page 0:  header  [magic 4B][version u16][page_size u32][n_pages u64]
                     [free_head u64][meta_len u16][meta bytes ...]
    page 1+: client pages / free pages / overflow pages

Free pages store the id of the next free page in their first 8 bytes.
Overflow pages store ``[next u64][chunk...]``.
"""

from __future__ import annotations

import os
import struct

from .errors import CorruptionError, PageBoundsError, StorageError

MAGIC = b"NCPG"
VERSION = 1
DEFAULT_PAGE_SIZE = 4096
_HEADER_FMT = "<4sHIQQH"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
#: Maximum client metadata stored in the header page.
MAX_META = 1024


class Pager:
    """Fixed-size page manager over one file descriptor."""

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE,
                 create: bool = False) -> None:
        self.path = path
        if create:
            self._file = open(path, "w+b")
            self.page_size = page_size
            self.n_pages = 1
            self._free_head = 0
            self._meta = b""
            self._write_header()
        else:
            if not os.path.exists(path):
                raise StorageError(f"no such store file: {path}")
            self._file = open(path, "r+b")
            self._read_header()
        self.page_reads = 0
        self.page_writes = 0

    # -- header -------------------------------------------------------------

    def _write_header(self) -> None:
        header = struct.pack(
            _HEADER_FMT, MAGIC, VERSION, self.page_size, self.n_pages,
            self._free_head, len(self._meta),
        ) + self._meta
        if len(header) > max(self.page_size, _HEADER_SIZE + MAX_META):
            raise StorageError("header metadata too large")
        self._file.seek(0)
        self._file.write(header.ljust(self.page_size, b"\x00"))

    def _read_header(self) -> None:
        self._file.seek(0)
        prefix = self._file.read(_HEADER_SIZE)
        if len(prefix) < _HEADER_SIZE:
            raise CorruptionError("store file too small for header")
        magic, version, page_size, n_pages, free_head, meta_len = struct.unpack(
            _HEADER_FMT, prefix)
        if magic != MAGIC:
            raise CorruptionError(f"bad magic in {self.path!r}")
        if version != VERSION:
            raise CorruptionError(f"unsupported store version {version}")
        self.page_size = page_size
        self.n_pages = n_pages
        self._free_head = free_head
        self._meta = self._file.read(meta_len)

    @property
    def meta(self) -> bytes:
        """Client metadata blob stored in the header page."""
        return self._meta

    def set_meta(self, meta: bytes) -> None:
        """Persist up to :data:`MAX_META` bytes of client metadata."""
        if len(meta) > MAX_META:
            raise StorageError(f"metadata larger than {MAX_META} bytes")
        self._meta = bytes(meta)
        self._write_header()

    # -- page primitives ------------------------------------------------------

    def allocate(self) -> int:
        """Return the id of a fresh zeroed page (recycled when possible)."""
        if self._free_head:
            page_id = self._free_head
            raw = self.read(page_id)
            self._free_head = struct.unpack_from("<Q", raw, 0)[0]
            self.write(page_id, b"")
            self._write_header()
            return page_id
        page_id = self.n_pages
        self.n_pages += 1
        self.write(page_id, b"")
        self._write_header()
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        self._check_bounds(page_id)
        self.write(page_id, struct.pack("<Q", self._free_head))
        self._free_head = page_id
        self._write_header()

    def read(self, page_id: int) -> bytes:
        """Read a full page; short files are padded with zero bytes."""
        self._check_bounds(page_id)
        self.page_reads += 1
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write ``data`` (padded/truncated to one page) at ``page_id``."""
        self._check_bounds(page_id)
        if len(data) > self.page_size:
            raise StorageError("page write larger than page size")
        self.page_writes += 1
        self._file.seek(page_id * self.page_size)
        self._file.write(data.ljust(self.page_size, b"\x00"))

    def _check_bounds(self, page_id: int) -> None:
        if page_id < 1 or page_id > self.n_pages:
            raise PageBoundsError(
                f"page {page_id} outside [1, {self.n_pages}]")

    # -- overflow chains ------------------------------------------------------

    def write_overflow(self, data: bytes) -> int:
        """Store ``data`` across a chain of overflow pages; returns head id."""
        chunk_size = self.page_size - 8
        chunks = [data[i:i + chunk_size] for i in range(0, len(data), chunk_size)]
        if not chunks:
            chunks = [b""]
        page_ids = [self.allocate() for _ in chunks]
        for index, chunk in enumerate(chunks):
            next_id = page_ids[index + 1] if index + 1 < len(page_ids) else 0
            self.write(page_ids[index], struct.pack("<Q", next_id) + chunk)
        return page_ids[0]

    def read_overflow(self, head_page: int, length: int) -> bytes:
        """Read ``length`` bytes back from an overflow chain."""
        out = bytearray()
        page_id = head_page
        while len(out) < length:
            if page_id == 0:
                raise CorruptionError("overflow chain ended early")
            raw = self.read(page_id)
            page_id = struct.unpack_from("<Q", raw, 0)[0]
            out += raw[8:8 + min(self.page_size - 8, length - len(out))]
        return bytes(out)

    def free_overflow(self, head_page: int, length: int) -> None:
        """Release every page of an overflow chain back to the free list."""
        chunk_size = self.page_size - 8
        remaining = max(length, 1)
        page_id = head_page
        while remaining > 0 and page_id:
            raw = self.read(page_id)
            next_id = struct.unpack_from("<Q", raw, 0)[0]
            self.free(page_id)
            page_id = next_id
            remaining -= chunk_size

    # -- lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """fsync the underlying file."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush the header and close the file."""
        if not self._file.closed:
            self._write_header()
            self._file.flush()
            self._file.close()
