"""Paged-file manager underlying the disk-resident stores.

Provides fixed-size page allocation over a single file, a free list for
recycling pages, a small client metadata area in the header, and overflow
chains for values larger than a page.  Both the external hash table and the
B+tree are built on top of this class, mirroring the role Tokyo Cabinet's
low-level file layer played in the paper's implementation.

File layout::

    page 0:  header  [magic 4B][version u16][page_size u32][n_pages u64]
                     [free_head u64][meta_len u16][meta bytes ...]
    page 1+: client pages / free pages / overflow pages

Free pages store the id of the next free page in their first 8 bytes.
Overflow pages store ``[next u64][chunk...]``.

Durability: when opened with ``wal=True`` (the default) a
:class:`~repro.storage.wal.WriteAheadLog` lives beside the store file at
``<path>-wal`` and the pager exposes page-level transactions
(:meth:`begin` / :meth:`commit` / :meth:`abort`).  Inside a transaction
every page write -- including the header, tracked as page 0 -- is
buffered in memory; :meth:`commit` logs the post-image of each dirty
page as one fsynced WAL group *before* any of them reaches the main
file.  :meth:`__init__` replays committed groups left by a crash and
discards a torn tail, so the store is always observed either wholly
pre- or wholly post-mutation.  Writes outside a transaction bypass the
log (bulk builds keep their unjournaled speed).

Snapshots (MVCC): every committed transaction advances a monotonically
increasing *version*.  A reader calls :meth:`pin` (usually via
:meth:`reader`) to fix a version and then reads pages with
:meth:`read_at`, which serves the page contents as of that version no
matter how many commits have landed since.  The mechanism is
copy-on-write at commit: while any version is pinned, the commit's
apply phase first captures the *pre-image* of every page it is about to
overwrite into an in-memory history keyed ``page_id -> [(as_of_version,
bytes), ...]``.  ``read_at(page, v)`` returns the first history entry
whose ``as_of`` is ``>= v`` and falls through to the live file
otherwise (an unmodified page is identical at every pinned version).
Unpinning garbage-collects history entries older than the oldest
remaining pin; with no pins the history is empty and commits copy
nothing.  Readers therefore never wait on a writer's WAL fsync: the
commit point (the log append + fsync) runs outside the page I/O lock,
which protects only the microsecond-scale in-memory apply phase.

Zero-copy reads (mmap): the committed prefix of the file is mapped
read-only (``use_mmap=True``, the default) and clean-page reads --
:meth:`read` outside a transaction and the file-fallback of
:meth:`read_at` -- slice the mapping without taking ``_io_lock`` at
all, so concurrent readers stop serializing on seek+read pairs.  The
file is opened unbuffered (``buffering=0``): every ``write()`` is a
straight syscall into the kernel page cache, which a ``MAP_SHARED``
mapping of the same file observes immediately, so a reader can never
see stale bytes that are still sitting in a userspace buffer.
:meth:`read_at` stays snapshot-correct without the lock because
commits capture pre-images *before* overwriting pages: after copying
from the mapping the reader re-probes the history, and any commit
that could have raced the copy has already published the pre-image
this reader needs.  The mapping covers whole pages only; reads past
it (the file grew) fall back to the locked path, and the pager remaps
after growing commits (plus a chunked heuristic for unjournaled bulk
loads).  Superseded mappings are dropped, not closed -- a racing
reader's local reference keeps the old map valid until the GC unmaps
it.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading

from .errors import CorruptionError, PageBoundsError, StorageError
from .faults import wrap_file
from .wal import (
    DEFAULT_CHECKPOINT_BYTES,
    WriteAheadLog,
    fsync_file,
    split_version_label,
    stamp_version_label,
)

MAGIC = b"NCPG"
VERSION = 1
DEFAULT_PAGE_SIZE = 4096
_HEADER_FMT = "<4sHIQQH"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
#: Maximum client metadata stored in the header page.
MAX_META = 1024
#: Dirty-map key for the header page inside a transaction.
_HEADER_PAGE = 0
#: Unjournaled growth (in pages) past the mapped region before a read
#: miss triggers a remap; keeps bulk loads from remapping per page.
_REMAP_CHUNK_PAGES = 64


def wal_path(path: str) -> str:
    """The write-ahead-log path paired with a store file path."""
    return path + "-wal"


def parse_header(raw: bytes) -> tuple[int, int, int, bytes]:
    """``(page_size, n_pages, free_head, meta)`` from a raw header page.

    Used by the replication tier to read a store's geometry out of a
    shipped (or pinned) copy of page 0 without opening a pager on it.
    """
    if len(raw) < _HEADER_SIZE:
        raise CorruptionError("short header page")
    magic, version, page_size, n_pages, free_head, meta_len = \
        struct.unpack_from(_HEADER_FMT, raw, 0)
    if magic != MAGIC:
        raise CorruptionError("bad store magic in header page")
    if version != VERSION:
        raise CorruptionError(f"unsupported store version {version}")
    return page_size, n_pages, free_head, \
        raw[_HEADER_SIZE:_HEADER_SIZE + meta_len]


class PageReader:
    """Read-only view of a paged file pinned at one version.

    Produced by :meth:`Pager.reader`; holds one pin on the pager's
    version and releases it on :meth:`close` (idempotent).  All reads go
    through :meth:`Pager.read_at`, so the view observes the file exactly
    as it was when the reader was opened, regardless of concurrent
    commits.
    """

    __slots__ = ("_pager", "version", "_released")

    def __init__(self, pager: "Pager", version: int) -> None:
        self._pager = pager
        self.version = version
        self._released = False

    @property
    def page_size(self) -> int:
        return self._pager.page_size

    @property
    def meta(self) -> bytes:
        """Client metadata as of the pinned version."""
        return self._pager.meta_at(self.version)

    def read(self, page_id: int) -> bytes:
        return self._pager.read_at(page_id, self.version)

    def read_overflow(self, head_page: int, length: int) -> bytes:
        """Versioned equivalent of :meth:`Pager.read_overflow`."""
        out = bytearray()
        page_id = head_page
        page_size = self._pager.page_size
        while len(out) < length:
            if page_id == 0:
                raise CorruptionError("overflow chain ended early")
            raw = self.read(page_id)
            page_id = struct.unpack_from("<Q", raw, 0)[0]
            out += raw[8:8 + min(page_size - 8, length - len(out))]
        return bytes(out)

    def close(self) -> None:
        if not self._released:
            self._released = True
            self._pager.unpin(self.version)

    def __enter__(self) -> "PageReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Pager:
    """Fixed-size page manager over one file descriptor."""

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE,
                 create: bool = False, *, wal: bool = True,
                 use_mmap: bool = True,
                 wal_factory=None) -> None:
        self.path = path
        # One file handle serves every page access; the reentrant lock
        # makes each seek+read / seek+write pair atomic so concurrent
        # readers never tear a page.  Commit durability (the WAL append
        # and fsync) happens *outside* this lock, so pinned readers only
        # ever wait for in-memory page copies, not for the disk.  Lock
        # order, outermost first: _commit_lock > _io_lock > _version_lock.
        self._io_lock = threading.RLock()
        self._commit_lock = threading.Lock()
        self._version_lock = threading.Lock()
        self._version = 0
        self._pins: dict[int, int] = {}
        self._history: dict[int, list[tuple[int, bytes]]] = {}
        self._wal: WriteAheadLog | None = None
        self._txn_depth = 0
        self._txn_label = b""
        self._dirty: dict[int, bytes] = {}
        self._txn_snapshot: tuple[int, int, bytes] | None = None
        self.recovered_groups = 0
        self.discarded_groups = 0
        self._mmap_enabled = use_mmap
        self._mmap: mmap.mmap | None = None
        self._mapped_pages = 0
        # Unbuffered: writes must reach the kernel page cache at the
        # syscall, so the read-only mapping is always coherent with them.
        # ``wal_factory(path, create=...)`` substitutes a WriteAheadLog
        # subclass -- the replication tier installs its sequence-stamped
        # ReplicationLog here without the pager knowing the difference.
        make_wal = wal_factory if wal_factory is not None else WriteAheadLog
        if create:
            self._file = wrap_file(open(path, "w+b", buffering=0),
                                   role="pager")
            if wal:
                self._wal = make_wal(wal_path(path), create=True)
            self.page_size = page_size
            self.n_pages = 1
            self._free_head = 0
            self._meta = b""
            self._write_header()
        else:
            if not os.path.exists(path):
                raise StorageError(f"no such store file: {path}")
            self._file = wrap_file(open(path, "r+b", buffering=0),
                                   role="pager")
            if wal:
                self._wal = make_wal(wal_path(path))
                self._recover()
            self._read_header()
        self._remap()
        self.page_reads = 0
        self.page_writes = 0

    # -- header -------------------------------------------------------------

    def _header_bytes(self) -> bytes:
        header = struct.pack(
            _HEADER_FMT, MAGIC, VERSION, self.page_size, self.n_pages,
            self._free_head, len(self._meta),
        ) + self._meta
        if len(header) > max(self.page_size, _HEADER_SIZE + MAX_META):
            raise StorageError("header metadata too large")
        return header.ljust(self.page_size, b"\x00")

    def _write_header(self) -> None:
        with self._io_lock:
            data = self._header_bytes()
            if self._txn_depth:
                self._dirty[_HEADER_PAGE] = data
                return
            with self._version_lock:
                if self._pins:
                    self._capture_preimage(_HEADER_PAGE)
            self._file.seek(0)
            self._file.write(data)

    def _read_header(self) -> None:
        self._file.seek(0)
        prefix = self._file.read(_HEADER_SIZE)
        if len(prefix) < _HEADER_SIZE:
            raise CorruptionError("store file too small for header")
        magic, version, page_size, n_pages, free_head, meta_len = struct.unpack(
            _HEADER_FMT, prefix)
        if magic != MAGIC:
            raise CorruptionError(f"bad magic in {self.path!r}")
        if version != VERSION:
            raise CorruptionError(f"unsupported store version {version}")
        self.page_size = page_size
        self.n_pages = n_pages
        self._free_head = free_head
        self._meta = self._file.read(meta_len)

    @property
    def meta(self) -> bytes:
        """Client metadata blob stored in the header page."""
        return self._meta

    def set_meta(self, meta: bytes) -> None:
        """Persist up to :data:`MAX_META` bytes of client metadata."""
        if len(meta) > MAX_META:
            raise StorageError(f"metadata larger than {MAX_META} bytes")
        self._meta = bytes(meta)
        self._write_header()

    def meta_at(self, version: int) -> bytes:
        """Client metadata as of ``version`` (from the versioned header)."""
        raw = self.read_at(_HEADER_PAGE, version)
        magic, ver, _page_size, _n_pages, _free_head, meta_len = \
            struct.unpack_from(_HEADER_FMT, raw, 0)
        if magic != MAGIC or ver != VERSION:
            raise CorruptionError("bad header in versioned snapshot")
        return raw[_HEADER_SIZE:_HEADER_SIZE + meta_len]

    # -- versions / snapshots ------------------------------------------------

    @property
    def version(self) -> int:
        """The last committed version (0 before any commit this open)."""
        with self._version_lock:
            return self._version

    def pin(self) -> int:
        """Pin the current version; pages it covers stay readable until
        a matching :meth:`unpin`."""
        with self._version_lock:
            version = self._version
            self._pins[version] = self._pins.get(version, 0) + 1
            return version

    def unpin(self, version: int) -> None:
        """Release one pin on ``version`` and GC unreachable history."""
        with self._version_lock:
            count = self._pins.get(version, 0)
            if count > 1:
                self._pins[version] = count - 1
                return
            self._pins.pop(version, None)
            # Sweep pre-image history only when the oldest-pin floor
            # actually moved; an unconditional O(history) sweep per
            # unpin convoys snapshot-per-query readers on this lock.
            if not self._pins:
                if self._history:
                    self._history.clear()
            elif version < min(self._pins):
                self._gc_history()

    def current_version(self) -> int:
        """Lock-free read of the last committed version (hot path).

        Commits publish the bump as one attribute store, so a racing
        reader sees either the old or the new version -- both valid.
        """
        return self._version

    def oldest_pinned(self) -> int | None:
        """The oldest version any reader still pins, or ``None``."""
        with self._version_lock:
            return min(self._pins) if self._pins else None

    def reader(self) -> PageReader:
        """Pin the current version and return a read-only page view."""
        return PageReader(self, self.pin())

    # -- mmap read path ------------------------------------------------------

    def _remap(self) -> None:
        """(Re)map the file's whole-page prefix for lock-free reads.

        Called with ``_io_lock`` held (or before any concurrency, in
        ``__init__``).  The superseded mapping is only dereferenced --
        never closed -- so a reader that already fetched it keeps a
        valid buffer; the GC unmaps it once the last reference drops.
        A mapping failure (exotic filesystem, wrapped descriptor)
        degrades permanently to the locked read path.
        """
        if not self._mmap_enabled:
            return
        try:
            size = os.fstat(self._file.fileno()).st_size
        except (OSError, ValueError):  # pragma: no cover - closed race
            return
        pages = size // self.page_size
        if pages == 0 or (pages <= self._mapped_pages
                          and self._mmap is not None):
            return
        try:
            mapped = mmap.mmap(self._file.fileno(),
                               pages * self.page_size,
                               access=mmap.ACCESS_READ)
        except (OSError, ValueError):  # pragma: no cover - no mmap here
            self._mmap_enabled = False
            self._mmap = None
            self._mapped_pages = 0
            return
        self._mmap = mapped
        self._mapped_pages = pages

    def _mmap_read(self, page_id: int) -> bytes | None:
        """Copy one page out of the mapping without any lock, or None.

        Returns None when the page lies past the mapped prefix or the
        mapping was closed underneath us (shutdown race) -- callers fall
        back to the locked file path.
        """
        mapped = self._mmap
        if mapped is None or page_id >= self._mapped_pages:
            return None
        offset = page_id * self.page_size
        try:
            return mapped[offset:offset + self.page_size]
        except (ValueError, IndexError):  # pragma: no cover - close race
            return None

    @property
    def mmap_enabled(self) -> bool:
        """True while the lock-free mapped read path is active."""
        return self._mmap_enabled and self._mmap is not None

    def read_at(self, page_id: int, version: int) -> bytes:
        """Read a page as it was at ``version`` (header page 0 allowed).

        Served from the copy-on-write history when a later commit has
        overwritten the page, from the mapped file otherwise.  The
        mapped copy takes no lock; it is made snapshot-safe by re-probing
        the history *after* the copy: commits capture pre-images (under
        ``_version_lock``) before overwriting a page, so any overwrite
        that could have torn or outrun our copy has already published
        the pre-image this version needs -- the re-probe returns it.
        Reads past the mapped prefix fall back to the locked path, which
        re-runs the same double-check before touching the file.
        """
        with self._version_lock:
            data = self._history_lookup(page_id, version)
        if data is None:
            data = self._mmap_read(page_id)
            if data is not None:
                with self._version_lock:
                    overwritten = self._history_lookup(page_id, version)
                if overwritten is not None:
                    data = overwritten
        if data is None:
            with self._io_lock:
                with self._version_lock:
                    data = self._history_lookup(page_id, version)
                if data is None:
                    self._maybe_remap_for(page_id)
                    self._file.seek(page_id * self.page_size)
                    data = self._file.read(self.page_size)
        self.page_reads += 1
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        return data

    def _maybe_remap_for(self, page_id: int) -> None:
        """Chunked remap heuristic for reads past the mapped prefix.

        Caller holds ``_io_lock``.  Journaled growth remaps at commit;
        this catches unjournaled bulk loads, where remapping on every
        fresh-page read would thrash -- so wait until the file has grown
        a chunk past the mapping.
        """
        if self._mmap_enabled and self._mmap is not None \
                and page_id >= self._mapped_pages \
                and self.n_pages >= self._mapped_pages + _REMAP_CHUNK_PAGES:
            self._remap()

    def _history_lookup(self, page_id: int, version: int) -> bytes | None:
        """First pre-image with ``as_of >= version`` (caller holds lock)."""
        entries = self._history.get(page_id)
        if not entries:
            return None
        for as_of, data in entries:
            if as_of >= version:
                return data
        return None

    def _capture_preimage(self, page_id: int) -> None:
        """Save the live page for pinned readers before overwriting it.

        Caller holds both ``_io_lock`` and ``_version_lock``.  At most
        one entry is captured per page per version: a second overwrite
        within the same version keeps the older (still correct) image.
        """
        entries = self._history.setdefault(page_id, [])
        if entries and entries[-1][0] >= self._version:
            return
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        entries.append((self._version, data))

    def _gc_history(self) -> None:
        """Drop history entries no pinned reader can observe (lock held)."""
        if not self._pins:
            if self._history:
                self._history.clear()
            return
        oldest = min(self._pins)
        for page_id in list(self._history):
            kept = [entry for entry in self._history[page_id]
                    if entry[0] >= oldest]
            if kept:
                self._history[page_id] = kept
            else:
                del self._history[page_id]

    def mvcc_info(self) -> dict[str, object]:
        """Snapshot bookkeeping for stats / ``nestcontain info``."""
        with self._version_lock:
            return {
                "snapshot_version": self._version,
                "oldest_pinned_version": (min(self._pins)
                                          if self._pins else None),
                "pinned_readers": sum(self._pins.values()),
                "history_pages": len(self._history),
                "mmap_enabled": self.mmap_enabled,
                "mapped_pages": self._mapped_pages,
            }

    # -- transactions --------------------------------------------------------

    @property
    def txn_depth(self) -> int:
        """Current transaction nesting depth (0 = autocommit)."""
        return self._txn_depth

    def begin(self, label: bytes = b"") -> None:
        """Open (or nest into) a page transaction.

        Without a WAL this is a no-op: writes stay direct and unjournaled.
        """
        if self._wal is None:
            return
        with self._io_lock:
            if self._txn_depth == 0:
                self._txn_label = bytes(label)
                self._dirty = {}
                self._txn_snapshot = (self.n_pages, self._free_head,
                                      self._meta)
            self._txn_depth += 1

    def commit(self) -> None:
        """Close one nesting level; the outermost commit is the real one.

        The group of dirty post-image pages is appended to the WAL with a
        single write + fsync (the commit point), *then* applied to the
        main file.  Transaction state is cleared before the apply phase:
        a crash mid-apply must be redone from the log on reopen, never
        rolled back.

        The WAL append runs outside the page I/O lock so pinned readers
        are never stalled behind the commit fsync.  The apply phase takes
        the I/O lock, captures pre-images of the dirty pages for pinned
        readers (copy-on-write), overwrites the pages, and only then
        advances the version -- a reader that pins mid-apply gets the old
        version and is fully served by history plus unmodified pages.
        Concurrent committers must be serialized by the caller (the
        engine's writer mutex does this).
        """
        if self._wal is None:
            return
        with self._io_lock:
            if self._txn_depth == 0:
                raise StorageError("commit outside a transaction")
            if self._txn_depth > 1:
                self._txn_depth -= 1
                return
            dirty, label = self._dirty, self._txn_label
            self._txn_depth = 0
            self._dirty = {}
            self._txn_snapshot = None
        if not dirty:
            return
        with self._commit_lock:
            with self._version_lock:
                commit_version = self._version + 1
            records = [struct.pack("<Q", page_id) + data
                       for page_id, data in sorted(dirty.items())]
            self._wal.commit(stamp_version_label(label, commit_version),
                             records)
            with self._io_lock:
                with self._version_lock:
                    if self._pins:
                        for page_id in dirty:
                            self._capture_preimage(page_id)
                for page_id, data in sorted(dirty.items()):
                    self._file.seek(page_id * self.page_size)
                    self._file.write(data)
                with self._version_lock:
                    self._version = commit_version
                self._remap()
            if self._wal.size > DEFAULT_CHECKPOINT_BYTES:
                self._checkpoint_locked()

    def abort(self) -> None:
        """Discard the whole transaction (all nesting levels) unapplied."""
        if self._wal is None or self._txn_depth == 0:
            return
        with self._io_lock:
            n_pages, free_head, meta = \
                self._txn_snapshot  # type: ignore[misc]
            self.n_pages = n_pages
            self._free_head = free_head
            self._meta = meta
            self._txn_depth = 0
            self._dirty = {}
            self._txn_snapshot = None

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Replay committed WAL groups into the main file, drop torn tail."""
        assert self._wal is not None
        replayed, discarded = self._wal.recover(self._apply_group)
        if replayed:
            fsync_file(self._file)
        if replayed or discarded or self._wal.pending_groups:
            self._wal.checkpoint()
        self.recovered_groups = replayed
        self.discarded_groups = discarded

    def _apply_group(self, label: bytes, records: list[bytes]) -> None:
        # Recovery lands exactly on the version of the last committed
        # group: the stamp each commit put in its label is restored here.
        version, _label = split_version_label(label)
        if version is not None:
            self._version = max(self._version, version)
        for record in records:
            if len(record) <= 8:
                raise CorruptionError("undersized WAL page record")
            page_id = struct.unpack_from("<Q", record, 0)[0]
            data = record[8:]
            # The page size is self-describing; the header may not have
            # been read yet (recovery runs before ``_read_header``).
            self._file.seek(page_id * len(data))
            self._file.write(data)

    def _checkpoint(self) -> None:
        """Make the main file durable, then truncate the log."""
        if self._wal is None:
            return
        with self._commit_lock:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        # Flush Python's buffer under the I/O lock (it repositions the
        # raw stream), but run the expensive fsync outside it so pinned
        # readers are not stalled behind the disk.
        assert self._wal is not None
        with self._io_lock:
            self._file.flush()
        sync = getattr(self._file, "fsync", None)
        if sync is not None:
            sync()
        else:
            os.fsync(self._file.fileno())
        self._wal.checkpoint()

    # -- replication ----------------------------------------------------------

    def adopt_version(self, version: int) -> None:
        """Raise the version counter to ``version`` (replica bootstrap).

        A freshly bootstrapped replica starts from a page-level copy of
        the primary, but its pager would otherwise count versions from
        zero; adopting the primary's snapshot version keeps subsequent
        replayed commits numbered exactly as on the primary.
        """
        with self._version_lock:
            if version > self._version:
                self._version = version

    def apply_replicated_group(self, label: bytes, records: list[bytes],
                               version: int | None = None) -> None:
        """Replay one shipped commit group as a local committed write.

        Mirrors the apply phase of :meth:`commit`: the group goes to the
        local WAL first (durability -- the label arrives already stamped
        with the primary's version/seq/term, so it is committed verbatim
        via ``commit_prestamped`` when the log supports it), then the
        post-image pages overwrite the main file with pre-images captured
        for pinned readers, and only then does the version advance to the
        primary's stamped ``version`` -- snapshot reads on the replica
        stay consistent mid-replay exactly as they do under local
        commits on the primary.
        """
        if self._wal is None:
            raise StorageError("replicated apply needs a write-ahead log")
        with self._commit_lock:
            commit = getattr(self._wal, "commit_prestamped",
                             self._wal.commit)
            commit(label, records)
            header_dirty = None
            with self._io_lock:
                with self._version_lock:
                    if self._pins:
                        for record in records:
                            page_id = struct.unpack_from("<Q", record, 0)[0]
                            self._capture_preimage(page_id)
                for record in records:
                    if len(record) <= 8:
                        raise CorruptionError("undersized shipped record")
                    page_id = struct.unpack_from("<Q", record, 0)[0]
                    data = record[8:]
                    self._file.seek(page_id * len(data))
                    self._file.write(data)
                    if page_id == _HEADER_PAGE:
                        header_dirty = data
                if header_dirty is not None:
                    # Re-absorb the primary's header fields: allocation
                    # state (n_pages, free list) and client metadata all
                    # changed underneath the in-memory copies.
                    magic, ver, _page_size, n_pages, free_head, meta_len = \
                        struct.unpack_from(_HEADER_FMT, header_dirty, 0)
                    if magic != MAGIC or ver != VERSION:
                        raise CorruptionError("bad header in shipped group")
                    self.n_pages = n_pages
                    self._free_head = free_head
                    self._meta = header_dirty[
                        _HEADER_SIZE:_HEADER_SIZE + meta_len]
                with self._version_lock:
                    if version is not None and version > self._version:
                        self._version = version
                self._remap()
            if self._wal.size > DEFAULT_CHECKPOINT_BYTES:
                self._checkpoint_locked()

    @property
    def wal(self) -> WriteAheadLog | None:
        """The underlying write-ahead log (``None`` when disabled)."""
        return self._wal

    def wal_info(self) -> dict[str, object] | None:
        """WAL description plus this open's recovery counts, or ``None``."""
        if self._wal is None:
            return None
        info = self._wal.describe()
        info["recovered_on_open"] = self.recovered_groups
        info["discarded_on_open"] = self.discarded_groups
        return info

    # -- page primitives ------------------------------------------------------

    def allocate(self) -> int:
        """Return the id of a fresh zeroed page (recycled when possible)."""
        with self._io_lock:
            if self._free_head:
                page_id = self._free_head
                raw = self.read(page_id)
                self._free_head = struct.unpack_from("<Q", raw, 0)[0]
                self.write(page_id, b"")
                self._write_header()
                return page_id
            page_id = self.n_pages
            self.n_pages += 1
            self.write(page_id, b"")
            self._write_header()
            return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        with self._io_lock:
            self._check_bounds(page_id)
            self.write(page_id, struct.pack("<Q", self._free_head))
            self._free_head = page_id
            self._write_header()

    def read(self, page_id: int) -> bytes:
        """Read a full page; short files are padded with zero bytes.

        Outside a transaction, clean pages inside the mapped prefix are
        copied straight from the mapping without taking ``_io_lock``.
        Callers that could race a concurrent commit's apply phase must
        use the versioned :meth:`read_at` (snapshot readers do); plain
        ``read`` is for the writer itself and for externally serialized
        access, exactly as before.
        """
        if not self._txn_depth:
            self._check_bounds(page_id)
            data = self._mmap_read(page_id)
            if data is not None:
                self.page_reads += 1
                return data
        with self._io_lock:
            self._check_bounds(page_id)
            self.page_reads += 1
            if self._txn_depth and page_id in self._dirty:
                return self._dirty[page_id]
            self._maybe_remap_for(page_id)
            self._file.seek(page_id * self.page_size)
            data = self._file.read(self.page_size)
            if len(data) < self.page_size:
                data = data.ljust(self.page_size, b"\x00")
            return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write ``data`` (padded/truncated to one page) at ``page_id``."""
        with self._io_lock:
            self._check_bounds(page_id)
            if len(data) > self.page_size:
                raise StorageError("page write larger than page size")
            self.page_writes += 1
            padded = data.ljust(self.page_size, b"\x00")
            if self._txn_depth:
                self._dirty[page_id] = padded
                return
            with self._version_lock:
                if self._pins:
                    self._capture_preimage(page_id)
            self._file.seek(page_id * self.page_size)
            self._file.write(padded)

    def _check_bounds(self, page_id: int) -> None:
        if page_id < 1 or page_id > self.n_pages:
            raise PageBoundsError(
                f"page {page_id} outside [1, {self.n_pages}]")

    # -- overflow chains ------------------------------------------------------

    def write_overflow(self, data: bytes) -> int:
        """Store ``data`` across a chain of overflow pages; returns head id."""
        chunk_size = self.page_size - 8
        chunks = [data[i:i + chunk_size] for i in range(0, len(data), chunk_size)]
        if not chunks:
            chunks = [b""]
        page_ids = [self.allocate() for _ in chunks]
        for index, chunk in enumerate(chunks):
            next_id = page_ids[index + 1] if index + 1 < len(page_ids) else 0
            self.write(page_ids[index], struct.pack("<Q", next_id) + chunk)
        return page_ids[0]

    def read_overflow(self, head_page: int, length: int) -> bytes:
        """Read ``length`` bytes back from an overflow chain."""
        out = bytearray()
        page_id = head_page
        while len(out) < length:
            if page_id == 0:
                raise CorruptionError("overflow chain ended early")
            raw = self.read(page_id)
            page_id = struct.unpack_from("<Q", raw, 0)[0]
            out += raw[8:8 + min(self.page_size - 8, length - len(out))]
        return bytes(out)

    def free_overflow(self, head_page: int, length: int) -> None:
        """Release every page of an overflow chain back to the free list."""
        chunk_size = self.page_size - 8
        remaining = max(length, 1)
        page_id = head_page
        while remaining > 0 and page_id:
            raw = self.read(page_id)
            next_id = struct.unpack_from("<Q", raw, 0)[0]
            self.free(page_id)
            page_id = next_id
            remaining -= chunk_size

    # -- lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """fsync the underlying file (and checkpoint the WAL when idle)."""
        with self._io_lock:
            fsync_file(self._file)
        if self._wal is not None and self._txn_depth == 0 \
                and self._wal.pending_groups:
            with self._commit_lock:
                self._wal.checkpoint()

    def close(self) -> None:
        """Flush the header and close the file (open transactions abort)."""
        with self._io_lock:
            mapped, self._mmap, self._mapped_pages = self._mmap, None, 0
            if mapped is not None:
                mapped.close()
            if not self._file.closed:
                if self._txn_depth:
                    self.abort()
                self._write_header()
                self._file.flush()
                if self._wal is not None and self._wal.pending_groups:
                    fsync_file(self._file)
                    self._wal.checkpoint()
                self._file.close()
            if self._wal is not None:
                self._wal.close()
