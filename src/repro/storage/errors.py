"""Exception hierarchy for the storage substrate.

The storage layer replaces the Tokyo Cabinet key-value engine used in the
paper's experimental setup (Section 5.1).  All storage failures are rooted at
:class:`StorageError` so callers can catch a single exception type.
"""

from __future__ import annotations


class StorageError(Exception):
    """Base class for all storage-layer failures."""


class StoreClosedError(StorageError):
    """An operation was attempted on a store that has been closed."""


class CorruptionError(StorageError):
    """On-disk data failed an integrity check (bad magic, bad page, ...)."""


class KeyTooLargeError(StorageError):
    """A key exceeds the maximum size supported by the store."""


class PageBoundsError(StorageError):
    """A page id was outside the allocated range of the paged file."""
