"""Storage substrate: Tokyo-Cabinet-style key-value engines.

Exports the :class:`KVStore` interface, its three implementations, and the
:func:`open_store` factory used by the index layer.
"""

from __future__ import annotations

import os

from .btree import BPlusTree
from .codec import (
    Posting,
    decode_postings,
    decode_str,
    decode_uint_list,
    decode_varint,
    encode_postings,
    encode_str,
    encode_uint_list,
    encode_varint,
)
from .diskhash import DiskHashTable
from .errors import (
    CorruptionError,
    KeyTooLargeError,
    PageBoundsError,
    StorageError,
    StoreClosedError,
)
from .faults import CrashError, FaultPlan, FaultyPager, FaultyStore, inject
from .kvstore import AccessStats, KVStore, MemoryKVStore, ReadOnlySnapshot
from .namespace import NamespacedStore
from .pager import Pager, PageReader, wal_path
from .wal import WriteAheadLog

#: Storage engine names accepted by :func:`open_store`.
STORAGE_KINDS = ("memory", "diskhash", "btree")


def _remove_stale(path: str) -> None:
    """Drop a previous incarnation's store file, WAL, and sidecars."""
    for stale in (path, wal_path(path), wal_path(path) + "-repl"):
        if os.path.exists(stale):
            os.remove(stale)


def open_store(kind: str, path: str | None = None, *,
               create: bool = False, **options: object) -> KVStore:
    """Open (or create) a key-value store of the given ``kind``.

    ``path`` is required for the disk-backed kinds.  Extra options are
    forwarded to the store constructor (e.g. ``n_buckets`` for the hash
    table, ``page_size`` for either disk store).
    """
    if kind == "memory":
        return MemoryKVStore()
    if path is None:
        raise StorageError(f"storage kind {kind!r} requires a path")
    if kind == "diskhash":
        if create:
            _remove_stale(path)
        return DiskHashTable(path, create=create, **options)  # type: ignore[arg-type]
    if kind == "btree":
        if create:
            _remove_stale(path)
        return BPlusTree(path, create=create, **options)  # type: ignore[arg-type]
    raise StorageError(f"unknown storage kind {kind!r}; "
                       f"expected one of {STORAGE_KINDS}")


__all__ = [
    "AccessStats",
    "BPlusTree",
    "CorruptionError",
    "CrashError",
    "DiskHashTable",
    "FaultPlan",
    "FaultyPager",
    "FaultyStore",
    "KVStore",
    "KeyTooLargeError",
    "MemoryKVStore",
    "NamespacedStore",
    "Pager",
    "PageReader",
    "ReadOnlySnapshot",
    "PageBoundsError",
    "Posting",
    "STORAGE_KINDS",
    "StorageError",
    "StoreClosedError",
    "WriteAheadLog",
    "decode_postings",
    "decode_str",
    "decode_uint_list",
    "decode_varint",
    "encode_postings",
    "encode_str",
    "encode_uint_list",
    "encode_varint",
    "inject",
    "open_store",
    "wal_path",
]
