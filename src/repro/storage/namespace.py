"""Key-namespaced views over one physical store.

A sharded index (:mod:`repro.core.shard`) keeps N independent inverted
files inside a *single* physical store -- one file on disk, one
persistence lifecycle -- by giving every shard its own key namespace.
:class:`NamespacedStore` is that view: a :class:`KVStore` whose keys are
transparently prefixed before they reach the base store, so the inverted
file layer (and everything above it) runs unmodified against a slice of
the shared key space.

Closing a view never closes the base store: the owner of the base store
(the sharded index) closes it once, after all views are done.  Prefixes
must be prefix-free with respect to each other (the shard layer uses
``x<i>:``, which is -- the digits end at the colon).
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import ContextManager, Iterator

from .kvstore import KVStore


class NamespacedStore(KVStore):
    """A prefix-scoped view of another store.

    Operation counters are maintained both here (per-namespace, what the
    per-shard statistics report) and on the base store (aggregate
    physical traffic).

    ``lock``: when several views over one *disk* store are driven from
    different threads (the sharded index's parallel fan-out), the views
    must share one lock -- the paged-file stores seek and read on a
    single file handle.  Views over the in-memory store can go without
    (dict operations are atomic under the GIL).
    """

    def __init__(self, base: KVStore, prefix: bytes,
                 lock: "threading.Lock | None" = None) -> None:
        super().__init__()
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self._base = base
        self._prefix = bytes(prefix)
        self._lock: ContextManager[object] = (
            lock if lock is not None else nullcontext())

    @property
    def base(self) -> KVStore:
        """The shared underlying store."""
        return self._base

    @property
    def prefix(self) -> bytes:
        return self._prefix

    # -- primitives -------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.stats.gets += 1
        with self._lock:
            value = self._base.get(self._prefix + key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
            self.stats.bytes_read += len(value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self.stats.bytes_written += len(value)
        with self._lock:
            self._base.put(self._prefix + key, value)

    def delete(self, key: bytes) -> bool:
        self._check_open()
        self.stats.deletes += 1
        with self._lock:
            return self._base.delete(self._prefix + key)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        cut = len(self._prefix)
        for key, value in self._base.items():
            if key.startswith(self._prefix):
                yield key[cut:], value

    def __len__(self) -> int:
        self._check_open()
        return sum(1 for _ in self.items())

    # -- transactions ------------------------------------------------------
    # All views over one base store share its single write-ahead log, so
    # a transaction begun through any view commits at the base: a sharded
    # mutation is one atomic group no matter which shard it routed to.

    def begin(self, label: bytes = b"") -> None:
        self._check_open()
        with self._lock:
            self._base.begin(label)

    def commit(self) -> None:
        self._check_open()
        with self._lock:
            self._base.commit()

    def abort(self) -> None:
        self._check_open()
        with self._lock:
            self._base.abort()

    def wal_info(self) -> dict[str, object] | None:
        return self._base.wal_info()

    @property
    def pager(self):
        return self._base.pager

    def reload_meta(self) -> None:
        self._base.reload_meta()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> KVStore:
        """A view of this namespace pinned at the base store's version.

        Pins the *base* store once; the returned view owns that pin and
        releases it on close (unlike a plain view, whose close leaves
        the base alone).  Several shards sharing one pinned base
        snapshot instead use :class:`NamespacedStore` directly over it.
        """
        self._check_open()
        snap = _NamespacedSnapshot(self._base.snapshot(), self._prefix)
        snap.stats = self.stats  # keep per-namespace counters aggregating
        return snap

    def mvcc_info(self) -> dict[str, object] | None:
        return self._base.mvcc_info()

    def current_version(self) -> int | None:
        return self._base.current_version()

    # -- lifecycle ---------------------------------------------------------

    def sync(self) -> None:
        with self._lock:
            self._base.sync()

    def close(self) -> None:
        """Close this view only; the base store stays open."""
        super().close()


class _NamespacedSnapshot(NamespacedStore):
    """A namespaced view that owns (and closes) its base-store snapshot."""

    @property
    def version(self) -> int:
        return getattr(self._base, "version", 0)

    def close(self) -> None:
        if not self._closed:
            self._base.close()
        KVStore.close(self)
