"""Binary codecs for the physical representation of inverted-file payloads.

The inverted file of Section 2 of the paper stores, per atom, a posting list

    S_IF(a) = <(p_1, C_1), ..., (p_n, C_n)>

sorted on the ``p_i`` (internal node identifiers), where each ``C_i`` is the
sorted tuple of internal-node children of ``p_i``.  This module provides the
compact on-disk encoding for those lists: unsigned LEB128 varints with
delta-encoding of the sorted id sequences.

All encoders return :class:`bytes`; all decoders consume a :class:`bytes`
buffer (plus offset) and are written to be allocation-light since posting
list decoding sits on the hot path of every query.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence

from .errors import CorruptionError

#: A posting pairs an internal node id with the sorted tuple of its
#: internal-node children ids (the ``(p, C)`` of the paper).
Posting = tuple[int, tuple[int, ...]]

#: Format byte of block-compressed atom values (see ``encode_blocked``).
#: 0x00 (plain) and 0x01 (segmented) predate it; readers dispatch on the
#: byte, so indexes written at any codec version keep decoding.
BLOCKED_FORMAT_BYTE = 2

#: Postings per block of a block-compressed value.  128 keeps a block's
#: decode cost small (a few microseconds) while the per-block directory
#: overhead stays under 1% of the payload on realistic id densities.
DEFAULT_BLOCK_SIZE = 128


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``buf`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    try:
        while True:
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise CorruptionError("truncated varint") from None


def encode_uint_list(values: Sequence[int]) -> bytes:
    """Encode a *sorted* list of non-negative ints with delta compression."""
    out = bytearray()
    out += encode_varint(len(values))
    prev = 0
    for value in values:
        delta = value - prev
        if delta < 0:
            raise ValueError("encode_uint_list requires a sorted sequence")
        out += encode_varint(delta)
        prev = value
    return bytes(out)


def decode_uint_list(buf: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a delta-compressed sorted int list; returns (list, next_offset)."""
    count, pos = decode_varint(buf, offset)
    values: list[int] = []
    current = 0
    for _ in range(count):
        delta, pos = decode_varint(buf, pos)
        current += delta
        values.append(current)
    return values, pos


def encode_postings(postings: Iterable[Posting]) -> bytes:
    """Encode a posting list sorted on the head ids ``p``.

    Layout: ``count, then per posting: delta(p), len(C), delta-encoded C``.
    """
    items = list(postings)
    out = bytearray()
    out += encode_varint(len(items))
    prev_p = 0
    for p, children in items:
        delta = p - prev_p
        if delta < 0:
            raise ValueError("postings must be sorted on head id")
        out += encode_varint(delta)
        prev_p = p
        out += encode_varint(len(children))
        prev_c = 0
        for child in children:
            cdelta = child - prev_c
            if cdelta < 0:
                raise ValueError("posting children must be sorted")
            out += encode_varint(cdelta)
            prev_c = child
    return bytes(out)


def decode_postings(buf: bytes, offset: int = 0) -> list[Posting]:
    """Decode a posting list previously produced by :func:`encode_postings`."""
    count, pos = decode_varint(buf, offset)
    postings: list[Posting] = []
    p = 0
    for _ in range(count):
        delta, pos = decode_varint(buf, pos)
        p += delta
        n_children, pos = decode_varint(buf, pos)
        children = []
        c = 0
        for _ in range(n_children):
            cdelta, pos = decode_varint(buf, pos)
            c += cdelta
            children.append(c)
        postings.append((p, tuple(children)))
    return postings


class BlockInfo(NamedTuple):
    """Directory entry of one block of a block-compressed value.

    ``min_head``/``max_head``/``count`` form the skip header (decide from
    the directory alone whether a head range can touch the block);
    ``offset``/``length`` locate the still-encoded payload inside the
    value, so a single block decodes without touching its neighbours.
    """

    min_head: int
    max_head: int
    count: int
    offset: int
    length: int


class BlockedHeader(NamedTuple):
    """Decoded header + directory of a block-compressed value."""

    total: int
    block_size: int
    blocks: tuple[BlockInfo, ...]


def encode_blocked(postings: Sequence[Posting],
                   block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Encode a sorted posting list as fixed-size skip-indexed blocks.

    Layout::

        [0x02][total][block_size][n_blocks]
        { [min_head delta][span][count][payload bytes] }*   (directory)
        { block payload }*                                  (concatenated)

    Each block payload is an independently decodable
    :func:`encode_postings` blob (delta encoding restarts per block), so
    readers can decode any block from the directory without scanning the
    ones before it.  ``min_head`` is delta-encoded against the previous
    block's ``max_head``; ``span`` is ``max_head - min_head``.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    items = list(postings)
    chunks = [items[start:start + block_size]
              for start in range(0, len(items), block_size)]
    payloads = [encode_postings(chunk) for chunk in chunks]
    out = bytearray([BLOCKED_FORMAT_BYTE])
    out += encode_varint(len(items))
    out += encode_varint(block_size)
    out += encode_varint(len(chunks))
    previous_max = 0
    for chunk, payload in zip(chunks, payloads):
        min_head = chunk[0][0]
        max_head = chunk[-1][0]
        if min_head < previous_max and previous_max:
            raise ValueError("blocked postings must be sorted on head id")
        out += encode_varint(min_head - previous_max)
        out += encode_varint(max_head - min_head)
        out += encode_varint(len(chunk))
        out += encode_varint(len(payload))
        previous_max = max_head
    for payload in payloads:
        out += payload
    return bytes(out)


def decode_blocked_header(raw: bytes) -> BlockedHeader:
    """Decode a blocked value's directory; payloads stay untouched."""
    if not raw or raw[0] != BLOCKED_FORMAT_BYTE:
        raise CorruptionError("not a block-compressed value")
    total, pos = decode_varint(raw, 1)
    block_size, pos = decode_varint(raw, pos)
    n_blocks, pos = decode_varint(raw, pos)
    spans: list[tuple[int, int, int, int]] = []
    previous_max = 0
    for _ in range(n_blocks):
        min_delta, pos = decode_varint(raw, pos)
        span, pos = decode_varint(raw, pos)
        count, pos = decode_varint(raw, pos)
        length, pos = decode_varint(raw, pos)
        min_head = previous_max + min_delta
        max_head = min_head + span
        spans.append((min_head, max_head, count, length))
        previous_max = max_head
    blocks = []
    offset = pos
    for min_head, max_head, count, length in spans:
        blocks.append(BlockInfo(min_head, max_head, count, offset, length))
        offset += length
    if offset > len(raw):
        raise CorruptionError("truncated blocked value payload")
    return BlockedHeader(total, block_size, tuple(blocks))


def decode_block(raw: bytes, info: BlockInfo) -> list[Posting]:
    """Decode one block's postings from a blocked value."""
    return decode_postings(raw, info.offset)


def decode_blocked(raw: bytes) -> list[Posting]:
    """Materialize every block of a blocked value (the eager path)."""
    header = decode_blocked_header(raw)
    postings: list[Posting] = []
    for info in header.blocks:
        postings.extend(decode_postings(raw, info.offset))
    return postings


def append_blocked(raw: bytes, entries: Sequence[Posting]) -> bytes:
    """Extend a blocked value with postings sorted after its last head.

    Only the partial tail block is re-encoded; full blocks keep their
    existing payload bytes, so an append costs O(tail + new entries)
    regardless of list length.
    """
    if not entries:
        return raw
    header = decode_blocked_header(raw)
    if not header.blocks:
        return encode_blocked(entries, header.block_size)
    tail_info = header.blocks[-1]
    if entries[0][0] <= tail_info.max_head:
        raise ValueError("append_blocked requires heads past the tail")
    tail = decode_postings(raw, tail_info.offset)
    tail.extend(entries)
    kept = header.blocks[:-1]
    chunks = [tail[start:start + header.block_size]
              for start in range(0, len(tail), header.block_size)]
    payloads = [encode_postings(chunk) for chunk in chunks]
    out = bytearray([BLOCKED_FORMAT_BYTE])
    out += encode_varint(header.total + len(entries))
    out += encode_varint(header.block_size)
    out += encode_varint(len(kept) + len(chunks))
    previous_max = 0
    for info in kept:
        out += encode_varint(info.min_head - previous_max)
        out += encode_varint(info.max_head - info.min_head)
        out += encode_varint(info.count)
        out += encode_varint(info.length)
        previous_max = info.max_head
    for chunk, payload in zip(chunks, payloads):
        min_head = chunk[0][0]
        max_head = chunk[-1][0]
        out += encode_varint(min_head - previous_max)
        out += encode_varint(max_head - min_head)
        out += encode_varint(len(chunk))
        out += encode_varint(len(payload))
        previous_max = max_head
    if kept:
        first = kept[0]
        out += raw[first.offset:tail_info.offset]
    for payload in payloads:
        out += payload
    return bytes(out)


def encode_str(text: str) -> bytes:
    """Length-prefixed UTF-8 string encoding."""
    raw = text.encode("utf-8")
    return encode_varint(len(raw)) + raw


def decode_str(buf: bytes, offset: int = 0) -> tuple[str, int]:
    """Decode a length-prefixed UTF-8 string; returns (text, next_offset)."""
    length, pos = decode_varint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise CorruptionError("truncated string payload")
    return buf[pos:end].decode("utf-8"), end


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash, used by the disk hash table for bucketing.

    Chosen over Python's built-in ``hash`` because it is stable across
    processes (``PYTHONHASHSEED`` would otherwise scramble bucket layouts
    between the process that wrote a store and the one that reads it).
    """
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
