"""Binary codecs for the physical representation of inverted-file payloads.

The inverted file of Section 2 of the paper stores, per atom, a posting list

    S_IF(a) = <(p_1, C_1), ..., (p_n, C_n)>

sorted on the ``p_i`` (internal node identifiers), where each ``C_i`` is the
sorted tuple of internal-node children of ``p_i``.  This module provides the
compact on-disk encoding for those lists: unsigned LEB128 varints with
delta-encoding of the sorted id sequences.

All encoders return :class:`bytes`; all decoders consume a :class:`bytes`
buffer (plus offset) and are written to be allocation-light since posting
list decoding sits on the hot path of every query.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .errors import CorruptionError

#: A posting pairs an internal node id with the sorted tuple of its
#: internal-node children ids (the ``(p, C)`` of the paper).
Posting = tuple[int, tuple[int, ...]]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``buf`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    try:
        while True:
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise CorruptionError("truncated varint") from None


def encode_uint_list(values: Sequence[int]) -> bytes:
    """Encode a *sorted* list of non-negative ints with delta compression."""
    out = bytearray()
    out += encode_varint(len(values))
    prev = 0
    for value in values:
        delta = value - prev
        if delta < 0:
            raise ValueError("encode_uint_list requires a sorted sequence")
        out += encode_varint(delta)
        prev = value
    return bytes(out)


def decode_uint_list(buf: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a delta-compressed sorted int list; returns (list, next_offset)."""
    count, pos = decode_varint(buf, offset)
    values: list[int] = []
    current = 0
    for _ in range(count):
        delta, pos = decode_varint(buf, pos)
        current += delta
        values.append(current)
    return values, pos


def encode_postings(postings: Iterable[Posting]) -> bytes:
    """Encode a posting list sorted on the head ids ``p``.

    Layout: ``count, then per posting: delta(p), len(C), delta-encoded C``.
    """
    items = list(postings)
    out = bytearray()
    out += encode_varint(len(items))
    prev_p = 0
    for p, children in items:
        delta = p - prev_p
        if delta < 0:
            raise ValueError("postings must be sorted on head id")
        out += encode_varint(delta)
        prev_p = p
        out += encode_varint(len(children))
        prev_c = 0
        for child in children:
            cdelta = child - prev_c
            if cdelta < 0:
                raise ValueError("posting children must be sorted")
            out += encode_varint(cdelta)
            prev_c = child
    return bytes(out)


def decode_postings(buf: bytes, offset: int = 0) -> list[Posting]:
    """Decode a posting list previously produced by :func:`encode_postings`."""
    count, pos = decode_varint(buf, offset)
    postings: list[Posting] = []
    p = 0
    for _ in range(count):
        delta, pos = decode_varint(buf, pos)
        p += delta
        n_children, pos = decode_varint(buf, pos)
        children = []
        c = 0
        for _ in range(n_children):
            cdelta, pos = decode_varint(buf, pos)
            c += cdelta
            children.append(c)
        postings.append((p, tuple(children)))
    return postings


def encode_str(text: str) -> bytes:
    """Length-prefixed UTF-8 string encoding."""
    raw = text.encode("utf-8")
    return encode_varint(len(raw)) + raw


def decode_str(buf: bytes, offset: int = 0) -> tuple[str, int]:
    """Decode a length-prefixed UTF-8 string; returns (text, next_offset)."""
    length, pos = decode_varint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise CorruptionError("truncated string payload")
    return buf[pos:end].decode("utf-8"), end


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash, used by the disk hash table for bucketing.

    Chosen over Python's built-in ``hash`` because it is stable across
    processes (``PYTHONHASHSEED`` would otherwise scramble bucket layouts
    between the process that wrote a store and the one that reads it).
    """
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
