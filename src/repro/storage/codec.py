"""Binary codecs for the physical representation of inverted-file payloads.

The inverted file of Section 2 of the paper stores, per atom, a posting list

    S_IF(a) = <(p_1, C_1), ..., (p_n, C_n)>

sorted on the ``p_i`` (internal node identifiers), where each ``C_i`` is the
sorted tuple of internal-node children of ``p_i``.  This module provides the
compact on-disk encoding for those lists: unsigned LEB128 varints with
delta-encoding of the sorted id sequences.

All encoders return :class:`bytes`; all decoders consume a :class:`bytes`
buffer (plus offset) and are written to be allocation-light since posting
list decoding sits on the hot path of every query.
"""

from __future__ import annotations

import sys
from array import array
from itertools import accumulate
from typing import Iterable, NamedTuple, Sequence

from .errors import CorruptionError

try:  # numpy powers the vectorized block decode; the pure-stdlib
    import numpy as _np  # fallback below keeps every format readable.
except ImportError:  # pragma: no cover - exercised via the stub test
    _np = None

#: A posting pairs an internal node id with the sorted tuple of its
#: internal-node children ids (the ``(p, C)`` of the paper).
Posting = tuple[int, tuple[int, ...]]

#: Format byte of block-compressed atom values (see ``encode_blocked``).
#: 0x00 (plain) and 0x01 (segmented) predate it; readers dispatch on the
#: byte, so indexes written at any codec version keep decoding.
BLOCKED_FORMAT_BYTE = 2

#: Format byte of the *packed* block-compressed format: same value
#: layout and skip directory as 0x02, but each block payload is a set of
#: fixed-width little-endian delta arrays decodable in one
#: ``frombuffer``/``cumsum`` shot instead of a per-varint Python loop.
PACKED_FORMAT_BYTE = 3

#: Postings per block of a block-compressed value.  128 keeps a block's
#: decode cost small (a few microseconds) while the per-block directory
#: overhead stays under 1% of the payload on realistic id densities.
DEFAULT_BLOCK_SIZE = 128

#: Permitted fixed widths (bytes per value) of a packed block's arrays.
PACKED_WIDTHS = (1, 2, 4, 8)

_WIDTH_TYPECODES = {1: "B", 2: "H", 4: "I", 8: "Q"}
_WIDTH_LIMITS = {1: 1 << 8, 2: 1 << 16, 4: 1 << 32, 8: 1 << 64}
if _np is not None:
    _WIDTH_DTYPES = {1: _np.dtype("<u1"), 2: _np.dtype("<u2"),
                     4: _np.dtype("<u4"), 8: _np.dtype("<u8")}


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``buf`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    try:
        while True:
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise CorruptionError("truncated varint") from None


def encode_uint_list(values: Sequence[int]) -> bytes:
    """Encode a *sorted* list of non-negative ints with delta compression."""
    out = bytearray()
    out += encode_varint(len(values))
    prev = 0
    for value in values:
        delta = value - prev
        if delta < 0:
            raise ValueError("encode_uint_list requires a sorted sequence")
        out += encode_varint(delta)
        prev = value
    return bytes(out)


def decode_uint_list(buf: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a delta-compressed sorted int list; returns (list, next_offset)."""
    count, pos = decode_varint(buf, offset)
    values: list[int] = []
    current = 0
    for _ in range(count):
        delta, pos = decode_varint(buf, pos)
        current += delta
        values.append(current)
    return values, pos


def encode_postings(postings: Iterable[Posting]) -> bytes:
    """Encode a posting list sorted on the head ids ``p``.

    Layout: ``count, then per posting: delta(p), len(C), delta-encoded C``.
    """
    items = list(postings)
    out = bytearray()
    out += encode_varint(len(items))
    prev_p = 0
    for p, children in items:
        delta = p - prev_p
        if delta < 0:
            raise ValueError("postings must be sorted on head id")
        out += encode_varint(delta)
        prev_p = p
        out += encode_varint(len(children))
        prev_c = 0
        for child in children:
            cdelta = child - prev_c
            if cdelta < 0:
                raise ValueError("posting children must be sorted")
            out += encode_varint(cdelta)
            prev_c = child
    return bytes(out)


def decode_postings(buf: bytes, offset: int = 0) -> list[Posting]:
    """Decode a posting list previously produced by :func:`encode_postings`."""
    count, pos = decode_varint(buf, offset)
    postings: list[Posting] = []
    p = 0
    for _ in range(count):
        delta, pos = decode_varint(buf, pos)
        p += delta
        n_children, pos = decode_varint(buf, pos)
        children = []
        c = 0
        for _ in range(n_children):
            cdelta, pos = decode_varint(buf, pos)
            c += cdelta
            children.append(c)
        postings.append((p, tuple(children)))
    return postings


class BlockInfo(NamedTuple):
    """Directory entry of one block of a block-compressed value.

    ``min_head``/``max_head``/``count`` form the skip header (decide from
    the directory alone whether a head range can touch the block);
    ``offset``/``length`` locate the still-encoded payload inside the
    value, so a single block decodes without touching its neighbours.
    """

    min_head: int
    max_head: int
    count: int
    offset: int
    length: int


class BlockedHeader(NamedTuple):
    """Decoded header + directory of a block-compressed value.

    ``fmt`` is the value's format byte: 0x02 (delta-varint block
    payloads) or 0x03 (fixed-width packed payloads); the directory is
    identical, so readers share every skip decision across the two.
    """

    total: int
    block_size: int
    blocks: tuple[BlockInfo, ...]
    fmt: int = BLOCKED_FORMAT_BYTE


# -- packed (0x03) block payloads -------------------------------------------

def _width_for(maximum: int) -> int:
    """Smallest permitted fixed width holding ``maximum`` (unsigned)."""
    for width in PACKED_WIDTHS:
        if maximum < _WIDTH_LIMITS[width]:
            return width
    raise ValueError(f"value {maximum} exceeds 64-bit packed width")


def _pack_fixed(values: Sequence[int], width: int) -> bytes:
    """Little-endian fixed-width packing (stdlib path, numpy-identical)."""
    arr = array(_WIDTH_TYPECODES[width], values)
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
        arr.byteswap()
    return arr.tobytes()


def encode_packed_block(chunk: Sequence[Posting]) -> bytes:
    """Encode one block of postings as fixed-width delta arrays.

    Layout::

        [w_heads u8][w_counts u8][w_children u8]
        head deltas      (count x w_heads,      little-endian)
        child counts     (count x w_counts)
        child deltas     (n_children x w_children)

    Head deltas are taken against the previous head; the first delta is
    0 because the directory's ``min_head`` anchors the block.  Child
    deltas restart per posting with the first child stored absolutely,
    so the whole flattened array decodes with one cumulative sum plus a
    per-segment correction -- no per-element branching.  Width of each
    array is the smallest of {1, 2, 4, 8} bytes that fits its maximum.
    """
    heads: list[int] = []
    counts: list[int] = []
    children: list[int] = []
    prev_head = None
    for p, cs in chunk:
        if prev_head is None:
            heads.append(0)
        else:
            delta = p - prev_head
            if delta <= 0:
                raise ValueError("packed postings must be strictly "
                                 "sorted on head id")
            heads.append(delta)
        prev_head = p
        counts.append(len(cs))
        prev_c = 0
        for index, child in enumerate(cs):
            delta = child if index == 0 else child - prev_c
            if delta < 0:
                raise ValueError("posting children must be sorted")
            children.append(delta)
            prev_c = child
    w_heads = _width_for(max(heads, default=0))
    w_counts = _width_for(max(counts, default=0))
    w_children = _width_for(max(children, default=0))
    return bytes((w_heads, w_counts, w_children)) + \
        _pack_fixed(heads, w_heads) + _pack_fixed(counts, w_counts) + \
        _pack_fixed(children, w_children)


def decode_packed_arrays(raw: bytes, info: BlockInfo):
    """Decode one packed block to ``(heads, counts, children)`` arrays.

    With numpy present the three arrays come back as ``int64`` ndarrays
    produced by ``frombuffer(...).astype(int64).cumsum()`` -- the whole
    block in a handful of vector ops; the fallback returns plain lists
    built with ``array``/``itertools.accumulate``.  ``children`` is the
    flattened concatenation of every posting's child ids (slice it with
    ``counts``).  Raises :class:`CorruptionError` on truncated or
    internally inconsistent payloads instead of returning garbage.
    """
    offset, length = info.offset, info.length
    end = offset + length
    if length < 3 or end > len(raw):
        raise CorruptionError("truncated packed block payload")
    w_heads, w_counts, w_children = raw[offset], raw[offset + 1], \
        raw[offset + 2]
    if w_heads not in _WIDTH_LIMITS or w_counts not in _WIDTH_LIMITS \
            or w_children not in _WIDTH_LIMITS:
        raise CorruptionError(
            f"bad packed block widths ({w_heads},{w_counts},{w_children})")
    count = info.count
    heads_at = offset + 3
    counts_at = heads_at + count * w_heads
    children_at = counts_at + count * w_counts
    if children_at > end:
        raise CorruptionError("packed block shorter than its directory "
                              "entry claims")
    child_bytes = end - children_at
    if child_bytes % w_children:
        raise CorruptionError("packed child array misaligned")
    n_children = child_bytes // w_children
    if _np is not None:
        head_deltas = _np.frombuffer(raw, _WIDTH_DTYPES[w_heads],
                                     count, heads_at).astype(_np.int64)
        heads = head_deltas.cumsum()
        heads += info.min_head
        counts = _np.frombuffer(raw, _WIDTH_DTYPES[w_counts],
                                count, counts_at).astype(_np.int64)
        if int(counts.sum()) != n_children:
            raise CorruptionError("packed child counts disagree with "
                                  "payload size")
        deltas = _np.frombuffer(raw, _WIDTH_DTYPES[w_children],
                                n_children, children_at).astype(_np.int64)
        children = deltas.cumsum()
        if n_children:
            # Per-posting delta restart: subtract, from every segment,
            # the running sum accumulated before its first element.
            starts = counts.cumsum() - counts
            base = _np.where(starts > 0, children[starts - 1], 0)
            children = children - _np.repeat(base, counts)
        if count and int(heads[-1]) != info.max_head:
            raise CorruptionError("packed block heads end past the "
                                  "directory's max_head")
        return heads, counts, children
    head_arr = array(_WIDTH_TYPECODES[w_heads])
    head_arr.frombytes(raw[heads_at:counts_at])
    count_arr = array(_WIDTH_TYPECODES[w_counts])
    count_arr.frombytes(raw[counts_at:children_at])
    delta_arr = array(_WIDTH_TYPECODES[w_children])
    delta_arr.frombytes(raw[children_at:end])
    if sys.byteorder == "big":  # pragma: no cover
        head_arr.byteswap()
        count_arr.byteswap()
        delta_arr.byteswap()
    counts = list(count_arr)
    if sum(counts) != n_children:
        raise CorruptionError("packed child counts disagree with "
                              "payload size")
    heads = list(accumulate(head_arr, initial=info.min_head))[1:]
    children: list[int] = []
    at = 0
    for n in counts:
        children.extend(accumulate(delta_arr[at:at + n]))
        at += n
    if count and heads[-1] != info.max_head:
        raise CorruptionError("packed block heads end past the "
                              "directory's max_head")
    return heads, counts, children


def decode_packed_block(raw: bytes, info: BlockInfo) -> list[Posting]:
    """Materialize one packed block as ``(head, children)`` postings."""
    heads, counts, children = decode_packed_arrays(raw, info)
    if _np is not None and not isinstance(heads, list):
        heads = heads.tolist()
        counts = counts.tolist()
        children = children.tolist()
    out: list[Posting] = []
    at = 0
    for head, n in zip(heads, counts):
        out.append((head, tuple(children[at:at + n])))
        at += n
    return out


def _encode_block_payload(chunk: Sequence[Posting], fmt: int) -> bytes:
    if fmt == PACKED_FORMAT_BYTE:
        return encode_packed_block(chunk)
    return encode_postings(chunk)


def encode_blocked(postings: Sequence[Posting],
                   block_size: int = DEFAULT_BLOCK_SIZE, *,
                   packed: bool = True) -> bytes:
    """Encode a sorted posting list as fixed-size skip-indexed blocks.

    Layout::

        [fmt][total][block_size][n_blocks]
        { [min_head delta][span][count][payload bytes] }*   (directory)
        { block payload }*                                  (concatenated)

    ``fmt`` is 0x03 by default (fixed-width packed payloads, see
    :func:`encode_packed_block`, bulk-decodable with numpy);
    ``packed=False`` writes the 0x02 delta-varint payloads
    (:func:`encode_postings`, delta encoding restarting per block).
    Either way a reader can decode any block from the directory without
    scanning the ones before it.  ``min_head`` is delta-encoded against
    the previous block's ``max_head``; ``span`` is
    ``max_head - min_head``.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    fmt = PACKED_FORMAT_BYTE if packed else BLOCKED_FORMAT_BYTE
    items = list(postings)
    chunks = [items[start:start + block_size]
              for start in range(0, len(items), block_size)]
    payloads = [_encode_block_payload(chunk, fmt) for chunk in chunks]
    out = bytearray([fmt])
    out += encode_varint(len(items))
    out += encode_varint(block_size)
    out += encode_varint(len(chunks))
    previous_max = 0
    for chunk, payload in zip(chunks, payloads):
        min_head = chunk[0][0]
        max_head = chunk[-1][0]
        if min_head < previous_max and previous_max:
            raise ValueError("blocked postings must be sorted on head id")
        out += encode_varint(min_head - previous_max)
        out += encode_varint(max_head - min_head)
        out += encode_varint(len(chunk))
        out += encode_varint(len(payload))
        previous_max = max_head
    for payload in payloads:
        out += payload
    return bytes(out)


def decode_blocked_header(raw: bytes) -> BlockedHeader:
    """Decode a blocked value's directory; payloads stay untouched.

    Accepts both block-compressed formats (0x02 varint payloads, 0x03
    packed payloads) -- they share the directory layout; the returned
    header's ``fmt`` records which one the payloads are in.
    """
    if not raw or raw[0] not in (BLOCKED_FORMAT_BYTE, PACKED_FORMAT_BYTE):
        raise CorruptionError("not a block-compressed value")
    fmt = raw[0]
    total, pos = decode_varint(raw, 1)
    block_size, pos = decode_varint(raw, pos)
    n_blocks, pos = decode_varint(raw, pos)
    spans: list[tuple[int, int, int, int]] = []
    previous_max = 0
    for _ in range(n_blocks):
        min_delta, pos = decode_varint(raw, pos)
        span, pos = decode_varint(raw, pos)
        count, pos = decode_varint(raw, pos)
        length, pos = decode_varint(raw, pos)
        min_head = previous_max + min_delta
        max_head = min_head + span
        spans.append((min_head, max_head, count, length))
        previous_max = max_head
    blocks = []
    offset = pos
    for min_head, max_head, count, length in spans:
        blocks.append(BlockInfo(min_head, max_head, count, offset, length))
        offset += length
    if offset > len(raw):
        raise CorruptionError("truncated blocked value payload")
    return BlockedHeader(total, block_size, tuple(blocks), fmt)


def decode_block(raw: bytes, info: BlockInfo) -> list[Posting]:
    """Decode one block's postings from a blocked value (either format)."""
    if raw[0] == PACKED_FORMAT_BYTE:
        return decode_packed_block(raw, info)
    return decode_postings(raw, info.offset)


def decode_blocked(raw: bytes) -> list[Posting]:
    """Materialize every block of a blocked value (the eager path)."""
    header = decode_blocked_header(raw)
    postings: list[Posting] = []
    for info in header.blocks:
        postings.extend(decode_block(raw, info))
    return postings


def append_blocked(raw: bytes, entries: Sequence[Posting]) -> bytes:
    """Extend a blocked value with postings sorted after its last head.

    Only the partial tail block is re-encoded; full blocks keep their
    existing payload bytes, so an append costs O(tail + new entries)
    regardless of list length.  The value's format byte (0x02 or 0x03)
    is preserved: appends never migrate a list between formats, so an
    index mixing generations stays byte-stable under mutation.
    """
    if not entries:
        return raw
    header = decode_blocked_header(raw)
    if not header.blocks:
        return encode_blocked(entries, header.block_size,
                              packed=header.fmt == PACKED_FORMAT_BYTE)
    tail_info = header.blocks[-1]
    if entries[0][0] <= tail_info.max_head:
        raise ValueError("append_blocked requires heads past the tail")
    tail = decode_block(raw, tail_info)
    tail.extend(entries)
    kept = header.blocks[:-1]
    chunks = [tail[start:start + header.block_size]
              for start in range(0, len(tail), header.block_size)]
    payloads = [_encode_block_payload(chunk, header.fmt)
                for chunk in chunks]
    out = bytearray([header.fmt])
    out += encode_varint(header.total + len(entries))
    out += encode_varint(header.block_size)
    out += encode_varint(len(kept) + len(chunks))
    previous_max = 0
    for info in kept:
        out += encode_varint(info.min_head - previous_max)
        out += encode_varint(info.max_head - info.min_head)
        out += encode_varint(info.count)
        out += encode_varint(info.length)
        previous_max = info.max_head
    for chunk, payload in zip(chunks, payloads):
        min_head = chunk[0][0]
        max_head = chunk[-1][0]
        out += encode_varint(min_head - previous_max)
        out += encode_varint(max_head - min_head)
        out += encode_varint(len(chunk))
        out += encode_varint(len(payload))
        previous_max = max_head
    if kept:
        first = kept[0]
        out += raw[first.offset:tail_info.offset]
    for payload in payloads:
        out += payload
    return bytes(out)


def encode_str(text: str) -> bytes:
    """Length-prefixed UTF-8 string encoding."""
    raw = text.encode("utf-8")
    return encode_varint(len(raw)) + raw


def decode_str(buf: bytes, offset: int = 0) -> tuple[str, int]:
    """Decode a length-prefixed UTF-8 string; returns (text, next_offset)."""
    length, pos = decode_varint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise CorruptionError("truncated string payload")
    return buf[pos:end].decode("utf-8"), end


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash, used by the disk hash table for bucketing.

    Chosen over Python's built-in ``hash`` because it is stable across
    processes (``PYTHONHASHSEED`` would otherwise scramble bucket layouts
    between the process that wrote a store and the one that reads it).
    """
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
