"""Benchmark harness: the paper's measurement protocol and workloads."""

from .compare import (
    Delta,
    compare_dirs,
    format_report,
    improvements,
    regressions,
)
from .figures import (
    bar_chart,
    render_results_dir,
    render_results_file,
    render_rows,
    scatter_plot,
)
from .protocol import PAPER_REPEATS, SeriesPoint, Timing, measure, trimmed_mean
from .reporting import (
    RESULTS_DIR,
    format_figure,
    format_table,
    save_points,
    speedup,
)
from .workloads import (
    DATASETS,
    Workload,
    WorkloadCache,
    generate_dataset,
    make_query_runner,
    run_benchmark_queries,
)

__all__ = [
    "DATASETS",
    "Delta",
    "PAPER_REPEATS",
    "RESULTS_DIR",
    "SeriesPoint",
    "Timing",
    "Workload",
    "WorkloadCache",
    "bar_chart",
    "compare_dirs",
    "format_figure",
    "format_report",
    "improvements",
    "regressions",
    "format_table",
    "generate_dataset",
    "make_query_runner",
    "measure",
    "render_results_dir",
    "render_results_file",
    "render_rows",
    "scatter_plot",
    "run_benchmark_queries",
    "save_points",
    "speedup",
    "trimmed_mean",
]
