"""The paper's measurement protocol (Section 5.2).

"Unless stated otherwise, the unit of performance measurement in our
experiments is the elapsed time of sequentially executing all 100
benchmark queries.  For each measurement, we repeat this ten times,
exclude the minimum and maximum timings, and report the average of the
middle eight executions."
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

#: The paper's repeat count.
PAPER_REPEATS = 10


def trimmed_mean(times: Sequence[float]) -> float:
    """Drop one minimum and one maximum, average the rest.

    With fewer than three samples there is nothing sensible to trim, so
    the plain mean is returned.
    """
    if not times:
        raise ValueError("trimmed_mean of no samples")
    if len(times) < 3:
        return sum(times) / len(times)
    ordered = sorted(times)
    middle = ordered[1:-1]
    return sum(middle) / len(middle)


@dataclass(frozen=True)
class Timing:
    """Result of one measurement: repeated elapsed times plus summaries."""

    times: tuple[float, ...]

    @property
    def mean(self) -> float:
        """The paper's middle-eight (trimmed) mean, in seconds."""
        return trimmed_mean(self.times)

    @property
    def minimum(self) -> float:
        return min(self.times)

    @property
    def maximum(self) -> float:
        return max(self.times)

    @property
    def millis(self) -> float:
        """Trimmed mean in milliseconds (the paper's plotted unit)."""
        return self.mean * 1000.0


def measure(run: Callable[[], object],
            repeats: int = PAPER_REPEATS) -> Timing:
    """Time ``run()`` ``repeats`` times with a monotonic clock."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    return Timing(tuple(times))


@dataclass
class SeriesPoint:
    """One plotted point: series label, x value, timing, extras."""

    series: str
    x: float
    timing: Timing
    extra: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "series": self.series,
            "x": self.x,
            "millis": round(self.timing.millis, 3),
            "min_ms": round(self.timing.minimum * 1000.0, 3),
            "max_ms": round(self.timing.maximum * 1000.0, 3),
        }
        row.update(self.extra)
        return row
