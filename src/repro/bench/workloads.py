"""Dataset/workload preparation shared by all experiment drivers.

Maps the paper's six collections (Experiments 1-3) onto the generators of
:mod:`repro.data`, builds indexes once per (dataset, size) and lets the
harness swap cache policies in place, and provides the correctness-checked
"run all benchmark queries" unit of work the paper times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.engine import NestedSetIndex
from ..core.model import NestedSet
from ..data.dblp import generate_articles
from ..data.queries import BenchmarkQuery, make_benchmark_queries
from ..data.synthetic import DatasetSpec, generate_collection
from ..data.twitter import generate_tweets
from ..data.workflows import generate_workflows

#: Dataset names used across the experiment index of DESIGN.md.
DATASETS = ("uniform-wide", "uniform-deep", "zipf-wide", "zipf-deep",
            "twitter", "dblp", "workflows")


def generate_dataset(name: str, size: int, *, seed: int = 0,
                     theta: float = 0.7,
                     domain_size: int | None = None
                     ) -> Iterable[tuple[str, NestedSet]]:
    """Produce the records of one named collection."""
    if name == "twitter":
        return generate_tweets(size, seed=seed)
    if name == "workflows":
        return generate_workflows(size, seed=seed)
    if name == "dblp":
        return generate_articles(size, seed=seed)
    try:
        distribution, shape = name.split("-")
    except ValueError:
        raise ValueError(f"unknown dataset {name!r}; "
                         f"expected one of {DATASETS}") from None
    if distribution == "zipf":
        spec_kwargs: dict[str, object] = {"distribution": "zipf",
                                          "theta": theta}
    elif distribution == "uniform":
        spec_kwargs = {"distribution": "uniform"}
    else:
        raise ValueError(f"unknown dataset {name!r}; "
                         f"expected one of {DATASETS}")
    if domain_size is not None:
        spec_kwargs["domain_size"] = domain_size
    spec = DatasetSpec(shape=shape, **spec_kwargs)  # type: ignore[arg-type]
    return generate_collection(size, spec, seed=seed)


@dataclass
class Workload:
    """A built index plus its benchmark queries."""

    name: str
    size: int
    index: NestedSetIndex
    queries: list[BenchmarkQuery]
    records: list[tuple[str, NestedSet]]


class WorkloadCache:
    """Build-once cache keyed by (dataset, size, options).

    Index construction dominates harness runtime, so the figure drivers
    share one cache per session and only swap cache policies between the
    cached/uncached series.
    """

    def __init__(self) -> None:
        self._workloads: dict[tuple, Workload] = {}

    def get(self, name: str, size: int, *, n_queries: int = 100,
            seed: int = 0, theta: float = 0.7,
            storage: str = "memory", path: str | None = None,
            domain_size: int | None = None,
            shards: int = 1, workers: int = 1) -> Workload:
        key = (name, size, n_queries, seed, theta, storage, domain_size,
               shards, workers)
        workload = self._workloads.get(key)
        if workload is None:
            records = list(generate_dataset(
                name, size, seed=seed, theta=theta, domain_size=domain_size))
            index = NestedSetIndex.build(records, storage=storage, path=path,
                                         shards=shards, workers=workers)
            queries = make_benchmark_queries(records, n_queries, seed=seed)
            workload = Workload(name, size, index, queries, records)
            self._workloads[key] = workload
        return workload

    def clear(self) -> None:
        for workload in self._workloads.values():
            workload.index.close()
        self._workloads.clear()


def run_benchmark_queries(index: NestedSetIndex,
                          queries: Sequence[BenchmarkQuery],
                          algorithm: str = "bottomup",
                          check: bool = False,
                          share_subqueries: bool = False,
                          **query_options: object) -> int:
    """Execute the whole workload sequentially (the paper's timed unit).

    Returns the total number of result records.  With ``check=True`` the
    protocol invariants are asserted: a positive query's source record is
    in its result, a negative query's result is empty.  With
    ``share_subqueries=True`` the workload runs through
    :meth:`NestedSetIndex.query_batch` with the cross-query subquery
    memo attached (the default stays per-query, matching the paper's
    timed unit).
    """
    if share_subqueries:
        results = index.query_batch([bench.query for bench in queries],
                                    share_subqueries=True,
                                    algorithm=algorithm, **query_options)
    else:
        results = [index.query(bench.query, algorithm=algorithm,
                               **query_options) for bench in queries]
    total = 0
    for bench, result in zip(queries, results):
        total += len(result)
        if check:
            if bench.positive and bench.source_key not in result:
                raise AssertionError(
                    f"{algorithm}: positive query {bench.key} missed its "
                    f"source record {bench.source_key}")
            if not bench.positive and result:
                raise AssertionError(
                    f"{algorithm}: negative query {bench.key} returned "
                    f"{len(result)} records")
    return total


def make_query_runner(index: NestedSetIndex,
                      queries: Sequence[BenchmarkQuery],
                      algorithm: str,
                      **query_options: object) -> Callable[[], int]:
    """Zero-argument closure for :func:`repro.bench.protocol.measure`."""
    def run() -> int:
        return run_benchmark_queries(index, queries, algorithm,
                                     **query_options)
    return run
