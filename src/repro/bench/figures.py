"""Terminal rendering of experiment results: scatter plots and bar charts.

The paper presents Figures 6a-6f as line plots of query time against
database size.  ``pytest benchmarks/`` saves every experiment's raw rows
under ``bench_results/``; this module turns those rows back into figures
a terminal can show (``nestcontain report``), so the reproduction can be
eyeballed against the paper without any plotting dependency.

Numeric x-axes render as scatter plots (one marker per series, linear or
log y); categorical x-axes (join type, cache policy, storage engine)
render as grouped horizontal bar charts.
"""

from __future__ import annotations

import json
import math
import os
from typing import Sequence

_MARKERS = "ox+*#@%&"


def _is_numeric_axis(rows: Sequence[dict]) -> bool:
    return all(isinstance(row["x"], (int, float)) for row in rows)


def _series_order(rows: Sequence[dict]) -> list[str]:
    order: list[str] = []
    for row in rows:
        if row["series"] not in order:
            order.append(row["series"])
    return order


def scatter_plot(rows: Sequence[dict], *, width: int = 64,
                 height: int = 16, log_y: bool = False,
                 y_label: str = "ms") -> str:
    """Scatter plot of ``millis`` against a numeric ``x`` per series."""
    if not rows:
        return "(no data)"
    xs = [float(row["x"]) for row in rows]
    ys = [float(row["millis"]) for row in rows]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y:
        if y_lo <= 0:
            raise ValueError("log scale needs positive values")
        y_lo, y_hi = math.log10(y_lo), math.log10(y_hi)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    series = _series_order(rows)
    for row in rows:
        marker = _MARKERS[series.index(row["series"]) % len(_MARKERS)]
        x_val = float(row["x"])
        y_val = float(row["millis"])
        if log_y:
            y_val = math.log10(y_val)
        col = round((x_val - x_lo) / x_span * (width - 1))
        line = round((y_val - y_lo) / y_span * (height - 1))
        grid[height - 1 - line][col] = marker
    top = f"{(10 ** y_hi if log_y else y_hi):.6g}"
    bottom = f"{(10 ** y_lo if log_y else y_lo):.6g}"
    gutter = max(len(top), len(bottom), len(y_label)) + 1
    lines = []
    for line_no, cells in enumerate(grid):
        if line_no == 0:
            label = top
        elif line_no == height - 1:
            label = bottom
        elif line_no == height // 2:
            label = y_label + (" (log)" if log_y else "")
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(cells))
    lines.append(" " * gutter + " +" + "-" * width)
    x_left = f"{x_lo:.6g}"
    x_right = f"{x_hi:.6g}"
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (gutter + 2) + x_left + " " * max(pad, 1) + x_right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series))
    lines.append(f"{'':>{gutter}}  {legend}")
    return "\n".join(lines)


def bar_chart(rows: Sequence[dict], *, width: int = 48) -> str:
    """Grouped horizontal bars of ``millis`` for a categorical x-axis."""
    if not rows:
        return "(no data)"
    peak = max(float(row["millis"]) for row in rows) or 1.0
    categories: list[str] = []
    for row in rows:
        label = str(row["x"])
        if label not in categories:
            categories.append(label)
    series = _series_order(rows)
    by_key = {(row["series"], str(row["x"])): float(row["millis"])
              for row in rows}
    label_width = max(len(c) for c in categories)
    series_width = max(len(s) for s in series)
    lines = []
    for category in categories:
        for index, name in enumerate(series):
            value = by_key.get((name, category))
            if value is None:
                continue
            bar = "#" * max(1, round(value / peak * width))
            category_cell = category if index == 0 else ""
            lines.append(f"{category_cell:>{label_width}}  "
                         f"{name:<{series_width}}  "
                         f"{bar} {value:.3g} ms")
        lines.append("")
    return "\n".join(lines).rstrip()


def render_rows(rows: Sequence[dict], title: str = "", *,
                log_y: bool = False) -> str:
    """Pick the right chart for the rows' x-axis type."""
    if _is_numeric_axis(rows):
        ys = [float(row["millis"]) for row in rows]
        spread = (max(ys) / max(min(ys), 1e-9)) if ys else 1.0
        body = scatter_plot(rows, log_y=log_y or spread > 50)
    else:
        body = bar_chart(rows)
    return f"{title}\n{body}" if title else body


def render_results_file(path: str, *, log_y: bool = False) -> str:
    """Render one saved experiment (a bench_results JSON file)."""
    with open(path) as handle:
        rows = json.load(handle)
    name = os.path.splitext(os.path.basename(path))[0]
    return render_rows(rows, title=f"== {name} ==", log_y=log_y)


def render_results_dir(directory: str, *, log_y: bool = False) -> str:
    """Render every experiment saved under ``directory``."""
    names = sorted(name for name in os.listdir(directory)
                   if name.endswith(".json"))
    if not names:
        return f"(no results under {directory})"
    parts = [render_results_file(os.path.join(directory, name),
                                 log_y=log_y)
             for name in names]
    return "\n\n".join(parts)
