"""Comparing two benchmark runs: regression and speedup detection.

Every ``pytest benchmarks/`` run refreshes ``bench_results/``; archiving
that directory before a change and comparing after answers "did my
change make anything slower?" without eyeballing charts::

    cp -r bench_results baseline
    pytest benchmarks/ --benchmark-only
    python -m repro.bench.compare baseline bench_results

Rows are matched on ``(experiment, series, x)``; the report lists the
ratio per row and flags changes beyond a noise threshold.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable

from .reporting import format_table

#: Ratio beyond which a row counts as a change (benchmarks are noisy).
DEFAULT_THRESHOLD = 1.25


@dataclass(frozen=True)
class Delta:
    """One matched row across the two runs."""

    experiment: str
    series: str
    x: object
    before_ms: float
    after_ms: float

    @property
    def ratio(self) -> float:
        """after / before: > 1 slower, < 1 faster."""
        if self.before_ms <= 0:
            return float("inf")
        return self.after_ms / self.before_ms


def _load_rows(directory: str) -> dict[tuple, float]:
    rows: dict[tuple, float] = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        experiment = name[:-5]
        with open(os.path.join(directory, name)) as handle:
            for row in json.load(handle):
                key = (experiment, row["series"], str(row["x"]))
                rows[key] = float(row["millis"])
    return rows


def compare_dirs(before_dir: str, after_dir: str) -> list[Delta]:
    """Match rows across two result directories (unmatched rows dropped)."""
    before = _load_rows(before_dir)
    after = _load_rows(after_dir)
    deltas = []
    for key in sorted(before.keys() & after.keys()):
        experiment, series, x = key
        deltas.append(Delta(experiment, series, x,
                            before[key], after[key]))
    return deltas


def regressions(deltas: Iterable[Delta],
                threshold: float = DEFAULT_THRESHOLD) -> list[Delta]:
    """Rows slower than ``threshold`` times the baseline."""
    return [delta for delta in deltas if delta.ratio > threshold]


def improvements(deltas: Iterable[Delta],
                 threshold: float = DEFAULT_THRESHOLD) -> list[Delta]:
    """Rows faster than ``1/threshold`` times the baseline."""
    return [delta for delta in deltas if delta.ratio < 1.0 / threshold]


def format_report(deltas: list[Delta],
                  threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable comparison: changed rows first, then a summary."""
    if not deltas:
        return "(no matching rows between the two runs)"
    changed = [delta for delta in deltas
               if delta.ratio > threshold or delta.ratio < 1.0 / threshold]
    lines = []
    if changed:
        rows = [[delta.experiment, delta.series, str(delta.x),
                 delta.before_ms, delta.after_ms,
                 f"{delta.ratio:.2f}x"] for delta
                in sorted(changed, key=lambda d: -d.ratio)]
        lines.append(format_table(
            ["experiment", "series", "x", "before(ms)", "after(ms)",
             "ratio"], rows))
    else:
        lines.append(f"no changes beyond {threshold:.2f}x")
    slower = len(regressions(deltas, threshold))
    faster = len(improvements(deltas, threshold))
    lines.append(f"\n{len(deltas)} rows compared: {slower} slower, "
                 f"{faster} faster (threshold {threshold:.2f}x)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="compare two bench_results directories")
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD)
    args = parser.parse_args(argv)
    deltas = compare_dirs(args.before, args.after)
    print(format_report(deltas, args.threshold))
    return 1 if regressions(deltas, args.threshold) else 0


if __name__ == "__main__":
    raise SystemExit(main())
