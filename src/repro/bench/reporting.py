"""Reporting helpers: paper-style figure/table output plus JSON capture.

Every benchmark prints the series the corresponding paper figure plots
(x = database size, y = trimmed-mean milliseconds for the 100-query
workload, one line per algorithm × cache configuration) and appends the
raw rows to ``bench_results/<experiment>.json`` so EXPERIMENTS.md can be
refreshed from actual runs.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from .protocol import SeriesPoint

#: Where raw benchmark rows are appended (relative to the repo root / cwd).
RESULTS_DIR = "bench_results"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Plain monospace table with right-aligned numeric columns."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index])
                  for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_figure(title: str, points: Sequence[SeriesPoint],
                  x_label: str = "database size",
                  y_label: str = "avg 100-query time (ms)") -> str:
    """Render one paper figure as a series × x table."""
    xs = sorted({point.x for point in points})
    series_names = []
    for point in points:
        if point.series not in series_names:
            series_names.append(point.series)
    by_key = {(point.series, point.x): point for point in points}
    headers = [f"{x_label}"] + series_names
    rows = []
    for x in xs:
        row: list[object] = [_format_x(x)]
        for name in series_names:
            point = by_key.get((name, x))
            row.append(round(point.timing.millis, 3) if point else "-")
        rows.append(row)
    body = format_table(headers, rows)
    return f"{title}\n{y_label}\n{body}"


def _format_x(x: object) -> str:
    if not isinstance(x, (int, float)):
        return str(x)  # categorical axis (join type, policy, engine, ...)
    if float(x).is_integer():
        value = int(x)
        if value >= 1000 and value % 1000 == 0:
            return f"{value // 1000}K"
        return str(value)
    return f"{x:g}"


def save_points(experiment: str, points: Sequence[SeriesPoint],
                directory: str = RESULTS_DIR) -> str:
    """Write the raw rows of one experiment to a JSON file; returns path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{experiment}.json")
    payload = [point.as_row() for point in points]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def speedup(baseline_ms: float, improved_ms: float) -> float:
    """Factor by which ``improved`` beats ``baseline`` (>1 = faster)."""
    if improved_ms <= 0:
        raise ValueError("improved time must be positive")
    return baseline_ms / improved_ms
