"""Experiment A1: the O(|q| * |S|) worst-case bound (Section 3 analysis).

Two sweeps on uniform wide data: (1) fixed query workload, growing |S|;
(2) fixed |S|, query workloads bucketed by query size |q|.  Expected
shape: per-query time grows at most linearly along either axis (in
practice sub-linearly in |S| -- posting lists, not the whole database,
are touched).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_query_runner
from repro.data.queries import make_benchmark_queries

DATASET = "uniform-wide"


@pytest.mark.benchmark(group="complexity-db-size")
@pytest.mark.parametrize("size", [1000, 2000, 4000, 8000])
@pytest.mark.parametrize("algorithm", ["topdown", "bottomup"])
def test_scale_with_database(benchmark, workloads, figure, size, algorithm):
    workload = workloads.get(DATASET, size, n_queries=40)
    workload.index.set_cache(None)
    runner = make_query_runner(workload.index, workload.queries, algorithm)
    figure.record(benchmark, f"{algorithm}-vs-|S|", size, runner,
                  queries=40, dataset=DATASET)


@pytest.mark.benchmark(group="complexity-query-size")
@pytest.mark.parametrize("bucket", [0, 1, 2], ids=["small", "medium", "large"])
@pytest.mark.parametrize("algorithm", ["topdown", "bottomup"])
def test_scale_with_query_size(benchmark, workloads, figure, bucket,
                               algorithm):
    workload = workloads.get(DATASET, 4000, n_queries=40)
    workload.index.set_cache(None)
    # Bucket the sampled queries by |q| (total node count) into terciles.
    ranked = sorted(make_benchmark_queries(workload.records, 90, seed=1),
                    key=lambda b: b.query.size)
    third = len(ranked) // 3
    chunk = ranked[bucket * third:(bucket + 1) * third]
    mean_q = sum(b.query.size for b in chunk) / len(chunk)
    runner = make_query_runner(workload.index, chunk, algorithm)
    figure.record(benchmark, f"{algorithm}-vs-|q|", round(mean_q, 1),
                  runner, queries=len(chunk), dataset=DATASET)
