"""Experiment SG1: segmented posting lists + segment skipping (Section 5.1,
assumption 1 lifted).

Compares plain whole-list storage against segmented storage (with
rarest-first segment-skipping intersection) on skewed data, on both the
memory and the disk-hash store, reporting bytes read from the store as
well as time.  Expected shape: segmentation leaves results identical and
cuts the bytes decoded per query on skewed collections (hot lists are
mostly skipped); wall-clock wins appear once store access is non-trivial
(disk engine) and grow with skew.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import generate_dataset, make_query_runner
from repro.core.engine import NestedSetIndex
from repro.data.queries import make_benchmark_queries

SIZE = 3000
N_QUERIES = 30
DATASET = "zipf-wide"
THETA = 0.9

_RECORDS = None


def _records():
    global _RECORDS
    if _RECORDS is None:
        _RECORDS = list(generate_dataset(DATASET, SIZE, seed=0,
                                         theta=THETA))
    return _RECORDS


@pytest.mark.benchmark(group="segments")
@pytest.mark.parametrize("engine", ["memory", "diskhash"])
@pytest.mark.parametrize("segmented", [False, True],
                         ids=["plain", "segmented-256"])
def test_segment_skipping(benchmark, figure, engine, segmented, tmp_path):
    records = _records()
    path = None if engine == "memory" else str(tmp_path / "seg.idx")
    index = NestedSetIndex.build(records, storage=engine, path=path,
                                 segment_size=256 if segmented else 0)
    queries = make_benchmark_queries(records, N_QUERIES, seed=0)
    runner = make_query_runner(index, queries, "topdown")
    runner()
    index.reset_stats()
    runner()
    bytes_read = index.inverted_file.store.stats.bytes_read
    skipped = index.inverted_file.stats.segments_skipped
    label = "segmented" if segmented else "plain"
    figure.record(benchmark, label, engine, runner, rounds=5,
                  queries=N_QUERIES, bytes_read_per_run=bytes_read,
                  segments_skipped_per_run=skipped,
                  dataset=f"{DATASET}(θ={THETA})@{SIZE}")
    index.close()
