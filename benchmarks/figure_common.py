"""Shared driver for the Figure 6 family of benchmarks (Experiments 1-3).

Each figure plots the elapsed time for the benchmark query workload
against database size, with four series: top-down and bottom-up, each
with and without the inverted-list cache (Section 3.3, budget 250).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    WorkloadCache,
    make_query_runner,
    run_benchmark_queries,
)

#: The four series of every Figure 6 plot: (algorithm, cache policy).
SERIES = [
    ("topdown", None),
    ("topdown", "frequency"),
    ("bottomup", None),
    ("bottomup", "frequency"),
]

SERIES_IDS = ["topdown", "topdown+cache", "bottomup", "bottomup+cache"]


def series_label(algorithm: str, policy: str | None) -> str:
    return algorithm + ("+cache" if policy else "")


def run_figure_case(workloads: WorkloadCache, figure, benchmark,
                    dataset: str, size: int, algorithm: str,
                    policy: str | None, *, n_queries: int,
                    theta: float = 0.7, seed: int = 0) -> None:
    """One (size, series) cell of a Figure 6 plot."""
    workload = workloads.get(dataset, size, n_queries=n_queries,
                             seed=seed, theta=theta)
    workload.index.set_cache(policy)
    if algorithm == "topdown" and policy is None:
        # Validate the protocol invariants once per (dataset, size):
        # positives hit their source record, negatives return nothing.
        run_benchmark_queries(workload.index, workload.queries,
                              algorithm, check=True)
    runner = make_query_runner(workload.index, workload.queries, algorithm)
    figure.record(benchmark, series_label(algorithm, policy), size, runner,
                  queries=n_queries, dataset=dataset)


def figure_params(sizes: list[int]):
    """Decorator stack shared by the six figure modules."""
    def wrap(fn):
        fn = pytest.mark.parametrize(
            "algorithm,policy", SERIES, ids=SERIES_IDS)(fn)
        fn = pytest.mark.parametrize("size", sizes)(fn)
        return fn
    return wrap
