"""Experiment C1: cache policy ablation (Section 3.3 + future work 6).

Compares no cache, the paper's static frequency cache (budget 250), a
small frequency cache (budget 25), and an LRU cache on a uniform and a
skewed collection.  Expected shape: on uniform data no policy matters
(the paper's Experiment 1 observation); on skewed data the frequency
cache wins big, LRU close behind, and even the small budget captures most
of the benefit because the atom popularity curve is so steep.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_query_runner
from repro.core.cache import make_cache

SIZE = 4000
N_QUERIES = 40

POLICIES = [("none", 0), ("frequency", 250), ("frequency", 25),
            ("lru", 250)]
POLICY_IDS = ["none", "freq-250", "freq-25", "lru-250"]


@pytest.mark.benchmark(group="cache-policies")
@pytest.mark.parametrize("dataset", ["uniform-wide", "zipf-wide"])
@pytest.mark.parametrize("policy,budget", POLICIES, ids=POLICY_IDS)
def test_cache_policy(benchmark, workloads, figure, dataset, policy,
                      budget):
    workload = workloads.get(dataset, SIZE, n_queries=N_QUERIES)
    ifile = workload.index.inverted_file
    if policy == "none":
        workload.index.set_cache(None)
    else:
        ifile.cache = make_cache(policy, frequencies=ifile.frequencies(),
                                 budget=budget)
    runner = make_query_runner(workload.index, workload.queries, "topdown")
    label = POLICY_IDS[POLICIES.index((policy, budget))]
    figure.record(benchmark, dataset, label, runner,
                  queries=N_QUERIES)
